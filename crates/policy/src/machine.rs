//! Event-driven tail-tolerance state machines.
//!
//! The contract: the harness owns the clock, the RNG and the requests;
//! a machine owns nothing but its own fixed-size state. Per logical
//! request the harness delivers [`PolicyEvent`]s and executes the
//! [`Action`]s the machine pushes into a caller-provided [`Actions`]
//! buffer — no allocation happens on this path. One machine instance is
//! attached per virtual user and [`reset`](PolicyMachine::reset) between
//! logical requests, so state never leaks across requests.
//!
//! Time is `f64` milliseconds since simulation start, matching the rest
//! of the workbench. Wake-ups are cooperative: a machine that arms a
//! timer via [`Action::Arm`] receives a [`PolicyEvent::Wake`] at (not
//! before) that time, but every machine in a composition sees every
//! wake, so each machine tracks its own `next_wake` and ignores wakes
//! meant for a sibling.

/// Capacity of the [`Actions`] buffer. Sized for the worst legal case:
/// a tied-request machine launching `copies - 1` duplicates at issue
/// plus arms/cancels from every composed sibling.
pub const MAX_ACTIONS: usize = 16;

/// Hard ceiling on physical attempts per logical request (primary
/// included), enforced by [`Composite`] regardless of spec. Keeps a
/// misconfigured policy from amplifying load without bound.
pub const MAX_ATTEMPTS: u32 = 16;

/// Tolerance when comparing the harness clock against an armed wake-up:
/// a wake delivered within `EPS_MS` of (or after) its target counts as
/// due. Guards against float drift when thresholds are re-derived from
/// sums of event times.
const EPS_MS: f64 = 1e-9;

/// Lifecycle event delivered by the harness to a policy machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyEvent {
    /// The logical request's primary attempt was submitted at `now_ms`.
    /// `estimate_ms` is the harness's current online estimate of the
    /// latency quantile this run's hedge policies are configured to
    /// track (NaN until enough samples have been observed).
    Issued { now_ms: f64, estimate_ms: f64 },
    /// A previously armed wake-up fired. Delivered to *every* machine
    /// in a composition; each one checks the time against its own
    /// armed wake and ignores strangers. `jitter` is a fresh uniform
    /// draw in `[0, 1)` from the harness's dedicated policy RNG stream.
    Wake { now_ms: f64, jitter: f64 },
    /// A physical attempt of this logical request completed. `first`
    /// is true exactly once per logical request — for the attempt
    /// whose result the client keeps (the winner).
    Done { now_ms: f64, first: bool },
    /// A physical attempt resolved with a provider-style error (throttle,
    /// crash, shed) — it can never win. Machines may react by retrying
    /// (with backoff) or hedging immediately; a failure never settles the
    /// logical request.
    Failed { now_ms: f64 },
}

impl PolicyEvent {
    /// The event's timestamp in milliseconds.
    pub fn now_ms(&self) -> f64 {
        match *self {
            PolicyEvent::Issued { now_ms, .. }
            | PolicyEvent::Wake { now_ms, .. }
            | PolicyEvent::Done { now_ms, .. }
            | PolicyEvent::Failed { now_ms } => now_ms,
        }
    }
}

/// Instruction emitted by a machine for the harness to execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Deliver a [`PolicyEvent::Wake`] at `at_ms` (or the next event
    /// boundary after it).
    Arm { at_ms: f64 },
    /// Launch one duplicate attempt of the logical request.
    Launch,
    /// Cancel every physical attempt that has not yet completed.
    CancelOutstanding,
    /// Deadline semantics: cancel everything outstanding and give the
    /// logical request up without a result. After an abandon no machine
    /// in the composition may launch again.
    Abandon,
}

/// Fixed-capacity action buffer; the harness allocates one and reuses
/// it for every event delivery.
#[derive(Debug, Clone)]
pub struct Actions {
    buf: [Action; MAX_ACTIONS],
    len: usize,
}

impl Actions {
    pub fn new() -> Self {
        Actions { buf: [Action::Launch; MAX_ACTIONS], len: 0 }
    }

    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends an action. Overflow beyond [`MAX_ACTIONS`] drops the
    /// action — specs are validated so a legal policy can never get
    /// there, and dropping beats panicking mid-measurement.
    pub fn push(&mut self, action: Action) {
        debug_assert!(self.len < MAX_ACTIONS, "Actions buffer overflow");
        if self.len < MAX_ACTIONS {
            self.buf[self.len] = action;
            self.len += 1;
        }
    }

    pub fn as_slice(&self) -> &[Action] {
        &self.buf[..self.len]
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for Actions {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> IntoIterator for &'a Actions {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Event in → actions out, fixed-size state, no allocation.
pub trait PolicyMachine {
    /// Delivers one lifecycle event; the machine pushes any actions
    /// into `out` (which the caller has already cleared or wants
    /// appended to — machines only push).
    fn on_event(&mut self, ev: PolicyEvent, out: &mut Actions);

    /// Returns the machine to its pristine state so it can serve the
    /// next logical request of the same virtual user.
    fn reset(&mut self);
}

/// How a hedge machine derives its fire threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Fixed threshold in milliseconds.
    StaticMs(f64),
    /// Track the run's own online estimate of this latency quantile
    /// (delivered per request via [`PolicyEvent::Issued::estimate_ms`]).
    /// Until the estimate warms up the machine does not hedge.
    Quantile(f64),
}

/// Hedge-after-quantile: if the primary attempt has not completed
/// within the threshold, launch a duplicate; repeat up to `max_hedges`
/// times, then wait for whichever attempt wins. First completion
/// cancels the rest.
#[derive(Debug, Clone)]
pub struct Hedge {
    threshold: Threshold,
    max_hedges: u32,
    // State.
    threshold_ms: f64,
    next_wake: f64,
    fired: u32,
    settled: bool,
}

impl Hedge {
    pub fn new(threshold: Threshold, max_hedges: u32) -> Self {
        Hedge {
            threshold,
            max_hedges,
            threshold_ms: f64::NAN,
            next_wake: f64::NAN,
            fired: 0,
            settled: false,
        }
    }

    /// The quantile this machine tracks online, if any.
    pub fn online_quantile(&self) -> Option<f64> {
        match self.threshold {
            Threshold::Quantile(q) => Some(q),
            Threshold::StaticMs(_) => None,
        }
    }

    fn due(&self, now_ms: f64) -> bool {
        self.next_wake.is_finite() && now_ms + EPS_MS >= self.next_wake
    }
}

impl PolicyMachine for Hedge {
    fn on_event(&mut self, ev: PolicyEvent, out: &mut Actions) {
        match ev {
            PolicyEvent::Issued { now_ms, estimate_ms } => {
                let thr = match self.threshold {
                    Threshold::StaticMs(ms) => ms,
                    Threshold::Quantile(_) => estimate_ms,
                };
                // A NaN estimate means the sketch has not warmed up yet:
                // run this request unhedged rather than guessing.
                if thr.is_finite() && thr > 0.0 && self.max_hedges > 0 {
                    self.threshold_ms = thr;
                    self.next_wake = now_ms + thr;
                    out.push(Action::Arm { at_ms: self.next_wake });
                }
            }
            PolicyEvent::Wake { now_ms, .. } => {
                if self.settled || !self.due(now_ms) {
                    return;
                }
                self.fired += 1;
                out.push(Action::Launch);
                if self.fired < self.max_hedges {
                    self.next_wake = now_ms + self.threshold_ms;
                    out.push(Action::Arm { at_ms: self.next_wake });
                } else {
                    self.next_wake = f64::NAN;
                }
            }
            PolicyEvent::Done { first, .. } => {
                if first {
                    self.settled = true;
                    self.next_wake = f64::NAN;
                    out.push(Action::CancelOutstanding);
                }
            }
            PolicyEvent::Failed { now_ms } => {
                // An attempt errored: it can never win, so fire the next
                // hedge immediately instead of waiting out the threshold.
                if self.settled || !self.threshold_ms.is_finite() || self.fired >= self.max_hedges {
                    return;
                }
                self.fired += 1;
                out.push(Action::Launch);
                if self.fired < self.max_hedges {
                    self.next_wake = now_ms + self.threshold_ms;
                    out.push(Action::Arm { at_ms: self.next_wake });
                } else {
                    self.next_wake = f64::NAN;
                }
            }
        }
    }

    fn reset(&mut self) {
        self.threshold_ms = f64::NAN;
        self.next_wake = f64::NAN;
        self.fired = 0;
        self.settled = false;
    }
}

/// Retry with exponential backoff and bounded jitter: if an attempt has
/// not completed within `timeout_ms`, cancel it and relaunch after
/// `base_ms * factor^k * (1 + jitter * jitter_frac)` where `jitter` is
/// the wake's uniform draw. With `factor >= 1 + jitter_frac` (enforced
/// by spec validation) the realized backoff sequence is monotone
/// non-decreasing for every jitter realization.
#[derive(Debug, Clone)]
pub struct Retry {
    timeout_ms: f64,
    base_ms: f64,
    factor: f64,
    jitter_frac: f64,
    max_retries: u32,
    // State.
    awaiting_backoff: bool,
    retries: u32,
    next_wake: f64,
    settled: bool,
}

impl Retry {
    pub fn new(
        timeout_ms: f64,
        base_ms: f64,
        factor: f64,
        jitter_frac: f64,
        max_retries: u32,
    ) -> Self {
        Retry {
            timeout_ms,
            base_ms,
            factor,
            jitter_frac,
            max_retries,
            awaiting_backoff: false,
            retries: 0,
            next_wake: f64::NAN,
            settled: false,
        }
    }

    /// The realized backoff before retry `k` (0-based) under jitter
    /// draw `jitter` in `[0, 1)`. Pure, for property tests.
    pub fn backoff_ms(&self, k: u32, jitter: f64) -> f64 {
        self.base_ms * self.factor.powi(k as i32) * (1.0 + jitter * self.jitter_frac)
    }

    fn due(&self, now_ms: f64) -> bool {
        self.next_wake.is_finite() && now_ms + EPS_MS >= self.next_wake
    }
}

impl PolicyMachine for Retry {
    fn on_event(&mut self, ev: PolicyEvent, out: &mut Actions) {
        match ev {
            PolicyEvent::Issued { now_ms, .. } => {
                self.next_wake = now_ms + self.timeout_ms;
                out.push(Action::Arm { at_ms: self.next_wake });
            }
            PolicyEvent::Wake { now_ms, jitter } => {
                if self.settled || !self.due(now_ms) {
                    return;
                }
                if self.awaiting_backoff {
                    // Backoff elapsed: launch the retry and arm its
                    // timeout.
                    self.awaiting_backoff = false;
                    out.push(Action::Launch);
                    self.next_wake = now_ms + self.timeout_ms;
                    out.push(Action::Arm { at_ms: self.next_wake });
                } else if self.retries < self.max_retries {
                    // Attempt timed out: abort it, back off, relaunch.
                    out.push(Action::CancelOutstanding);
                    let backoff = self.backoff_ms(self.retries, jitter);
                    self.retries += 1;
                    self.awaiting_backoff = true;
                    self.next_wake = now_ms + backoff;
                    out.push(Action::Arm { at_ms: self.next_wake });
                } else {
                    // Out of retries: let the last attempt ride (a
                    // composed deadline can still abandon it).
                    self.next_wake = f64::NAN;
                }
            }
            PolicyEvent::Done { first, .. } => {
                if first {
                    self.settled = true;
                    self.next_wake = f64::NAN;
                    out.push(Action::CancelOutstanding);
                }
            }
            PolicyEvent::Failed { now_ms } => {
                // The attempt resolved on its own (nothing to cancel):
                // back off and relaunch, jitter-free so failure paths
                // stay deterministic without consuming a wake's draw.
                if self.settled || self.awaiting_backoff {
                    return;
                }
                if self.retries < self.max_retries {
                    let backoff = self.backoff_ms(self.retries, 0.0);
                    self.retries += 1;
                    self.awaiting_backoff = true;
                    self.next_wake = now_ms + backoff;
                    out.push(Action::Arm { at_ms: self.next_wake });
                } else {
                    self.next_wake = f64::NAN;
                }
            }
        }
    }

    fn reset(&mut self) {
        self.awaiting_backoff = false;
        self.retries = 0;
        self.next_wake = f64::NAN;
        self.settled = false;
    }
}

/// Deadline cancellation: abandon the logical request if nothing has
/// completed within `deadline_ms` of issue.
#[derive(Debug, Clone)]
pub struct Deadline {
    deadline_ms: f64,
    // State.
    next_wake: f64,
    settled: bool,
}

impl Deadline {
    pub fn new(deadline_ms: f64) -> Self {
        Deadline { deadline_ms, next_wake: f64::NAN, settled: false }
    }

    fn due(&self, now_ms: f64) -> bool {
        self.next_wake.is_finite() && now_ms + EPS_MS >= self.next_wake
    }
}

impl PolicyMachine for Deadline {
    fn on_event(&mut self, ev: PolicyEvent, out: &mut Actions) {
        match ev {
            PolicyEvent::Issued { now_ms, .. } => {
                self.next_wake = now_ms + self.deadline_ms;
                out.push(Action::Arm { at_ms: self.next_wake });
            }
            PolicyEvent::Wake { now_ms, .. } => {
                if self.settled || !self.due(now_ms) {
                    return;
                }
                self.settled = true;
                self.next_wake = f64::NAN;
                out.push(Action::Abandon);
            }
            PolicyEvent::Done { first, .. } => {
                if first {
                    self.settled = true;
                    self.next_wake = f64::NAN;
                }
            }
            // Failures don't move a deadline: the clock keeps running
            // until something completes or the deadline abandons.
            PolicyEvent::Failed { .. } => {}
        }
    }

    fn reset(&mut self) {
        self.next_wake = f64::NAN;
        self.settled = false;
    }
}

/// Tied requests: launch `copies` attempts up front, keep the first
/// completion, cancel the losers.
#[derive(Debug, Clone)]
pub struct Tied {
    copies: u32,
    settled: bool,
}

impl Tied {
    pub fn new(copies: u32) -> Self {
        Tied { copies, settled: false }
    }
}

impl PolicyMachine for Tied {
    fn on_event(&mut self, ev: PolicyEvent, out: &mut Actions) {
        match ev {
            PolicyEvent::Issued { .. } => {
                for _ in 1..self.copies {
                    out.push(Action::Launch);
                }
            }
            PolicyEvent::Wake { .. } => {}
            PolicyEvent::Done { first, .. } => {
                if first && !self.settled {
                    self.settled = true;
                    out.push(Action::CancelOutstanding);
                }
            }
            // Tied copies are launched up front; a failed copy just
            // leaves the race to its siblings.
            PolicyEvent::Failed { .. } => {}
        }
    }

    fn reset(&mut self) {
        self.settled = false;
    }
}

/// One concrete machine, enum-dispatched so compositions need no boxing.
#[derive(Debug, Clone)]
pub enum Machine {
    Hedge(Hedge),
    Retry(Retry),
    Deadline(Deadline),
    Tied(Tied),
}

impl PolicyMachine for Machine {
    fn on_event(&mut self, ev: PolicyEvent, out: &mut Actions) {
        match self {
            Machine::Hedge(m) => m.on_event(ev, out),
            Machine::Retry(m) => m.on_event(ev, out),
            Machine::Deadline(m) => m.on_event(ev, out),
            Machine::Tied(m) => m.on_event(ev, out),
        }
    }

    fn reset(&mut self) {
        match self {
            Machine::Hedge(m) => m.reset(),
            Machine::Retry(m) => m.reset(),
            Machine::Deadline(m) => m.reset(),
            Machine::Tied(m) => m.reset(),
        }
    }
}

/// A composition of machines sharing one logical request. Events fan
/// out to every part in order; actions are concatenated with two global
/// guards the parts themselves cannot enforce:
///
/// * once any part abandons, no further `Launch` is forwarded — a
///   deadline-cancelled request is dead, a hedge or retry may not
///   resurrect it (this run or any later event);
/// * total physical attempts (primary included) never exceed the
///   composition's cap.
///
/// The `parts` vector is allocated once at build time; event delivery
/// itself is allocation-free.
#[derive(Debug, Clone)]
pub struct Composite {
    parts: Vec<Machine>,
    cap: u32,
    launched: u32,
    abandoned: bool,
    scratch: Actions,
}

impl Composite {
    /// `cap` is the maximum physical attempts per logical request,
    /// primary included; it is clamped to [`MAX_ATTEMPTS`].
    pub fn new(parts: Vec<Machine>, cap: u32) -> Self {
        Composite {
            parts,
            cap: cap.clamp(1, MAX_ATTEMPTS),
            launched: 0,
            abandoned: false,
            scratch: Actions::new(),
        }
    }

    /// Maximum physical attempts per logical request.
    pub fn attempt_cap(&self) -> u32 {
        self.cap
    }

    /// The quantile the composition's hedge tracks online, if any
    /// (first online-hedge part wins; validation rejects mixes).
    pub fn online_quantile(&self) -> Option<f64> {
        self.parts.iter().find_map(|p| match p {
            Machine::Hedge(h) => h.online_quantile(),
            _ => None,
        })
    }
}

impl PolicyMachine for Composite {
    fn on_event(&mut self, ev: PolicyEvent, out: &mut Actions) {
        if let PolicyEvent::Issued { .. } = ev {
            // The harness launches the primary itself; account for it.
            self.launched = 1;
            self.abandoned = false;
        }
        let Composite { parts, cap, launched, abandoned, scratch } = self;
        for part in parts.iter_mut() {
            scratch.clear();
            part.on_event(ev, scratch);
            for &action in scratch.as_slice() {
                match action {
                    Action::Launch => {
                        if !*abandoned && *launched < *cap {
                            *launched += 1;
                            out.push(Action::Launch);
                        }
                    }
                    Action::Abandon => {
                        *abandoned = true;
                        out.push(Action::Abandon);
                    }
                    other => out.push(other),
                }
            }
        }
    }

    fn reset(&mut self) {
        for part in &mut self.parts {
            part.reset();
        }
        self.launched = 0;
        self.abandoned = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issued(now: f64, est: f64) -> PolicyEvent {
        PolicyEvent::Issued { now_ms: now, estimate_ms: est }
    }

    fn wake(now: f64) -> PolicyEvent {
        PolicyEvent::Wake { now_ms: now, jitter: 0.5 }
    }

    fn deliver(m: &mut impl PolicyMachine, ev: PolicyEvent) -> Vec<Action> {
        let mut out = Actions::new();
        m.on_event(ev, &mut out);
        out.as_slice().to_vec()
    }

    #[test]
    fn hedge_fires_at_threshold_and_cancels_on_win() {
        let mut h = Hedge::new(Threshold::StaticMs(100.0), 1);
        let a = deliver(&mut h, issued(0.0, f64::NAN));
        assert_eq!(a, vec![Action::Arm { at_ms: 100.0 }]);
        // Early wake (a sibling's): ignored.
        assert!(deliver(&mut h, wake(50.0)).is_empty());
        let a = deliver(&mut h, wake(100.0));
        assert_eq!(a, vec![Action::Launch]);
        // max_hedges reached: a later wake does nothing.
        assert!(deliver(&mut h, wake(200.0)).is_empty());
        let a = deliver(&mut h, PolicyEvent::Done { now_ms: 210.0, first: true });
        assert_eq!(a, vec![Action::CancelOutstanding]);
    }

    #[test]
    fn hedge_with_nan_estimate_stays_quiet() {
        let mut h = Hedge::new(Threshold::Quantile(0.95), 1);
        assert!(deliver(&mut h, issued(0.0, f64::NAN)).is_empty());
        assert!(deliver(&mut h, wake(1_000.0)).is_empty());
    }

    #[test]
    fn hedge_quantile_threshold_uses_estimate() {
        let mut h = Hedge::new(Threshold::Quantile(0.95), 2);
        let a = deliver(&mut h, issued(10.0, 40.0));
        assert_eq!(a, vec![Action::Arm { at_ms: 50.0 }]);
        let a = deliver(&mut h, wake(50.0));
        assert_eq!(a, vec![Action::Launch, Action::Arm { at_ms: 90.0 }]);
        let a = deliver(&mut h, wake(90.0));
        assert_eq!(a, vec![Action::Launch]);
    }

    #[test]
    fn retry_times_out_backs_off_and_relaunches() {
        let mut r = Retry::new(100.0, 10.0, 2.0, 0.0, 2);
        let a = deliver(&mut r, issued(0.0, f64::NAN));
        assert_eq!(a, vec![Action::Arm { at_ms: 100.0 }]);
        // Timeout: cancel, back off 10ms.
        let a = deliver(&mut r, wake(100.0));
        assert_eq!(a, vec![Action::CancelOutstanding, Action::Arm { at_ms: 110.0 }]);
        // Backoff elapsed: relaunch, arm next timeout.
        let a = deliver(&mut r, wake(110.0));
        assert_eq!(a, vec![Action::Launch, Action::Arm { at_ms: 210.0 }]);
        // Second timeout: backoff doubles.
        let a = deliver(&mut r, wake(210.0));
        assert_eq!(a, vec![Action::CancelOutstanding, Action::Arm { at_ms: 230.0 }]);
        let a = deliver(&mut r, wake(230.0));
        assert_eq!(a, vec![Action::Launch, Action::Arm { at_ms: 330.0 }]);
        // Retries exhausted: final timeout goes quiet.
        assert!(deliver(&mut r, wake(330.0)).is_empty());
    }

    #[test]
    fn retry_win_disarms() {
        let mut r = Retry::new(100.0, 10.0, 2.0, 0.5, 3);
        deliver(&mut r, issued(0.0, f64::NAN));
        let a = deliver(&mut r, PolicyEvent::Done { now_ms: 40.0, first: true });
        assert_eq!(a, vec![Action::CancelOutstanding]);
        assert!(deliver(&mut r, wake(100.0)).is_empty());
    }

    #[test]
    fn deadline_abandons_once() {
        let mut d = Deadline::new(500.0);
        let a = deliver(&mut d, issued(0.0, f64::NAN));
        assert_eq!(a, vec![Action::Arm { at_ms: 500.0 }]);
        let a = deliver(&mut d, wake(500.0));
        assert_eq!(a, vec![Action::Abandon]);
        assert!(deliver(&mut d, wake(600.0)).is_empty());
    }

    #[test]
    fn deadline_win_beats_deadline() {
        let mut d = Deadline::new(500.0);
        deliver(&mut d, issued(0.0, f64::NAN));
        deliver(&mut d, PolicyEvent::Done { now_ms: 100.0, first: true });
        assert!(deliver(&mut d, wake(500.0)).is_empty());
    }

    #[test]
    fn tied_launches_copies_then_cancels_losers() {
        let mut t = Tied::new(3);
        let a = deliver(&mut t, issued(0.0, f64::NAN));
        assert_eq!(a, vec![Action::Launch, Action::Launch]);
        let a = deliver(&mut t, PolicyEvent::Done { now_ms: 10.0, first: true });
        assert_eq!(a, vec![Action::CancelOutstanding]);
        assert!(deliver(&mut t, PolicyEvent::Done { now_ms: 12.0, first: false }).is_empty());
    }

    #[test]
    fn composite_suppresses_launch_after_abandon() {
        // Deadline before hedge in part order, deadline fires first.
        let mut c = Composite::new(
            vec![
                Machine::Deadline(Deadline::new(100.0)),
                Machine::Hedge(Hedge::new(Threshold::StaticMs(100.0), 1)),
            ],
            4,
        );
        deliver(&mut c, issued(0.0, f64::NAN));
        let a = deliver(&mut c, wake(100.0));
        // Abandon emitted, the hedge's simultaneous launch suppressed.
        assert_eq!(a, vec![Action::Abandon]);
    }

    #[test]
    fn composite_enforces_attempt_cap() {
        let mut c = Composite::new(vec![Machine::Tied(Tied::new(10))], 3);
        let a = deliver(&mut c, issued(0.0, f64::NAN));
        // Primary + 2 duplicates = cap 3; remaining 7 launches dropped.
        assert_eq!(a, vec![Action::Launch, Action::Launch]);
    }

    #[test]
    fn retry_backs_off_after_failure_without_cancelling() {
        let mut r = Retry::new(100.0, 10.0, 2.0, 0.0, 2);
        deliver(&mut r, issued(0.0, f64::NAN));
        // The attempt errored at 20ms: no cancel (it already resolved),
        // just a jitter-free backoff arm.
        let a = deliver(&mut r, PolicyEvent::Failed { now_ms: 20.0 });
        assert_eq!(a, vec![Action::Arm { at_ms: 30.0 }]);
        // Backoff elapsed: relaunch and arm the next timeout.
        let a = deliver(&mut r, wake(30.0));
        assert_eq!(a, vec![Action::Launch, Action::Arm { at_ms: 130.0 }]);
        // Second failure doubles the backoff.
        let a = deliver(&mut r, PolicyEvent::Failed { now_ms: 140.0 });
        assert_eq!(a, vec![Action::Arm { at_ms: 160.0 }]);
        deliver(&mut r, wake(160.0));
        // Retries exhausted: further failures go quiet.
        assert!(deliver(&mut r, PolicyEvent::Failed { now_ms: 300.0 }).is_empty());
    }

    #[test]
    fn retry_ignores_failure_while_backing_off_or_settled() {
        let mut r = Retry::new(100.0, 10.0, 2.0, 0.0, 3);
        deliver(&mut r, issued(0.0, f64::NAN));
        deliver(&mut r, PolicyEvent::Failed { now_ms: 20.0 });
        // A second stale failure mid-backoff must not double-book.
        assert!(deliver(&mut r, PolicyEvent::Failed { now_ms: 25.0 }).is_empty());
        deliver(&mut r, wake(30.0));
        deliver(&mut r, PolicyEvent::Done { now_ms: 50.0, first: true });
        assert!(deliver(&mut r, PolicyEvent::Failed { now_ms: 60.0 }).is_empty());
    }

    #[test]
    fn hedge_fires_immediately_on_failure() {
        let mut h = Hedge::new(Threshold::StaticMs(100.0), 2);
        deliver(&mut h, issued(0.0, f64::NAN));
        let a = deliver(&mut h, PolicyEvent::Failed { now_ms: 20.0 });
        assert_eq!(a, vec![Action::Launch, Action::Arm { at_ms: 120.0 }]);
        let a = deliver(&mut h, PolicyEvent::Failed { now_ms: 30.0 });
        assert_eq!(a, vec![Action::Launch], "last hedge: no re-arm");
        assert!(deliver(&mut h, PolicyEvent::Failed { now_ms: 40.0 }).is_empty());
    }

    #[test]
    fn unarmed_hedge_and_passive_machines_ignore_failures() {
        // NaN estimate: the hedge never armed, so failures stay quiet.
        let mut h = Hedge::new(Threshold::Quantile(0.95), 1);
        deliver(&mut h, issued(0.0, f64::NAN));
        assert!(deliver(&mut h, PolicyEvent::Failed { now_ms: 10.0 }).is_empty());
        let mut d = Deadline::new(500.0);
        deliver(&mut d, issued(0.0, f64::NAN));
        assert!(deliver(&mut d, PolicyEvent::Failed { now_ms: 10.0 }).is_empty());
        let mut t = Tied::new(3);
        deliver(&mut t, issued(0.0, f64::NAN));
        assert!(deliver(&mut t, PolicyEvent::Failed { now_ms: 10.0 }).is_empty());
    }

    #[test]
    fn composite_caps_failure_driven_launches() {
        let mut c =
            Composite::new(vec![Machine::Hedge(Hedge::new(Threshold::StaticMs(50.0), 10))], 2);
        deliver(&mut c, issued(0.0, f64::NAN));
        let a = deliver(&mut c, PolicyEvent::Failed { now_ms: 10.0 });
        assert_eq!(a[0], Action::Launch);
        // Cap of 2 attempts already reached (primary + hedge): further
        // failure-driven launches are suppressed.
        let a = deliver(&mut c, PolicyEvent::Failed { now_ms: 20.0 });
        assert!(!a.contains(&Action::Launch), "{a:?}");
    }

    #[test]
    fn composite_reset_reuses_cleanly() {
        let mut c =
            Composite::new(vec![Machine::Hedge(Hedge::new(Threshold::StaticMs(50.0), 1))], 2);
        deliver(&mut c, issued(0.0, f64::NAN));
        assert_eq!(deliver(&mut c, wake(50.0)), vec![Action::Launch]);
        deliver(&mut c, PolicyEvent::Done { now_ms: 60.0, first: true });
        c.reset();
        let a = deliver(&mut c, issued(1_000.0, f64::NAN));
        assert_eq!(a, vec![Action::Arm { at_ms: 1_050.0 }]);
        assert_eq!(deliver(&mut c, wake(1_050.0)), vec![Action::Launch]);
    }
}
