//! The cluster scheduler: spawn pacing and scale-out decisions.
//!
//! [`SpawnGovernor`] paces instance spawns at the provider's sustained
//! rate, with burst capacity and an optional adaptive boost under large
//! backlogs (paper §VI-D2 infers such load adaptation from Google's
//! burst-500 behaviour). [`desired_spawns`] computes how many new
//! instances a [`ScalePolicy`] wants given the current function state.

use simkit::ratelimit::TokenBucket;
use simkit::time::SimTime;

use crate::config::{ScalePolicy, ScalingConfig};

/// Paces instance spawns.
#[derive(Debug)]
pub struct SpawnGovernor {
    bucket: TokenBucket,
    boosted: Option<TokenBucket>,
    threshold: u32,
    pending: u32,
    total_spawns: u64,
}

impl SpawnGovernor {
    /// Creates a governor from the provider's scaling configuration.
    pub fn new(cfg: &ScalingConfig) -> SpawnGovernor {
        let boosted = (cfg.adaptive_spawn_threshold > 0).then(|| {
            TokenBucket::new(cfg.spawn_burst, cfg.spawn_rate_per_sec * cfg.adaptive_spawn_mult)
        });
        SpawnGovernor {
            bucket: TokenBucket::new(cfg.spawn_burst, cfg.spawn_rate_per_sec),
            boosted,
            threshold: cfg.adaptive_spawn_threshold,
            pending: 0,
            total_spawns: 0,
        }
    }

    /// Reserves one spawn slot requested at `now`; returns when the spawn
    /// may start. Call [`SpawnGovernor::spawn_started`] when the boot
    /// actually begins so the backlog count stays accurate.
    pub fn reserve(&mut self, now: SimTime) -> SimTime {
        self.pending += 1;
        self.total_spawns += 1;
        let use_boost = self.threshold > 0 && self.pending >= self.threshold;
        match (&mut self.boosted, use_boost) {
            (Some(fast), true) => {
                // Keep the normal bucket drained in step so a later fall
                // back to it does not grant a stale burst.
                let _ = self.bucket.acquire_at(now, 1.0);
                fast.acquire_at(now, 1.0)
            }
            _ => {
                if let Some(fast) = &mut self.boosted {
                    let _ = fast.acquire_at(now, 1.0);
                }
                self.bucket.acquire_at(now, 1.0)
            }
        }
    }

    /// Marks a reserved spawn as started (boot beginning).
    pub fn spawn_started(&mut self) {
        self.pending = self.pending.saturating_sub(1);
    }

    /// Spawns reserved so far.
    pub fn total_spawns(&self) -> u64 {
        self.total_spawns
    }

    /// Current reserved-but-not-started backlog.
    pub fn pending(&self) -> u32 {
        self.pending
    }
}

/// A snapshot of one function's capacity state used for scaling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySnapshot {
    /// Requests waiting in the function's pending queue.
    pub queued: u32,
    /// Instances currently executing a request.
    pub busy: u32,
    /// Instances idle and ready.
    pub idle: u32,
    /// Instances currently booting.
    pub booting: u32,
}

impl CapacitySnapshot {
    /// Total live + in-progress instances.
    pub fn total_instances(&self) -> u32 {
        self.busy + self.idle + self.booting
    }
}

/// How many *additional* instances the policy wants to spawn right now.
///
/// * `PerRequest`: one instance per queued request not already covered by
///   an idle or booting instance.
/// * `TargetConcurrency`: enough instances that outstanding work per
///   instance stays at or below `target`.
/// * `Periodic`: zero here — growth happens on scale ticks (see
///   [`periodic_step`]); only the bootstrap instance is requested when the
///   function has no capacity at all.
pub fn desired_spawns(policy: &ScalePolicy, snap: CapacitySnapshot) -> u32 {
    match policy {
        ScalePolicy::PerRequest => snap.queued.saturating_sub(snap.idle + snap.booting),
        ScalePolicy::TargetConcurrency { target } => {
            let outstanding = snap.queued + snap.busy;
            let desired = (outstanding as f64 / target).ceil() as u32;
            desired.saturating_sub(snap.total_instances())
        }
        ScalePolicy::Periodic { .. } => {
            if snap.total_instances() == 0 && snap.queued > 0 {
                1
            } else {
                0
            }
        }
        // Committed-assignment policies spawn inline at enqueue time.
        ScalePolicy::CostAware { .. } => 0,
    }
}

/// Instances to add on one periodic scale tick (Azure-style controller):
/// `step` while a backlog exists, 0 otherwise.
pub fn periodic_step(policy: &ScalePolicy, snap: CapacitySnapshot) -> u32 {
    match policy {
        ScalePolicy::Periodic { step, .. } if snap.queued > 0 => *step,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::dist::Dist;

    fn scaling(policy: ScalePolicy) -> ScalingConfig {
        ScalingConfig {
            policy,
            decision_ms: Dist::constant(1.0),
            spawn_rate_per_sec: 10.0,
            spawn_burst: 2.0,
            adaptive_spawn_threshold: 0,
            adaptive_spawn_mult: 1.0,
        }
    }

    #[test]
    fn governor_paces_at_rate() {
        let mut gov = SpawnGovernor::new(&scaling(ScalePolicy::PerRequest));
        let t0 = SimTime::ZERO;
        // Burst of 2 goes immediately, then 10/s pacing.
        assert_eq!(gov.reserve(t0), t0);
        assert_eq!(gov.reserve(t0), t0);
        assert_eq!(gov.reserve(t0), SimTime::from_millis(100.0));
        assert_eq!(gov.reserve(t0), SimTime::from_millis(200.0));
        assert_eq!(gov.total_spawns(), 4);
    }

    #[test]
    fn governor_boosts_over_threshold() {
        let mut cfg = scaling(ScalePolicy::PerRequest);
        cfg.adaptive_spawn_threshold = 3;
        cfg.adaptive_spawn_mult = 10.0;
        cfg.spawn_burst = 1.0;
        let mut gov = SpawnGovernor::new(&cfg);
        let t0 = SimTime::ZERO;
        let t1 = gov.reserve(t0); // pending 1, normal: burst token
        let t2 = gov.reserve(t0); // pending 2, normal: 100ms
        let t3 = gov.reserve(t0); // pending 3 >= threshold, boosted 100/s
        let t4 = gov.reserve(t0);
        assert_eq!(t1, t0);
        assert_eq!(t2, SimTime::from_millis(100.0));
        assert!(t3 < SimTime::from_millis(100.0), "boosted spawn was {t3}");
        assert!(t4 <= SimTime::from_millis(100.0), "boosted spawn was {t4}");
    }

    #[test]
    fn pending_tracks_started_spawns() {
        let mut gov = SpawnGovernor::new(&scaling(ScalePolicy::PerRequest));
        gov.reserve(SimTime::ZERO);
        gov.reserve(SimTime::ZERO);
        assert_eq!(gov.pending(), 2);
        gov.spawn_started();
        assert_eq!(gov.pending(), 1);
    }

    fn snap(queued: u32, busy: u32, idle: u32, booting: u32) -> CapacitySnapshot {
        CapacitySnapshot { queued, busy, idle, booting }
    }

    #[test]
    fn per_request_spawns_one_per_uncovered_request() {
        let p = ScalePolicy::PerRequest;
        assert_eq!(desired_spawns(&p, snap(5, 0, 0, 0)), 5);
        assert_eq!(desired_spawns(&p, snap(5, 0, 2, 1)), 2);
        assert_eq!(desired_spawns(&p, snap(1, 3, 2, 0)), 0);
    }

    #[test]
    fn target_concurrency_sizes_fleet() {
        let p = ScalePolicy::TargetConcurrency { target: 4.0 };
        // 100 outstanding / 4 = 25 desired.
        assert_eq!(desired_spawns(&p, snap(100, 0, 0, 0)), 25);
        assert_eq!(desired_spawns(&p, snap(100, 0, 0, 20)), 5);
        // 3 queued + 1 busy = 4 outstanding, covered by the busy instance.
        assert_eq!(desired_spawns(&p, snap(3, 1, 0, 0)), 0);
        assert_eq!(desired_spawns(&p, snap(5, 1, 0, 0)), 1);
        assert_eq!(desired_spawns(&p, snap(0, 0, 5, 0)), 0);
    }

    #[test]
    fn periodic_only_bootstraps() {
        let p = ScalePolicy::Periodic { interval_ms: 1000.0, step: 2 };
        assert_eq!(desired_spawns(&p, snap(50, 0, 0, 0)), 1);
        assert_eq!(desired_spawns(&p, snap(50, 0, 0, 1)), 0);
        assert_eq!(desired_spawns(&p, snap(50, 1, 0, 0)), 0);
    }

    #[test]
    fn periodic_step_adds_while_backlogged() {
        let p = ScalePolicy::Periodic { interval_ms: 1000.0, step: 2 };
        assert_eq!(periodic_step(&p, snap(10, 1, 0, 0)), 2);
        assert_eq!(periodic_step(&p, snap(0, 1, 0, 0)), 0);
        assert_eq!(periodic_step(&ScalePolicy::PerRequest, snap(10, 0, 0, 0)), 0);
    }

    #[test]
    fn capacity_snapshot_totals() {
        assert_eq!(snap(9, 1, 2, 3).total_instances(), 6);
    }
}
