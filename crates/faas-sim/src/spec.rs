//! Function specifications: what gets deployed into the simulated cloud.

use serde::{Deserialize, Serialize};
use simkit::dist::Dist;

use crate::types::{DeploymentMethod, FunctionId, Runtime, TransferMode};

/// Specification of a deployable function.
///
/// Mirrors STeLLAR's *static function configuration* (paper §IV): runtime,
/// deployment method, memory size, effective image size (base + an added
/// random-content file), execution-time model and an optional chain link to
/// a downstream function.
///
/// Build with [`FunctionSpec::builder`]:
///
/// ```
/// use faas_sim::spec::FunctionSpec;
/// use faas_sim::types::{DeploymentMethod, Runtime};
///
/// let spec = FunctionSpec::builder("hello")
///     .runtime(Runtime::Go)
///     .deployment(DeploymentMethod::Zip)
///     .memory_mb(2048)
///     .extra_image_mb(100.0)
///     .build();
/// assert_eq!(spec.name, "hello");
/// assert_eq!(spec.extra_image_mb, 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Function name (for reporting; uniqueness not required).
    pub name: String,
    /// Language runtime.
    pub runtime: Runtime,
    /// Packaging / deployment method.
    pub deployment: DeploymentMethod,
    /// Instance memory size, MB (drives CPU throttling below the
    /// provider's full-speed threshold).
    pub memory_mb: u32,
    /// Size of the extra random-content file added to the image, decimal
    /// MB (paper §VI-B2 adds 10 MB / 100 MB files).
    pub extra_image_mb: f64,
    /// Execution ("busy-spin") time model, ms.
    pub exec_ms: Dist,
    /// Optional downstream chain hop performed after execution.
    pub chain: Option<ChainSpec>,
}

/// One chain hop: invoke `next` with a payload over `mode`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// The function to invoke (must already be deployed).
    pub next: FunctionId,
    /// Payload transport.
    pub mode: TransferMode,
    /// Payload size in bytes.
    pub payload_bytes: u64,
}

impl FunctionSpec {
    /// Starts building a spec with paper-default settings: Python 3, ZIP
    /// deployment, 2048 MB memory, no extra image payload, immediate
    /// return, no chain.
    pub fn builder<S: Into<String>>(name: S) -> FunctionSpecBuilder {
        FunctionSpecBuilder {
            spec: FunctionSpec {
                name: name.into(),
                runtime: Runtime::Python3,
                deployment: DeploymentMethod::Zip,
                memory_mb: 2048,
                extra_image_mb: 0.0,
                exec_ms: Dist::constant(0.0),
                chain: None,
            },
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("function name is empty".to_string());
        }
        if self.memory_mb == 0 {
            return Err(format!("{}: memory_mb must be positive", self.name));
        }
        if !self.extra_image_mb.is_finite() || self.extra_image_mb < 0.0 {
            return Err(format!("{}: invalid extra_image_mb {}", self.name, self.extra_image_mb));
        }
        self.exec_ms.validate().map_err(|e| format!("{}: exec_ms: {e}", self.name))?;
        if let Some(chain) = &self.chain {
            if chain.payload_bytes == 0 {
                return Err(format!("{}: chained payload must be non-empty", self.name));
            }
        }
        Ok(())
    }
}

/// Builder for [`FunctionSpec`] (consuming style).
#[derive(Debug, Clone)]
pub struct FunctionSpecBuilder {
    spec: FunctionSpec,
}

impl FunctionSpecBuilder {
    /// Sets the language runtime.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.spec.runtime = runtime;
        self
    }

    /// Sets the deployment method.
    pub fn deployment(mut self, deployment: DeploymentMethod) -> Self {
        self.spec.deployment = deployment;
        self
    }

    /// Sets instance memory, MB.
    pub fn memory_mb(mut self, memory_mb: u32) -> Self {
        self.spec.memory_mb = memory_mb;
        self
    }

    /// Adds an extra random-content file of `mb` decimal megabytes to the
    /// function image.
    pub fn extra_image_mb(mut self, mb: f64) -> Self {
        self.spec.extra_image_mb = mb;
        self
    }

    /// Sets a fixed busy-spin execution time, ms.
    pub fn exec_constant_ms(mut self, ms: f64) -> Self {
        self.spec.exec_ms = Dist::constant(ms);
        self
    }

    /// Sets an arbitrary execution-time distribution, ms.
    pub fn exec_ms(mut self, dist: Dist) -> Self {
        self.spec.exec_ms = dist;
        self
    }

    /// Chains this function to `next` with the given transport and payload.
    pub fn chain(mut self, next: FunctionId, mode: TransferMode, payload_bytes: u64) -> Self {
        self.spec.chain = Some(ChainSpec { next, mode, payload_bytes });
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation; use [`FunctionSpecBuilder::try_build`]
    /// for a fallible version.
    pub fn build(self) -> FunctionSpec {
        self.try_build().expect("invalid function spec")
    }

    /// Finishes the build, returning validation errors.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn try_build(self) -> Result<FunctionSpec, String> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let spec = FunctionSpec::builder("f").build();
        assert_eq!(spec.runtime, Runtime::Python3);
        assert_eq!(spec.deployment, DeploymentMethod::Zip);
        assert_eq!(spec.memory_mb, 2048);
        assert_eq!(spec.extra_image_mb, 0.0);
        assert!(spec.chain.is_none());
    }

    #[test]
    fn builder_sets_fields() {
        let spec = FunctionSpec::builder("g")
            .runtime(Runtime::Go)
            .deployment(DeploymentMethod::Container)
            .memory_mb(512)
            .extra_image_mb(10.0)
            .exec_constant_ms(1000.0)
            .build();
        assert_eq!(spec.runtime, Runtime::Go);
        assert_eq!(spec.deployment, DeploymentMethod::Container);
        assert_eq!(spec.memory_mb, 512);
        assert_eq!(spec.exec_ms, Dist::constant(1000.0));
    }

    #[test]
    fn chain_builder() {
        let consumer_id = FunctionId(1);
        let spec = FunctionSpec::builder("producer")
            .chain(consumer_id, TransferMode::Storage, 1_000_000)
            .build();
        let chain = spec.chain.unwrap();
        assert_eq!(chain.next, consumer_id);
        assert_eq!(chain.mode, TransferMode::Storage);
        assert_eq!(chain.payload_bytes, 1_000_000);
    }

    #[test]
    fn validation_catches_problems() {
        assert!(FunctionSpec::builder("").try_build().is_err());
        assert!(FunctionSpec::builder("f").memory_mb(0).try_build().is_err());
        assert!(FunctionSpec::builder("f").extra_image_mb(-1.0).try_build().is_err());
        assert!(FunctionSpec::builder("f")
            .chain(FunctionId(0), TransferMode::Inline, 0)
            .try_build()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid function spec")]
    fn build_panics_on_invalid() {
        FunctionSpec::builder("").build();
    }

    #[test]
    fn serde_round_trip() {
        let spec =
            FunctionSpec::builder("h").chain(FunctionId(2), TransferMode::Inline, 1024).build();
        let json = serde_json::to_string(&spec).unwrap();
        let back: FunctionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
