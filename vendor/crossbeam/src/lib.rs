//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (std has offered structured scoped threads since
//! 1.63, which is why this shim can stay tiny). The closure receives a
//! [`thread::Scope`] handle whose `spawn` mirrors crossbeam's signature —
//! spawned closures get a `&Scope` argument so nested spawns keep working.

pub mod thread {
    /// Scope handle passed to `scope` and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns. Unlike crossbeam, a
    /// panicking child propagates when joined by std's scope, so the `Err`
    /// arm of the returned `Result` only reflects panics in `f` itself —
    /// callers that `.expect()` the result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u32).join().expect("inner")).join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 7);
    }

    #[test]
    fn child_panic_propagates_as_error() {
        let result = crate::thread::scope(|s| {
            let _ = s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
