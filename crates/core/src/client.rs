//! The client: provider-agnostic load generation and measurement.
//!
//! Mirrors STeLLAR's client (§IV): invokes the endpoints produced by the
//! deployer in round-robin order at the configured inter-arrival time,
//! optionally issuing `burst_size` simultaneous requests per round, and
//! collects per-request latency samples plus the intra-function transfer
//! timestamps.

use faas_sim::cloud::CloudSim;
use faas_sim::request::{Completion, TransferSample};
use simkit::rng::Rng;
use simkit::time::SimTime;

use crate::config::{IatSpec, RuntimeConfig};
use crate::deployer::Deployment;

/// Everything the client measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completions from measured rounds, in completion order.
    pub completions: Vec<Completion>,
    /// Completions from warm-up rounds (excluded from statistics).
    pub warmup_completions: Vec<Completion>,
    /// Cross-function transfer samples from measured rounds.
    pub transfers: Vec<TransferSample>,
    /// Wall-clock (simulated) duration of the whole run.
    pub duration: SimTime,
}

impl RunResult {
    /// End-to-end latencies of measured completions, ms.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.completions.iter().map(Completion::latency_ms).collect()
    }

    /// Effective transfer times of measured transfer samples, ms.
    pub fn transfer_ms(&self) -> Vec<f64> {
        self.transfers.iter().map(TransferSample::transfer_ms).collect()
    }

    /// Fraction of measured completions that waited on a cold start.
    pub fn cold_fraction(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.iter().filter(|c| c.cold).count() as f64 / self.completions.len() as f64
    }
}

/// Errors from a client run.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The runtime configuration failed validation.
    InvalidConfig(String),
    /// The deployment has no endpoints.
    EmptyDeployment,
    /// Not all requests completed within the simulation horizon.
    IncompleteRun {
        /// Completions received.
        received: usize,
        /// Completions expected.
        expected: usize,
        /// The completions that did arrive, for post-mortem debugging.
        completions: Vec<Completion>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::InvalidConfig(msg) => write!(f, "invalid runtime config: {msg}"),
            ClientError::EmptyDeployment => write!(f, "deployment has no endpoints"),
            ClientError::IncompleteRun { received, expected, .. } => {
                write!(f, "run incomplete: {received}/{expected} completions")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Samples the next inter-arrival gap.
fn sample_iat_ms(iat: &IatSpec, rng: &mut Rng) -> f64 {
    match iat {
        IatSpec::Fixed { ms } => *ms,
        IatSpec::Exponential { mean_ms } => -mean_ms * rng.next_f64_open().ln(),
        IatSpec::Uniform { lo_ms, hi_ms } => rng.range_f64(*lo_ms, *hi_ms),
    }
}

/// Drives the workload described by `cfg` against `deployment` on
/// `cloud`, starting at the cloud's current time.
///
/// Rounds are issued at the configured IAT; each round sends
/// `cfg.burst_size` simultaneous requests to one endpoint, cycling through
/// endpoints round-robin (§IV/§V). The first `cfg.warmup_rounds` rounds
/// are collected separately and excluded from statistics. Requests are
/// tagged with their round number.
///
/// # Errors
///
/// Returns [`ClientError`] for invalid configs, empty deployments, or if
/// requests fail to complete within a generous horizon (which would
/// indicate a simulator bug).
pub fn run_workload(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    seed: u64,
) -> Result<RunResult, ClientError> {
    cfg.validate().map_err(ClientError::InvalidConfig)?;
    if deployment.is_empty() {
        return Err(ClientError::EmptyDeployment);
    }
    let mut rng = Rng::seed_from(seed).fork("client-iat");
    let start = cloud.now();
    let total_rounds = cfg.warmup_rounds + cfg.measured_rounds();
    cloud.reserve_requests((total_rounds * cfg.burst_size) as usize);

    let mut t = start;
    let mut last_issue = start;
    for round in 0..total_rounds {
        let endpoint = &deployment.endpoints[round as usize % deployment.len()];
        for _ in 0..cfg.burst_size {
            cloud.submit(endpoint.function, round as u64, t);
        }
        last_issue = t;
        t += SimTime::from_millis(sample_iat_ms(&cfg.iat, &mut rng));
    }

    let expected = (total_rounds * cfg.burst_size) as usize;
    // Generous completion horizon: bursts can queue for minutes on slow
    // scale-out policies (Fig 9 observes ~39 s; chains and 1 GB transfers
    // take tens of seconds too).
    let mut horizon = last_issue + SimTime::from_secs(300.0);
    let mut completions = Vec::with_capacity(expected);
    let mut transfers = Vec::new();
    for _ in 0..20 {
        cloud.run_until(horizon);
        // Drain in place: the simulator appends into our buffers, so the
        // loop allocates nothing once the buffers reach steady size.
        cloud.drain_completions_into(&mut completions);
        cloud.drain_transfers_into(&mut transfers);
        if completions.len() >= expected {
            break;
        }
        horizon += SimTime::from_secs(600.0);
    }
    if completions.len() < expected {
        return Err(ClientError::IncompleteRun {
            received: completions.len(),
            expected,
            completions,
        });
    }

    let warmup_tag = cfg.warmup_rounds as u64;
    let (warmup, measured): (Vec<Completion>, Vec<Completion>) =
        completions.into_iter().partition(|c| c.tag < warmup_tag);
    let transfers = transfers.into_iter().filter(|tr| tr.parent_tag >= warmup_tag).collect();
    Ok(RunResult {
        completions: measured,
        warmup_completions: warmup,
        transfers,
        duration: cloud.now() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChainConfig, StaticConfig, StaticFunction};
    use crate::deployer::deploy;
    use faas_sim::testutil::test_provider;
    use faas_sim::types::TransferMode;

    fn setup(static_cfg: &StaticConfig, runtime_cfg: &RuntimeConfig) -> (CloudSim, Deployment) {
        let mut cloud = CloudSim::new(test_provider(), 7);
        let d = deploy(&mut cloud, static_cfg, runtime_cfg).unwrap();
        (cloud, d)
    }

    #[test]
    fn collects_exactly_the_requested_samples() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 50);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 50);
        assert!(result.warmup_completions.is_empty());
        assert_eq!(result.latencies_ms().len(), 50);
    }

    #[test]
    fn warmup_rounds_are_partitioned_out() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 20);
        cfg.warmup_rounds = 5;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 20);
        assert_eq!(result.warmup_completions.len(), 5);
        // The cold start happened in warm-up; measured samples are warm.
        assert_eq!(result.cold_fraction(), 0.0);
    }

    #[test]
    fn bursts_issue_simultaneous_requests() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 10_000.0 }, 100);
        cfg.burst_size = 50;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 100);
        // Two rounds: tags 0 and 1, 50 requests each.
        let round0 = result.completions.iter().filter(|c| c.tag == 0).count();
        assert_eq!(round0, 50);
    }

    #[test]
    fn round_robin_spreads_rounds_over_endpoints() {
        let static_cfg =
            StaticConfig { functions: vec![StaticFunction::python_zip("f").with_replicas(4)] };
        let cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 100.0 }, 8);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        // 8 rounds over 4 endpoints: each function invoked exactly twice.
        for e in &d.endpoints {
            let count = result.completions.iter().filter(|c| c.function == e.function).count();
            assert_eq!(count, 2, "endpoint {}", e.name);
        }
    }

    #[test]
    fn chain_transfers_are_collected() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 10);
        cfg.warmup_rounds = 2;
        cfg.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Storage, payload_bytes: 1_000_000 });
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 10);
        assert_eq!(result.transfers.len(), 10, "one transfer per measured round");
        assert!(result.transfer_ms().iter().all(|&ms| ms > 0.0));
    }

    #[test]
    fn empty_deployment_is_an_error() {
        let mut cloud = CloudSim::new(test_provider(), 1);
        let cfg = RuntimeConfig::single(IatSpec::short(), 10);
        let d = Deployment { endpoints: vec![] };
        assert_eq!(
            run_workload(&mut cloud, &d, &cfg, 1).unwrap_err(),
            ClientError::EmptyDeployment
        );
    }

    #[test]
    fn poisson_iat_works() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 500.0 }, 30);
        cfg.warmup_rounds = 1;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 200.0 }, 25);
        let run = |seed: u64| {
            let (mut cloud, d) = setup(&static_cfg, &cfg);
            run_workload(&mut cloud, &d, &cfg, seed).unwrap().latencies_ms()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
