//! Statistical stability gate for the hedging headline result.
//!
//! Pre-registered claim: under the bursty MMPP arrival train (the
//! regime where queueing, not mean load, sets the tail), p95-threshold
//! hedging with one duplicate improves the simulated p99 for the
//! shallow-queueing providers (aws-like, google-like) while leaving the
//! median untouched and spending a bounded sliver of wasted work.
//! Azure-like is deliberately out of scope: its deep per-instance
//! queueing sends the hedge to the same congested backlog, so a single
//! duplicate cannot beat the burst (the `hedge` bench artifact shows
//! this — it is a finding, not a failure).
//!
//! The gate runs 3 seeds × 2000 samples per (provider, policy) cell and
//! checks sign + bands, not point values, so it is robust to benign
//! numeric drift while still catching a policy driver that silently
//! stops hedging, hedges everything, or pollutes the latency body.
//!
//! Pre-registered bands (from the frontier measurement at 2k samples):
//! * p99(hedged)/p99(none) ≤ 1.02 per seed, mean over seeds < 0.97;
//! * median shift |m_h/m_b − 1| < 1%;
//! * hedge-fire rate in (0, 0.08]; wasted-work fraction in [0, 0.05];
//! * no abandons (no deadline is composed in).

use providers::profiles::{aws_like, google_like};
use stellar_core::config::{IatSpec, RuntimeConfig};
use stellar_core::experiment::{Experiment, Outcome};
use workload::spec::{ArrivalSpec, ModeSpec, WorkloadSpec};

const SEEDS: [u64; 3] = [1, 2, 3];
const SAMPLES: u32 = 2_000;
const EXEC_MS: f64 = 100.0;

/// The MMPP burst train of the `hedge`/`mmpp` bench artifacts: 2 req/s
/// mean packed into 40 req/s bursts with a mean 500 ms dwell.
fn mmpp_burst() -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalSpec::Mmpp {
            on_mean_ms: 500.0,
            off_mean_ms: 9_500.0,
            on_rate_per_s: 40.0,
            off_rate_per_s: 0.0,
        },
        mode: ModeSpec::Open,
    }
}

fn run(provider: faas_sim::config::ProviderConfig, seed: u64, hedged: bool) -> Outcome {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), SAMPLES);
    runtime.warmup_rounds = 5;
    runtime.exec_ms = EXEC_MS;
    let mut runtime = runtime.with_workload(mmpp_burst());
    if hedged {
        runtime.policy = policy::PolicySpec::preset("hedge-p95");
    }
    Experiment::new(provider).workload(runtime).seed(seed).run().expect("stability gate run")
}

#[test]
fn hedge_p95_improves_mmpp_p99_within_preregistered_bands() {
    for provider in [aws_like(), google_like()] {
        let name = provider.name.clone();
        let mut ratios = Vec::new();
        for seed in SEEDS {
            let base = run(provider.clone(), seed, false);
            let hedged = run(provider.clone(), seed, true);

            let p99_base = stats::percentile(&base.latencies_ms(), 0.99);
            let p99_hedged = stats::percentile(&hedged.latencies_ms(), 0.99);
            assert!(p99_base > 0.0, "{name} seed {seed}: degenerate baseline");
            let ratio = p99_hedged / p99_base;
            assert!(
                ratio <= 1.02,
                "{name} seed {seed}: hedging worsened p99 ({p99_hedged:.1} vs {p99_base:.1})"
            );
            ratios.push(ratio);

            // The policy must not touch the latency body.
            let m = hedged.summary.median / base.summary.median;
            assert!(
                (m - 1.0).abs() < 0.01,
                "{name} seed {seed}: median shifted by {:.2}%",
                (m - 1.0) * 100.0
            );

            // Cost bands: a sliver of duplicates, not a flood — and not
            // a silently disabled policy either.
            let p = hedged.result.policy.expect("hedged run reports policy stats");
            assert_eq!(p.logical as u32, SAMPLES + 5, "{name} seed {seed}");
            let rate = p.hedge_fire_rate();
            assert!(
                rate > 0.0 && rate <= 0.08,
                "{name} seed {seed}: hedge rate {rate:.4} outside (0, 0.08]"
            );
            let wasted = p.wasted_fraction();
            assert!(
                (0.0..=0.05).contains(&wasted),
                "{name} seed {seed}: wasted fraction {wasted:.4} outside [0, 0.05]"
            );
            assert_eq!(p.abandoned, 0, "{name} seed {seed}: no deadline composed");
            assert!(
                p.duplicate_successes <= p.extra_launches,
                "{name} seed {seed}: more duplicate wins than duplicates"
            );
            assert!(base.result.policy.is_none(), "baseline carries no policy stats");
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            mean < 0.97,
            "{name}: mean p99 ratio {mean:.3} over seeds {SEEDS:?} — hedging must improve \
             the burst tail on average (ratios {ratios:?})"
        );
    }
}
