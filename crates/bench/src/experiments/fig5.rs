//! Fig 5: cold-start latency distributions on AWS for different language
//! runtimes and deployment methods (§VI-B3).

use faas_sim::types::{DeploymentMethod, Runtime};
use providers::paper::{fig5_aws, ProviderKind};
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::protocols::{cold_invocations, ColdSetup};

use crate::report::{comparison_table, Comparison, Report, BASE_SEED};

/// The four (runtime, deployment) combinations of Fig 5.
pub const COMBOS: [(Runtime, DeploymentMethod); 4] = [
    (Runtime::Go, DeploymentMethod::Zip),
    (Runtime::Python3, DeploymentMethod::Zip),
    (Runtime::Go, DeploymentMethod::Container),
    (Runtime::Python3, DeploymentMethod::Container),
];

/// Measured data behind Fig 5.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One cell per combination.
    pub cells: Vec<(Runtime, DeploymentMethod, Vec<f64>)>,
}

/// Runs the four combinations on the AWS-like provider, in parallel.
pub fn measure(samples: u32) -> Fig5 {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = COMBOS
            .iter()
            .enumerate()
            .map(|(i, &(runtime, deployment))| {
                scope.spawn(move |_| {
                    let setup = ColdSetup { runtime, deployment, extra_image_mb: 0.0 };
                    let out = cold_invocations(
                        config_for(ProviderKind::Aws),
                        setup,
                        samples,
                        100,
                        BASE_SEED + 10 + i as u64,
                    )
                    .expect("fig5 run");
                    (runtime, deployment, out.latencies_ms())
                })
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    Fig5 { cells }
}

impl Fig5 {
    /// Summary of one combination.
    pub fn summary(&self, runtime: Runtime, deployment: DeploymentMethod) -> Option<Summary> {
        self.cells
            .iter()
            .find(|(r, d, _)| *r == runtime && *d == deployment)
            .map(|(_, _, s)| Summary::from_samples(s))
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        self.cells
            .iter()
            .map(|(runtime, deployment, samples)| {
                let target = match (runtime, deployment) {
                    (Runtime::Go, DeploymentMethod::Zip) => fig5_aws::GO_ZIP,
                    (Runtime::Python3, DeploymentMethod::Zip) => fig5_aws::PYTHON_ZIP,
                    (Runtime::Go, DeploymentMethod::Container) => fig5_aws::GO_CONTAINER,
                    (Runtime::Python3, DeploymentMethod::Container) => fig5_aws::PYTHON_CONTAINER,
                };
                Comparison::from_summary(
                    format!("aws {runtime}+{deployment}"),
                    &Summary::from_samples(samples),
                    target.0,
                    target.1,
                )
            })
            .collect()
    }

    /// Renders the report.
    pub fn report(&self) -> Report {
        let mut body = comparison_table(&self.comparisons());
        let py_zip = self.summary(Runtime::Python3, DeploymentMethod::Zip).unwrap();
        let py_cont = self.summary(Runtime::Python3, DeploymentMethod::Container).unwrap();
        body.push_str(&format!(
            "\npython container vs zip: median {:.1}x, p99 {:.1}x (paper: 1.7x / 8.0x)\n",
            py_cont.median / py_zip.median,
            py_cont.tail / py_zip.tail,
        ));
        Report {
            id: "fig5",
            title: "AWS cold starts by language runtime and deployment method",
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn python_container_dominates_the_tail() {
        let data = measure(500);
        let py_zip = data.summary(Runtime::Python3, DeploymentMethod::Zip).unwrap();
        let py_cont = data.summary(Runtime::Python3, DeploymentMethod::Container).unwrap();
        let go_zip = data.summary(Runtime::Go, DeploymentMethod::Zip).unwrap();
        let go_cont = data.summary(Runtime::Go, DeploymentMethod::Container).unwrap();
        assert!(py_cont.tail > 3.0 * py_zip.tail);
        assert!(py_cont.tmr > 3.0);
        assert!(go_cont.median < 1.3 * go_zip.median, "go container ≈ zip");
        assert!(data.report().render().contains("python container vs zip"));
    }
}
