//! Regenerates the join-straggler-amplification artifact (join p99 vs
//! fan-out width per provider, with and without hedge-p95); `--samples
//! N` overrides the default 3000-sample methodology.

fn main() {
    let samples = bench::report::PAPER_SAMPLES;
    let samples = std::env::args()
        .skip_while(|a| a != "--samples")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(samples);
    let report = bench::experiments::straggler::measure(samples).report();
    println!("{}", report.render());
}
