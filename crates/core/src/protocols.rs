//! Canonical measurement protocols for the paper's experiments (§V).
//!
//! Each function wraps [`crate::experiment::Experiment`] with the
//! methodology of one factor-analysis vector: warm invocations at the
//! short IAT, cold invocations against replicated functions at the long
//! IAT, chained data transfers, and bursty traffic. They are shared by the
//! calibration tests (`providers` crate) and the benchmark harness
//! (`bench` crate) so that both measure exactly the same way.

use faas_sim::config::ProviderConfig;
use faas_sim::types::{DeploymentMethod, Runtime, TransferMode};

use crate::config::{ChainConfig, IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use crate::experiment::{Experiment, ExperimentError, Outcome};

/// The paper's long per-function inter-arrival time: 15 minutes, chosen so
/// providers reap idle instances with >50% likelihood (§V).
pub const LONG_IAT_MS: f64 = 900_000.0;

/// The paper's short inter-arrival time: 3 seconds (§V).
pub const SHORT_IAT_MS: f64 = 3_000.0;

/// Burst-round spacing used for "short IAT" burst experiments. The paper
/// issues bursts at the short IAT; large bursts need a little more room
/// for the dispatch drain, so rounds are spaced 10 s apart — still far
/// below every provider's keep-alive, which is what "short" must mean
/// functionally (instances stay warm).
pub const BURST_ROUND_IAT_MS: f64 = 10_000.0;

/// §VI-A: warm invocations — single requests at the short IAT, first
/// round excluded (it is the cold start).
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the underlying pipeline.
pub fn warm_invocations(
    provider: ProviderConfig,
    samples: u32,
    seed: u64,
) -> Result<Outcome, ExperimentError> {
    let runtime = RuntimeConfig {
        iat: IatSpec::Fixed { ms: SHORT_IAT_MS },
        burst_size: 1,
        samples,
        warmup_rounds: 1,
        exec_ms: 0.0,
        chain: None,
        workload: None,
        policy: None,
        faults: None,
    };
    Experiment::new(provider)
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("warm")] })
        .workload(runtime)
        .seed(seed)
        .run()
}

/// Shape of a cold-start experiment: which runtime/deployment/image to
/// measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdSetup {
    /// Language runtime.
    pub runtime: Runtime,
    /// Deployment method.
    pub deployment: DeploymentMethod,
    /// Extra random-content file size, decimal MB.
    pub extra_image_mb: f64,
}

impl ColdSetup {
    /// The paper's baseline cold setup: Python + ZIP, no extra file.
    pub fn baseline() -> ColdSetup {
        ColdSetup {
            runtime: Runtime::Python3,
            deployment: DeploymentMethod::Zip,
            extra_image_mb: 0.0,
        }
    }
}

/// §VI-B: cold invocations — `replicas` identical functions invoked
/// round-robin so that each sees the long IAT while the experiment
/// completes `replicas`× faster (§IV, §V).
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the underlying pipeline.
pub fn cold_invocations(
    provider: ProviderConfig,
    setup: ColdSetup,
    samples: u32,
    replicas: u32,
    seed: u64,
) -> Result<Outcome, ExperimentError> {
    assert!(replicas > 0, "need at least one replica");
    let runtime = RuntimeConfig {
        // Round-robin over `replicas` endpoints: per-function IAT stays at
        // the long IAT while rounds are spaced long/replicas apart.
        iat: IatSpec::Fixed { ms: LONG_IAT_MS / replicas as f64 },
        burst_size: 1,
        samples,
        warmup_rounds: 0,
        exec_ms: 0.0,
        chain: None,
        workload: None,
        policy: None,
        faults: None,
    };
    let function = StaticFunction {
        name: "cold".to_string(),
        runtime: setup.runtime,
        deployment: setup.deployment,
        memory_mb: 2048,
        extra_image_mb: setup.extra_image_mb,
        replicas,
    };
    Experiment::new(provider)
        .functions(StaticConfig { functions: vec![function] })
        .workload(runtime)
        .seed(seed)
        .run()
}

/// §VI-C: data-transfer delays — a two-function Go chain invoked at the
/// short IAT; the outcome's `transfer_summary` holds the producer→consumer
/// transfer-time distribution measured via in-function timestamps.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the underlying pipeline.
pub fn transfer_chain(
    provider: ProviderConfig,
    mode: TransferMode,
    payload_bytes: u64,
    samples: u32,
    seed: u64,
) -> Result<Outcome, ExperimentError> {
    let runtime = RuntimeConfig {
        iat: IatSpec::Fixed { ms: SHORT_IAT_MS },
        burst_size: 1,
        samples,
        warmup_rounds: 2,
        exec_ms: 0.0,
        chain: Some(ChainConfig { length: 2, mode, payload_bytes }),
        workload: None,
        policy: None,
        faults: None,
    };
    Experiment::new(provider)
        .functions(StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] })
        .workload(runtime)
        .seed(seed)
        .run()
}

/// Warmth regime of a burst experiment (§VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstIat {
    /// Rounds at a short IAT: instances stay warm between bursts.
    Short,
    /// Per-function long IAT: instances are reaped between bursts.
    Long,
}

/// §VI-D: bursty invocations — `burst_size` simultaneous requests per
/// round.
///
/// With [`BurstIat::Short`], rounds go to a single function spaced
/// [`BURST_ROUND_IAT_MS`] apart (instances stay warm; two warm-up rounds
/// establish the fleet). With [`BurstIat::Long`], rounds cycle over
/// `replicas` functions so each function sees the long IAT cold-burst
/// pattern.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the underlying pipeline.
pub fn bursty_invocations(
    provider: ProviderConfig,
    iat: BurstIat,
    burst_size: u32,
    exec_ms: f64,
    samples: u32,
    replicas: u32,
    seed: u64,
) -> Result<Outcome, ExperimentError> {
    assert!(replicas > 0, "need at least one replica");
    let (round_iat_ms, warmup_rounds, replicas) = match iat {
        BurstIat::Short => (BURST_ROUND_IAT_MS, 2, 1),
        BurstIat::Long => (LONG_IAT_MS / replicas as f64, 0, replicas),
    };
    let runtime = RuntimeConfig {
        iat: IatSpec::Fixed { ms: round_iat_ms },
        burst_size,
        samples,
        warmup_rounds,
        exec_ms,
        chain: None,
        workload: None,
        policy: None,
        faults: None,
    };
    let function = StaticFunction::python_zip("burst").with_replicas(replicas);
    Experiment::new(provider)
        .functions(StaticConfig { functions: vec![function] })
        .workload(runtime)
        .seed(seed)
        .run()
}

/// §V control experiment: the paper configures maximum memory sizes so
/// instances get a full CPU core; smaller memories are throttled. This
/// protocol sweeps memory sizes for a fixed busy-spin time and returns
/// one outcome per size.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the underlying pipeline.
pub fn memory_sweep(
    provider: ProviderConfig,
    memories_mb: &[u32],
    exec_ms: f64,
    samples: u32,
    seed: u64,
) -> Result<Vec<(u32, Outcome)>, ExperimentError> {
    let mut outcomes = Vec::new();
    for &memory_mb in memories_mb {
        let runtime = RuntimeConfig {
            iat: IatSpec::Fixed { ms: SHORT_IAT_MS },
            burst_size: 1,
            samples,
            warmup_rounds: 1,
            exec_ms,
            chain: None,
            workload: None,
            policy: None,
            faults: None,
        };
        let function = StaticFunction {
            name: format!("mem{memory_mb}"),
            runtime: Runtime::Python3,
            deployment: DeploymentMethod::Zip,
            memory_mb,
            extra_image_mb: 0.0,
            replicas: 1,
        };
        let outcome = Experiment::new(provider.clone())
            .functions(StaticConfig { functions: vec![function] })
            .workload(runtime)
            .seed(seed)
            .run()?;
        outcomes.push((memory_mb, outcome));
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_sim::testutil::test_provider;

    #[test]
    fn warm_protocol_measures_warm_requests() {
        let outcome = warm_invocations(test_provider(), 50, 1).unwrap();
        assert_eq!(outcome.summary.count, 50);
        assert_eq!(outcome.result.cold_fraction(), 0.0);
    }

    #[test]
    fn cold_protocol_measures_cold_requests() {
        let outcome = cold_invocations(test_provider(), ColdSetup::baseline(), 30, 10, 2).unwrap();
        assert_eq!(outcome.summary.count, 30);
        assert_eq!(outcome.result.cold_fraction(), 1.0, "every sample cold");
    }

    #[test]
    fn transfer_protocol_collects_transfers() {
        let outcome =
            transfer_chain(test_provider(), TransferMode::Inline, 1_000_000, 20, 3).unwrap();
        assert_eq!(outcome.transfer_summary.unwrap().count, 20);
    }

    #[test]
    fn memory_sweep_shows_cpu_throttling() {
        // Test provider: full speed at 1024 MB.
        let outcomes =
            memory_sweep(test_provider(), &[256, 512, 1024, 2048], 100.0, 30, 9).unwrap();
        assert_eq!(outcomes.len(), 4);
        let median = |i: usize| outcomes[i].1.summary.median;
        // 256 MB runs the 100 ms spin 4× slower; ≥1024 MB at full speed.
        assert!(median(0) > median(2) + 250.0, "throttled {} vs full {}", median(0), median(2));
        assert!((median(2) - median(3)).abs() < 5.0, "no speedup past full-speed memory");
    }

    #[test]
    fn burst_protocol_short_vs_long() {
        let warm = bursty_invocations(test_provider(), BurstIat::Short, 10, 0.0, 50, 1, 4).unwrap();
        assert_eq!(warm.summary.count, 50);
        assert_eq!(warm.result.cold_fraction(), 0.0, "short-IAT bursts stay warm");

        let cold = bursty_invocations(test_provider(), BurstIat::Long, 10, 0.0, 50, 5, 4).unwrap();
        assert_eq!(cold.summary.count, 50);
        assert!(cold.result.cold_fraction() > 0.9, "long-IAT bursts are cold");
    }
}
