//! Edge-case tests for simulator paths not covered by the main behaviour
//! suite: controller re-arming, overcommit at limits, reap races, boot
//! overlap, adaptive spawn pacing and dispatch accounting.

use faas_sim::cloud::CloudSim;
use faas_sim::config::{ProviderConfig, ScalePolicy};
use faas_sim::spec::FunctionSpec;
use faas_sim::testutil::test_provider;
use faas_sim::types::{FunctionId, Runtime, TransferMode, MB};
use simkit::dist::Dist;
use simkit::time::SimTime;

const SEC: fn(f64) -> SimTime = SimTime::from_secs;

fn submit_burst(cloud: &mut CloudSim, f: FunctionId, n: u32, at: SimTime) {
    for i in 0..n {
        cloud.submit(f, u64::from(i), at);
    }
}

#[test]
fn periodic_controller_rearms_after_queue_drains() {
    let mut cfg = test_provider();
    cfg.scaling.policy = ScalePolicy::Periodic { interval_ms: 2000.0, step: 1 };
    let mut cloud = CloudSim::new(cfg, 1);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(400.0).build()).unwrap();
    // First backlog grows the fleet a little, then drains.
    submit_burst(&mut cloud, f, 10, SimTime::ZERO);
    cloud.run_until(SEC(30.0));
    assert_eq!(cloud.drain_completions().len(), 10);
    let spawns_first = cloud.stats().spawns;
    // A second backlog much later must re-arm the controller and scale
    // again (the tick must not have died with the first queue).
    submit_burst(&mut cloud, f, 10, SEC(40.0));
    cloud.run_until(SEC(80.0));
    assert_eq!(cloud.drain_completions().len(), 10);
    assert!(cloud.stats().spawns >= spawns_first, "controller must still react after idle period");
}

#[test]
fn target_concurrency_overcommits_at_instance_cap() {
    let mut cfg = test_provider();
    cfg.scaling.policy = ScalePolicy::TargetConcurrency { target: 2.0 };
    cfg.limits.max_instances_per_function = 3;
    let mut cloud = CloudSim::new(cfg, 2);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(200.0).build()).unwrap();
    // 30 requests want 15 instances; the cap allows 3. Queues must
    // overcommit past the target instead of dropping work.
    submit_burst(&mut cloud, f, 30, SimTime::ZERO);
    cloud.run_until(SEC(120.0));
    assert_eq!(cloud.drain_completions().len(), 30, "no request is lost");
    assert!(cloud.stats().spawns <= 3);
}

#[test]
fn reap_scheduled_before_reuse_is_stale() {
    let mut cfg = test_provider();
    cfg.keepalive.idle_timeout_ms = Dist::constant(5_000.0);
    let mut cloud = CloudSim::new(cfg, 3);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    cloud.submit(f, 0, SimTime::ZERO);
    cloud.run_until(SEC(2.0));
    cloud.drain_completions();
    // Reuse the instance at t=4s, before the reap scheduled for ~t=5.3s.
    cloud.submit(f, 1, SEC(4.0));
    cloud.run_until(SEC(4.5));
    assert_eq!(cloud.drain_completions().len(), 1);
    // The stale reap (from the first idle period) fires and must not kill
    // the now-again-idle instance; only the *new* idle period counts.
    cloud.run_until(SEC(6.0));
    assert_eq!(cloud.live_instances(f), 1, "stale reap must be ignored");
    // The fresh reap eventually fires (~t=9.5s).
    cloud.run_until(SEC(12.0));
    assert_eq!(cloud.live_instances(f), 0);
    assert_eq!(cloud.stats().reaps, 1);
}

#[test]
fn fetch_overlap_hides_image_inside_boot() {
    let base = test_provider();
    let run = |overlaps: bool, extra_mb: f64| {
        let mut cfg = base.clone();
        cfg.cold_start.fetch_overlaps_boot = overlaps;
        // Sandbox 100ms; image fetch 40 + size/100MBps.
        let mut cloud = CloudSim::new(cfg, 4);
        let f = cloud
            .deploy(
                FunctionSpec::builder("f").runtime(Runtime::Go).extra_image_mb(extra_mb).build(),
            )
            .unwrap();
        cloud.submit(f, 0, SimTime::ZERO);
        cloud.run_until(SEC(30.0));
        cloud.drain_completions()[0].breakdown.cold.unwrap().total_ms
    };
    // Small image (2MB base: fetch 60ms < sandbox 100ms): overlap saves
    // the whole fetch.
    let small_sum = run(false, 0.0);
    let small_overlap = run(true, 0.0);
    assert!((small_sum - small_overlap - 60.0).abs() < 1.0);
    // Large image (fetch 1060ms > sandbox): overlap saves only the boot.
    let large_sum = run(false, 100.0);
    let large_overlap = run(true, 100.0);
    assert!((large_sum - large_overlap - 100.0).abs() < 1.0);
}

#[test]
fn adaptive_spawn_boost_accelerates_large_bursts() {
    let mut slow = test_provider();
    slow.scaling.spawn_rate_per_sec = 20.0;
    slow.scaling.spawn_burst = 1.0;
    let mut boosted = slow.clone();
    boosted.scaling.adaptive_spawn_threshold = 30;
    boosted.scaling.adaptive_spawn_mult = 10.0;
    let run = |cfg: ProviderConfig| {
        let mut cloud = CloudSim::new(cfg, 5);
        let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(50.0).build()).unwrap();
        submit_burst(&mut cloud, f, 100, SimTime::ZERO);
        cloud.run_until(SEC(120.0));
        let done = cloud.drain_completions();
        assert_eq!(done.len(), 100);
        stats::percentile::p99(&done.iter().map(|c| c.latency_ms()).collect::<Vec<_>>())
    };
    let p99_slow = run(slow);
    let p99_boosted = run(boosted);
    assert!(
        p99_boosted < 0.6 * p99_slow,
        "boost should cut tail spawn waits: {p99_boosted:.0} vs {p99_slow:.0}"
    );
}

#[test]
fn dispatch_wait_shows_up_in_breakdown() {
    let mut cfg = test_provider();
    cfg.dispatch.service_ms = Dist::constant(2.0);
    let mut cloud = CloudSim::new(cfg, 6);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    submit_burst(&mut cloud, f, 50, SimTime::ZERO);
    cloud.run_until(SEC(60.0));
    let done = cloud.drain_completions();
    let max_wait = done.iter().map(|c| c.breakdown.dispatch_wait_ms).fold(0.0f64, f64::max);
    // Position 50 of a serial 2 ms dispatcher waits ~100 ms.
    assert!((90.0..=110.0).contains(&max_wait), "last dispatch wait {max_wait:.1}");
}

#[test]
fn internal_requests_skip_propagation() {
    let mut cloud = CloudSim::new(test_provider(), 7);
    let consumer = cloud.deploy(FunctionSpec::builder("c").build()).unwrap();
    let producer = cloud
        .deploy(FunctionSpec::builder("p").chain(consumer, TransferMode::Inline, MB).build())
        .unwrap();
    cloud.submit(producer, 0, SimTime::ZERO);
    cloud.run_until(SEC(30.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 1, "only the external request completes to the client");
    // The external leg pays 2×10ms propagation; the internal chain round
    // trip contributes no propagation (chain_ms < external prop would be
    // impossible if it did — verify via the transfer window instead).
    let transfers = cloud.drain_transfers();
    let t = transfers[0];
    // Inline 1MB at 100MB/s = 10ms wire + consumer cold boot (~240ms) +
    // in-DC shares; 2x10ms WAN propagation must NOT be included.
    let wan_free = t.transfer_ms();
    assert!(wan_free < 280.0, "transfer {wan_free:.1} should not pay WAN legs");
}

#[test]
fn deep_chain_accumulates_transfers_in_order() {
    let mut cloud = CloudSim::new(test_provider(), 8);
    // Four-hop chain: a -> b -> c -> d.
    let d = cloud.deploy(FunctionSpec::builder("d").build()).unwrap();
    let c = cloud
        .deploy(FunctionSpec::builder("c").chain(d, TransferMode::Inline, 10_000).build())
        .unwrap();
    let b = cloud
        .deploy(FunctionSpec::builder("b").chain(c, TransferMode::Storage, 500_000).build())
        .unwrap();
    let a = cloud
        .deploy(FunctionSpec::builder("a").chain(b, TransferMode::Inline, MB).build())
        .unwrap();
    cloud.submit(a, 0, SimTime::ZERO);
    cloud.run_until(SEC(60.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 1);
    let transfers = cloud.drain_transfers();
    assert_eq!(transfers.len(), 3, "one transfer per hop");
    // Transfer windows nest: a->b starts first, d's payload arrives last.
    assert!(transfers[0].send_start <= transfers[1].send_start);
    assert!(transfers[1].send_start <= transfers[2].send_start);
    // The root request's latency covers the whole nested chain.
    assert!(done[0].latency_ms() > transfers.iter().map(|t| t.transfer_ms()).sum::<f64>() * 0.5);
    assert_eq!(cloud.stats().internal, 3);
}

#[test]
fn warm_hits_and_stats_accounting() {
    let mut cloud = CloudSim::new(test_provider(), 9);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    for i in 0..10 {
        cloud.submit(f, i, SEC(i as f64));
    }
    cloud.run_until(SEC(30.0));
    let stats = cloud.stats();
    assert_eq!(stats.submitted, 10);
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.spawns, 1);
    assert_eq!(stats.warm_hits, 9, "everything after the first hit warm");
    assert_eq!(stats.internal, 0);
}

#[test]
fn run_to_idle_processes_trailing_reaps() {
    let mut cfg = test_provider();
    cfg.keepalive.idle_timeout_ms = Dist::constant(1_000.0);
    let mut cloud = CloudSim::new(cfg, 10);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    cloud.submit(f, 0, SimTime::ZERO);
    cloud.run_to_idle();
    assert_eq!(cloud.drain_completions().len(), 1);
    assert_eq!(cloud.live_instances(f), 0, "trailing reap executed");
}

#[test]
fn zero_instance_limit_is_rejected_by_validation() {
    let mut cfg = test_provider();
    cfg.limits.max_instances_per_function = 0;
    assert!(cfg.validate().is_err());
}

#[test]
fn cost_aware_validation() {
    let mut cfg = test_provider();
    cfg.scaling.policy = ScalePolicy::CostAware { cold_estimate_ms: 0.0 };
    assert!(cfg.validate().is_err());
    cfg.scaling.policy = ScalePolicy::CostAware { cold_estimate_ms: 300.0 };
    assert!(cfg.validate().is_ok());
}

#[test]
fn resource_usage_tracks_fleet_economics() {
    let mut cloud = CloudSim::new(test_provider(), 11);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(500.0).build()).unwrap();
    for i in 0..10 {
        cloud.submit(f, i, SimTime::ZERO);
    }
    cloud.run_until(SEC(30.0));
    assert_eq!(cloud.drain_completions().len(), 10);
    let usage = cloud.resource_usage(f);
    assert_eq!(usage.spawns, 10, "per-request policy: one instance each");
    assert_eq!(usage.requests, 10);
    // Each request bills >= its 500ms execution (plus handling shares).
    assert!(usage.busy_ms_per_request() >= 500.0);
    assert!(usage.busy_ms_per_request() < 520.0);
    // Instances outlive their single request (keep-alive), so utilisation
    // is low — the provider-side cost of the no-queuing policy.
    assert!(usage.utilization() < 0.2, "utilization {}", usage.utilization());
    assert!(usage.instance_seconds > 10.0 * 0.5);

    // A queueing policy serves the same work with far fewer instances.
    let mut cfg = test_provider();
    cfg.scaling.policy = ScalePolicy::TargetConcurrency { target: 8.0 };
    let mut cloud2 = CloudSim::new(cfg, 11);
    let f2 = cloud2.deploy(FunctionSpec::builder("f").exec_constant_ms(500.0).build()).unwrap();
    for i in 0..10 {
        cloud2.submit(f2, i, SimTime::ZERO);
    }
    cloud2.run_until(SEC(30.0));
    cloud2.drain_completions();
    let usage2 = cloud2.resource_usage(f2);
    assert!(usage2.spawns < usage.spawns);
    assert!(usage2.utilization() > usage.utilization());
}

#[test]
fn boot_failures_are_retried_transparently() {
    let mut cfg = test_provider();
    cfg.cold_start.boot_failure_prob = 0.5;
    let mut cloud = CloudSim::new(cfg, 12);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(50.0).build()).unwrap();
    submit_burst(&mut cloud, f, 40, SimTime::ZERO);
    cloud.run_until(SEC(300.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 40, "failures must not lose requests");
    let stats = cloud.stats();
    assert!(stats.boot_failures > 5, "failures injected: {}", stats.boot_failures);
    assert_eq!(
        stats.spawns,
        40 + stats.boot_failures,
        "each failure costs exactly one retry spawn"
    );
    // Requests behind failed boots pay the retry in queue wait.
    let max_wait = done.iter().map(|c| c.breakdown.queue_wait_ms).fold(0.0f64, f64::max);
    assert!(max_wait > 400.0, "retried boots double the wait: {max_wait:.0}");
}

#[test]
fn boot_failure_prob_range_is_inclusive() {
    // p = 1.0 is a legal Bernoulli parameter (every boot fails and is
    // retried; `run_until` still bounds the run). Only values outside
    // [0, 1] are rejected.
    let mut cfg = test_provider();
    cfg.cold_start.boot_failure_prob = 1.0;
    assert!(cfg.validate().is_ok(), "p=1 is a legal probability");
    cfg.cold_start.boot_failure_prob = 1.1;
    assert!(cfg.validate().is_err());
    cfg.cold_start.boot_failure_prob = -0.1;
    assert!(cfg.validate().is_err());
}

#[test]
fn timeline_records_fleet_dynamics() {
    let mut cloud = CloudSim::new(test_provider(), 13);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(2000.0).build()).unwrap();
    cloud.enable_timeline(SimTime::from_millis(100.0));
    submit_burst(&mut cloud, f, 5, SimTime::from_millis(50.0));
    cloud.run_until(SEC(10.0));
    assert_eq!(cloud.drain_completions().len(), 5);
    let timeline = cloud.timeline();
    assert!(!timeline.is_empty());
    // Samples are ordered in time and consistent with the fleet cap.
    for w in timeline.windows(2) {
        assert!(w[1].at >= w[0].at);
    }
    // Early samples show booting instances; mid samples show 5 busy.
    let saw_booting = timeline.iter().any(|s| s.booting > 0);
    let saw_busy5 = timeline.iter().any(|s| s.busy == 5);
    assert!(saw_booting, "boot phase captured");
    assert!(saw_busy5, "execution phase captured");
    // Telemetry stops once the cloud drains (no infinite ticking).
    cloud.run_to_idle();
    let n = cloud.timeline().len();
    assert!(n < 5000, "telemetry must stop with the workload, got {n} samples");
}

#[test]
fn timeline_disabled_by_default() {
    let mut cloud = CloudSim::new(test_provider(), 14);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    cloud.submit(f, 0, SimTime::ZERO);
    cloud.run_until(SEC(5.0));
    assert!(cloud.timeline().is_empty());
}
