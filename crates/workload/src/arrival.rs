//! Pluggable arrival processes.
//!
//! An [`ArrivalProcess`] turns a deterministic RNG stream into a sequence
//! of inter-arrival gaps (milliseconds). The paper's client (§IV) supports
//! exactly two shapes — a fixed inter-arrival time and bursts of
//! simultaneous requests — which reproduce its Fig 9 queueing experiments
//! but fall short of the load diversity its §VII-B trace analysis points
//! at. The processes here close that gap: renewal processes with tunable
//! variability (Gamma/Weibull), Markov-modulated on-off bursts
//! generalizing the burst knob, sinusoid-modulated (diurnal) Poisson
//! arrivals, replay of Azure-trace-derived schedules, and combinators for
//! multi-tenant superpositions.
//!
//! Determinism: every process draws only from the `Rng` handed to
//! [`ArrivalProcess::next_gap_ms`], so a run is reproducible from the
//! workload seed alone, independent of thread count or event-queue
//! backend.

use simkit::rng::Rng;
use simkit::time::SimTime;

/// Gap value signalling an exhausted (finite) process: no further
/// arrivals will ever be produced.
pub const EXHAUSTED: f64 = f64::INFINITY;

/// A deterministic, seedable source of inter-arrival gaps.
pub trait ArrivalProcess {
    /// Milliseconds until the next arrival, drawn from `rng`. Returns
    /// [`EXHAUSTED`] (infinity) once a finite process has emitted its
    /// whole schedule; infinite processes never do.
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64;

    /// Logical source (tenant stream) of the arrival produced by the most
    /// recent [`ArrivalProcess::next_gap_ms`] call. Drivers route each
    /// arrival to `endpoints[source % endpoints.len()]`.
    fn source(&self) -> usize {
        0
    }

    /// Number of logical sources this process multiplexes.
    fn sources(&self) -> usize {
        1
    }

    /// Remaining arrivals, when the process is finite.
    fn remaining(&self) -> Option<u64> {
        None
    }
}

/// Constant gaps — the paper's baseline IAT mode. Draws no randomness.
#[derive(Debug, Clone)]
pub struct Fixed {
    /// The constant gap, ms.
    pub gap_ms: f64,
}

impl ArrivalProcess for Fixed {
    fn next_gap_ms(&mut self, _rng: &mut Rng) -> f64 {
        self.gap_ms
    }
}

/// Exponential gaps: a homogeneous Poisson arrival stream.
#[derive(Debug, Clone)]
pub struct Poisson {
    /// Mean gap, ms.
    pub mean_ms: f64,
}

impl ArrivalProcess for Poisson {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        -self.mean_ms * rng.next_f64_open().ln()
    }
}

/// Uniformly distributed gaps on `[lo_ms, hi_ms)`.
#[derive(Debug, Clone)]
pub struct Uniform {
    /// Lower gap bound, ms.
    pub lo_ms: f64,
    /// Upper gap bound, ms.
    pub hi_ms: f64,
}

impl ArrivalProcess for Uniform {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo_ms, self.hi_ms)
    }
}

fn standard_normal(rng: &mut Rng) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma-distributed gap with the given shape and unit scale
/// (Marsaglia–Tsang squeeze method; shape < 1 via the boost
/// `G(a) = G(a+1) · U^(1/a)`).
fn gamma_unit(shape: f64, rng: &mut Rng) -> f64 {
    if shape < 1.0 {
        let boost = rng.next_f64_open().powf(1.0 / shape);
        return gamma_unit(shape + 1.0, rng) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64_open();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Gamma-distributed gaps: CV = 1/√shape, so shape > 1 is smoother than
/// Poisson and shape < 1 burstier.
#[derive(Debug, Clone)]
pub struct Gamma {
    /// Shape parameter (k); must be positive.
    pub shape: f64,
    /// Mean gap, ms (scale = mean/shape).
    pub mean_ms: f64,
}

impl ArrivalProcess for Gamma {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        gamma_unit(self.shape, rng) * self.mean_ms / self.shape
    }
}

/// Weibull-distributed gaps via inverse-CDF: `scale · (-ln U)^(1/shape)`.
/// shape < 1 gives heavy-tailed gaps (bursty), shape > 1 near-regular.
#[derive(Debug, Clone)]
pub struct Weibull {
    /// Shape parameter (k); must be positive.
    pub shape: f64,
    /// Scale parameter (λ), ms. Mean = scale · Γ(1 + 1/shape).
    pub scale_ms: f64,
}

impl ArrivalProcess for Weibull {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        self.scale_ms * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }
}

/// Two-state Markov-modulated Poisson process (on-off bursts).
///
/// Dwell times in each state are exponential with the given means;
/// arrivals are Poisson at the state's rate. With `off_rate_per_s = 0`
/// this is an interrupted Poisson process: silent stretches punctuated by
/// bursts — the generalization of the paper's `burst_size` knob to
/// stochastic burst trains (burst length and intensity both random but
/// calibrated).
#[derive(Debug, Clone)]
pub struct Mmpp {
    /// Mean dwell in the bursting state, ms.
    pub on_mean_ms: f64,
    /// Mean dwell in the quiet state, ms.
    pub off_mean_ms: f64,
    /// Arrival rate while bursting, per second.
    pub on_rate_per_s: f64,
    /// Arrival rate while quiet, per second (0 for pure on-off).
    pub off_rate_per_s: f64,
    on: bool,
    /// Remaining dwell in the current state, ms; `None` until the first
    /// draw (the process starts in the on state with a fresh dwell).
    dwell_left_ms: Option<f64>,
}

impl Mmpp {
    /// Creates the process; it starts in the bursting state.
    pub fn new(on_mean_ms: f64, off_mean_ms: f64, on_rate_per_s: f64, off_rate_per_s: f64) -> Mmpp {
        Mmpp {
            on_mean_ms,
            off_mean_ms,
            on_rate_per_s,
            off_rate_per_s,
            on: true,
            dwell_left_ms: None,
        }
    }

    fn rate_per_ms(&self) -> f64 {
        let per_s = if self.on { self.on_rate_per_s } else { self.off_rate_per_s };
        per_s / 1_000.0
    }

    fn dwell_mean_ms(&self) -> f64 {
        if self.on {
            self.on_mean_ms
        } else {
            self.off_mean_ms
        }
    }
}

impl ArrivalProcess for Mmpp {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        let mut elapsed = 0.0;
        let mut dwell_left = match self.dwell_left_ms {
            Some(left) => left,
            None => -self.dwell_mean_ms() * rng.next_f64_open().ln(),
        };
        loop {
            // Competing exponentials: candidate arrival vs. state switch.
            // Redrawing the candidate after a switch is exact by
            // memorylessness of the exponential.
            let rate = self.rate_per_ms();
            let candidate =
                if rate > 0.0 { -rng.next_f64_open().ln() / rate } else { f64::INFINITY };
            if candidate < dwell_left {
                self.dwell_left_ms = Some(dwell_left - candidate);
                return elapsed + candidate;
            }
            elapsed += dwell_left;
            self.on = !self.on;
            dwell_left = -self.dwell_mean_ms() * rng.next_f64_open().ln();
        }
    }
}

/// Sinusoid-modulated Poisson arrivals: rate
/// `base · (1 + amplitude · sin(2πt/period))`, sampled by thinning
/// against the peak rate. Models diurnal load cycles.
#[derive(Debug, Clone)]
pub struct Diurnal {
    /// Time-averaged arrival rate, per second.
    pub base_rate_per_s: f64,
    /// Relative modulation depth in [0, 1].
    pub amplitude: f64,
    /// Modulation period, ms.
    pub period_ms: f64,
    /// Absolute time of the previous arrival, ms.
    now_ms: f64,
}

impl Diurnal {
    /// Creates the process starting at time zero (rising phase).
    pub fn new(base_rate_per_s: f64, amplitude: f64, period_ms: f64) -> Diurnal {
        Diurnal { base_rate_per_s, amplitude, period_ms, now_ms: 0.0 }
    }

    fn rate_at(&self, t_ms: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t_ms / self.period_ms;
        self.base_rate_per_s / 1_000.0 * (1.0 + self.amplitude * phase.sin())
    }
}

impl ArrivalProcess for Diurnal {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        let peak = self.base_rate_per_s / 1_000.0 * (1.0 + self.amplitude);
        let start = self.now_ms;
        let mut t = start;
        loop {
            t += -rng.next_f64_open().ln() / peak;
            if rng.next_f64() * peak < self.rate_at(t) {
                self.now_ms = t;
                return t - start;
            }
        }
    }
}

/// Replays a precomputed finite schedule of (time, source) arrivals —
/// built by [`TraceReplay::from_schedules`] from per-function Azure-trace
/// invocation schedules. Draws no randomness during replay.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    /// Merged schedule: absolute arrival times (ms) paired with the
    /// originating function's source index, sorted by time.
    schedule: Vec<(f64, usize)>,
    cursor: usize,
    sources: usize,
    last_ms: f64,
    current_source: usize,
}

impl TraceReplay {
    /// Merges one schedule per function (absolute [`SimTime`] arrivals,
    /// each already sorted) into a single replayable stream. Ties are
    /// broken by source index, so the merge is deterministic.
    pub fn from_schedules(schedules: &[Vec<SimTime>]) -> TraceReplay {
        let mut schedule: Vec<(f64, usize)> = schedules
            .iter()
            .enumerate()
            .flat_map(|(src, times)| times.iter().map(move |t| (t.as_millis(), src)))
            .collect();
        schedule.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-NaN times").then(a.1.cmp(&b.1)));
        TraceReplay {
            schedule,
            cursor: 0,
            sources: schedules.len().max(1),
            last_ms: 0.0,
            current_source: 0,
        }
    }

    /// Total arrivals in the schedule.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

impl ArrivalProcess for TraceReplay {
    fn next_gap_ms(&mut self, _rng: &mut Rng) -> f64 {
        match self.schedule.get(self.cursor) {
            Some(&(at_ms, src)) => {
                self.cursor += 1;
                let gap = at_ms - self.last_ms;
                self.last_ms = at_ms;
                self.current_source = src;
                gap
            }
            None => EXHAUSTED,
        }
    }

    fn source(&self) -> usize {
        self.current_source
    }

    fn sources(&self) -> usize {
        self.sources
    }

    fn remaining(&self) -> Option<u64> {
        Some((self.schedule.len() - self.cursor) as u64)
    }
}

/// Superposition of independent arrival streams (multi-tenant mix).
///
/// Each part keeps its own source index space; arrivals from part `i`
/// report sources offset by the total source count of parts `0..i`.
pub struct Superpose {
    parts: Vec<Part>,
    /// Absolute time of the last emitted arrival, ms.
    now_ms: f64,
    current_source: usize,
    primed: bool,
}

struct Part {
    process: Box<dyn ArrivalProcess>,
    /// Absolute time of this part's next pending arrival, ms.
    next_at_ms: f64,
    source_offset: usize,
}

impl Superpose {
    /// Combines `parts` into one stream; parts are polled in order when
    /// priming, so construction order is part of the seedable state.
    pub fn new(parts: Vec<Box<dyn ArrivalProcess>>) -> Superpose {
        let mut offset = 0;
        let parts = parts
            .into_iter()
            .map(|process| {
                let source_offset = offset;
                offset += process.sources();
                Part { process, next_at_ms: 0.0, source_offset }
            })
            .collect();
        Superpose { parts, now_ms: 0.0, current_source: 0, primed: false }
    }
}

impl ArrivalProcess for Superpose {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        if !self.primed {
            for part in &mut self.parts {
                part.next_at_ms = part.process.next_gap_ms(rng);
            }
            self.primed = true;
        }
        // Earliest pending arrival wins; ties broken by part order.
        let Some(winner) = (0..self.parts.len())
            .filter(|&i| self.parts[i].next_at_ms.is_finite())
            .min_by(|&a, &b| {
                self.parts[a]
                    .next_at_ms
                    .partial_cmp(&self.parts[b].next_at_ms)
                    .expect("finite times")
            })
        else {
            return EXHAUSTED;
        };
        let part = &mut self.parts[winner];
        let at = part.next_at_ms;
        let gap = at - self.now_ms;
        self.now_ms = at;
        self.current_source = part.source_offset + part.process.source();
        let next_gap = part.process.next_gap_ms(rng);
        part.next_at_ms = if next_gap.is_finite() { at + next_gap } else { f64::INFINITY };
        gap
    }

    fn source(&self) -> usize {
        self.current_source
    }

    fn sources(&self) -> usize {
        self.parts.iter().map(|p| p.process.sources()).sum::<usize>().max(1)
    }

    fn remaining(&self) -> Option<u64> {
        self.parts.iter().map(|p| p.process.remaining()).sum()
    }
}

/// Speeds up (`factor > 1`) or slows down an inner process by dividing
/// its gaps, preserving its shape (CV, burst structure).
pub struct Scaled {
    /// Rate multiplier; must be positive.
    pub factor: f64,
    /// The process being scaled.
    pub inner: Box<dyn ArrivalProcess>,
}

impl ArrivalProcess for Scaled {
    fn next_gap_ms(&mut self, rng: &mut Rng) -> f64 {
        self.inner.next_gap_ms(rng) / self.factor
    }

    fn source(&self) -> usize {
        self.inner.source()
    }

    fn sources(&self) -> usize {
        self.inner.sources()
    }

    fn remaining(&self) -> Option<u64> {
        self.inner.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(42).fork("arrival-test")
    }

    fn collect_gaps(p: &mut dyn ArrivalProcess, n: usize) -> Vec<f64> {
        let mut rng = rng();
        (0..n).map(|_| p.next_gap_ms(&mut rng)).collect()
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn cv(xs: &[f64]) -> f64 {
        let m = mean(xs);
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        var.sqrt() / m
    }

    #[test]
    fn fixed_draws_nothing_and_is_constant() {
        let mut rng_a = rng();
        let before = rng_a.clone();
        let mut p = Fixed { gap_ms: 250.0 };
        assert_eq!(p.next_gap_ms(&mut rng_a), 250.0);
        assert_eq!(rng_a, before, "fixed gaps must not consume randomness");
    }

    #[test]
    fn poisson_mean_is_calibrated() {
        let gaps = collect_gaps(&mut Poisson { mean_ms: 100.0 }, 20_000);
        let m = mean(&gaps);
        assert!((m - 100.0).abs() < 3.0, "mean {m}");
        let c = cv(&gaps);
        assert!((c - 1.0).abs() < 0.05, "cv {c}");
    }

    #[test]
    fn gamma_cv_follows_shape() {
        let smooth = cv(&collect_gaps(&mut Gamma { shape: 4.0, mean_ms: 100.0 }, 20_000));
        let bursty = cv(&collect_gaps(&mut Gamma { shape: 0.25, mean_ms: 100.0 }, 20_000));
        assert!((smooth - 0.5).abs() < 0.05, "shape 4 cv {smooth}");
        assert!((bursty - 2.0).abs() < 0.25, "shape 1/4 cv {bursty}");
        let m = mean(&collect_gaps(&mut Gamma { shape: 0.25, mean_ms: 100.0 }, 20_000));
        assert!((m - 100.0).abs() < 6.0, "gamma mean {m}");
    }

    #[test]
    fn weibull_gaps_are_positive_with_requested_scale() {
        let gaps = collect_gaps(&mut Weibull { shape: 0.5, scale_ms: 50.0 }, 20_000);
        assert!(gaps.iter().all(|&g| g > 0.0));
        // Mean = scale · Γ(1 + 1/shape) = 50 · Γ(3) = 100.
        let m = mean(&gaps);
        assert!((m - 100.0).abs() < 6.0, "weibull mean {m}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let mut p = Mmpp::new(200.0, 2_000.0, 200.0, 1.0);
        let gaps = collect_gaps(&mut p, 20_000);
        assert!(cv(&gaps) > 1.5, "mmpp cv {}", cv(&gaps));
    }

    #[test]
    fn mmpp_with_zero_off_rate_terminates() {
        let mut p = Mmpp::new(100.0, 1_000.0, 50.0, 0.0);
        let gaps = collect_gaps(&mut p, 2_000);
        assert!(gaps.iter().all(|&g| g.is_finite() && g >= 0.0));
        // Off dwells show up as long silent gaps.
        assert!(gaps.iter().any(|&g| g > 500.0));
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let mut p = Diurnal::new(100.0, 0.9, 60_000.0);
        let mut rng = rng();
        let mut times = Vec::new();
        let mut t = 0.0;
        loop {
            t += p.next_gap_ms(&mut rng);
            if t >= 60_000.0 {
                break;
            }
            times.push(t);
        }
        // Count arrivals in the rising (first) vs falling (second) half
        // of one period: sin > 0 vs sin < 0.
        let first = times.iter().filter(|&&x| x < 30_000.0).count() as f64;
        let second = times.len() as f64 - first;
        assert!(first > 1.5 * second, "rising half {first} vs falling {second}");
        let total_rate = times.len() as f64 / 60.0;
        assert!((total_rate - 100.0).abs() < 15.0, "avg rate {total_rate}");
    }

    #[test]
    fn trace_replay_replays_merged_schedules_in_order() {
        let s0 = vec![SimTime::from_millis(10.0), SimTime::from_millis(30.0)];
        let s1 = vec![SimTime::from_millis(20.0), SimTime::from_millis(30.0)];
        let mut p = TraceReplay::from_schedules(&[s0, s1]);
        assert_eq!(p.sources(), 2);
        assert_eq!(p.remaining(), Some(4));
        let mut rng = rng();
        let mut seen = Vec::new();
        loop {
            let gap = p.next_gap_ms(&mut rng);
            if gap == EXHAUSTED {
                break;
            }
            seen.push((gap, p.source()));
        }
        // Equal-time arrivals tie-break by source index.
        assert_eq!(seen, vec![(10.0, 0), (10.0, 1), (10.0, 0), (0.0, 1)]);
        assert_eq!(p.remaining(), Some(0));
    }

    #[test]
    fn superpose_merges_and_routes_sources() {
        let a = Box::new(Fixed { gap_ms: 100.0 });
        let b = Box::new(Fixed { gap_ms: 40.0 });
        let mut p = Superpose::new(vec![a, b]);
        assert_eq!(p.sources(), 2);
        let mut rng = rng();
        let mut at = 0.0;
        let mut seen = Vec::new();
        for _ in 0..6 {
            at += p.next_gap_ms(&mut rng);
            seen.push((at, p.source()));
        }
        assert_eq!(
            seen,
            vec![(40.0, 1), (80.0, 1), (100.0, 0), (120.0, 1), (160.0, 1), (200.0, 0)]
        );
    }

    #[test]
    fn superpose_rate_is_sum_of_parts() {
        let parts: Vec<Box<dyn ArrivalProcess>> =
            vec![Box::new(Poisson { mean_ms: 100.0 }), Box::new(Poisson { mean_ms: 50.0 })];
        let mut p = Superpose::new(parts);
        let gaps = collect_gaps(&mut p, 30_000);
        // Combined rate 30/s → mean gap 100/3 ms.
        let m = mean(&gaps);
        assert!((m - 100.0 / 3.0).abs() < 1.0, "superposed mean {m}");
    }

    #[test]
    fn scaled_divides_gaps() {
        let mut p = Scaled { factor: 4.0, inner: Box::new(Fixed { gap_ms: 100.0 }) };
        let mut rng = rng();
        assert_eq!(p.next_gap_ms(&mut rng), 25.0);
    }

    #[test]
    fn processes_are_deterministic_per_seed() {
        let mut a = Mmpp::new(200.0, 2_000.0, 200.0, 1.0);
        let mut b = Mmpp::new(200.0, 2_000.0, 200.0, 1.0);
        assert_eq!(collect_gaps(&mut a, 500), collect_gaps(&mut b, 500));
    }
}
