//! Minimal SVG plotting: CDF line charts in the style of the paper's
//! figures (latency on a log x-axis, cumulative probability on y).
//!
//! No plotting dependency is used; the output is plain SVG 1.1 markup
//! suitable for embedding in docs or opening in a browser. Curves are
//! drawn from the crate's single quantile engine
//! ([`crate::sketch::QuantileSketch`]): a series built from raw samples
//! plots the exact empirical CDF, a series built from a streamed sketch
//! plots within the sketch's documented rank-error bound.

use crate::sketch::{QuantileMode, QuantileSketch};

/// A named curve on a CDF plot, backed by a [`QuantileSketch`].
#[derive(Debug, Clone)]
pub struct SvgSeries {
    /// Legend label.
    pub label: String,
    /// The distribution being plotted.
    sketch: QuantileSketch,
}

impl SvgSeries {
    /// Creates a series from raw samples. The samples are held exactly
    /// (no compression), so the rendered curve is the same empirical CDF
    /// the sample vector defines.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn new<S: Into<String>>(label: S, samples: Vec<f64>) -> SvgSeries {
        assert!(!samples.is_empty(), "SVG series needs samples");
        let mut agg = crate::sketch::LatencyAgg::with_mode(QuantileMode::Exact);
        for &v in &samples {
            agg.record(v);
        }
        SvgSeries { label: label.into(), sketch: agg.sketch().clone() }
    }

    /// Creates a series from an already-populated sketch — the path
    /// sketch-mode runs use, where no sample vector ever exists.
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty.
    pub fn from_sketch<S: Into<String>>(label: S, sketch: QuantileSketch) -> SvgSeries {
        assert!(!sketch.is_empty(), "SVG series needs samples");
        SvgSeries { label: label.into(), sketch }
    }
}

/// Plot configuration.
#[derive(Debug, Clone)]
pub struct SvgPlot {
    /// Title rendered above the axes.
    pub title: String,
    /// X-axis label (e.g. "latency (ms)").
    pub x_label: String,
    /// Logarithmic x-axis (the paper's Figs 6–7 are log-log; CDF figures
    /// use linear or log x).
    pub log_x: bool,
    /// Canvas width, px.
    pub width: u32,
    /// Canvas height, px.
    pub height: u32,
}

impl SvgPlot {
    /// A 640×400 CDF plot with a log x-axis.
    pub fn cdf<S: Into<String>>(title: S) -> SvgPlot {
        SvgPlot {
            title: title.into(),
            x_label: "latency (ms)".to_string(),
            log_x: true,
            width: 640,
            height: 400,
        }
    }

    /// Renders the CDFs of `series` as SVG markup.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty.
    pub fn render(&self, series: &[SvgSeries]) -> String {
        assert!(!series.is_empty(), "plot needs at least one series");
        const COLORS: [&str; 6] =
            ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];
        let margin_l = 60.0;
        let margin_r = 20.0;
        let margin_t = 36.0;
        let margin_b = 48.0;
        let plot_w = self.width as f64 - margin_l - margin_r;
        let plot_h = self.height as f64 - margin_t - margin_b;

        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        for s in series {
            min_x = min_x.min(s.sketch.min());
            max_x = max_x.max(s.sketch.max());
        }
        let use_log = self.log_x && min_x > 0.0 && max_x > min_x;
        let to_axis = |x: f64| if use_log { x.ln() } else { x };
        let (amin, amax) = (to_axis(min_x), to_axis(max_x));
        let span = if amax > amin { amax - amin } else { 1.0 };
        let sx = |x: f64| margin_l + (to_axis(x) - amin) / span * plot_w;
        let sy = |p: f64| margin_t + (1.0 - p) * plot_h;

        let mut svg = String::new();
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
            w = self.width,
            h = self.height
        ));
        svg.push_str(&format!(
            r#"<rect width="{}" height="{}" fill="white"/>"#,
            self.width, self.height
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
            self.width / 2,
            escape(&self.title)
        ));

        // Axes and grid lines at each y decile.
        svg.push_str(&format!(
            r#"<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#,
            x0 = margin_l,
            y0 = margin_t,
            y1 = margin_t + plot_h
        ));
        svg.push_str(&format!(
            r#"<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" stroke="black"/>"#,
            x0 = margin_l,
            x1 = margin_l + plot_w,
            y1 = margin_t + plot_h
        ));
        for decile in 0..=10 {
            let p = decile as f64 / 10.0;
            let y = sy(p);
            svg.push_str(&format!(
                r##"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#dddddd"/>"##,
                x0 = margin_l,
                x1 = margin_l + plot_w,
            ));
            svg.push_str(&format!(
                r#"<text x="{x}" y="{ty}" font-family="sans-serif" font-size="10" text-anchor="end">{p:.1}</text>"#,
                x = margin_l - 6.0,
                ty = y + 3.0,
            ));
        }
        // X tick labels at min / mid / max.
        for (frac, value) in
            [(0.0, min_x), (0.5, inv_axis(amin + span / 2.0, use_log)), (1.0, max_x)]
        {
            svg.push_str(&format!(
                r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="10" text-anchor="middle">{value:.1}</text>"#,
                x = margin_l + frac * plot_w,
                y = margin_t + plot_h + 16.0,
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="12" text-anchor="middle">{label}{log}</text>"#,
            x = margin_l + plot_w / 2.0,
            y = margin_t + plot_h + 36.0,
            label = escape(&self.x_label),
            log = if use_log { " (log scale)" } else { "" },
        ));

        // Series polylines + legend.
        for (i, s) in series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let points: Vec<String> = s
                .sketch
                .clone()
                .quantile_points(120)
                .into_iter()
                .map(|(x, p)| format!("{:.2},{:.2}", sx(x), sy(p)))
                .collect();
            svg.push_str(&format!(
                r#"<polyline fill="none" stroke="{color}" stroke-width="1.8" points="{}"/>"#,
                points.join(" ")
            ));
            let ly = margin_t + 14.0 * i as f64 + 10.0;
            svg.push_str(&format!(
                r#"<line x1="{x0}" y1="{ly}" x2="{x1}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                x0 = margin_l + 8.0,
                x1 = margin_l + 28.0,
            ));
            svg.push_str(&format!(
                r#"<text x="{x}" y="{ty}" font-family="sans-serif" font-size="11">{label}</text>"#,
                x = margin_l + 34.0,
                ty = ly + 4.0,
                label = escape(&s.label),
            ));
        }
        svg.push_str("</svg>");
        svg
    }
}

/// A named polyline for [`SvgLineChart`]: `(x, y)` points.
#[derive(Debug, Clone)]
pub struct SvgLine {
    /// Legend label.
    pub label: String,
    /// Points, in ascending x order.
    pub points: Vec<(f64, f64)>,
    /// Dashed stroke (the paper uses dashes for tails).
    pub dashed: bool,
}

impl SvgLine {
    /// Creates a solid line.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> SvgLine {
        assert!(!points.is_empty(), "SVG line needs points");
        SvgLine { label: label.into(), points, dashed: false }
    }

    /// Marks the line dashed (consuming).
    pub fn dashed(mut self) -> SvgLine {
        self.dashed = true;
        self
    }
}

/// A log-log line chart in the style of the paper's Figs 6a/7a
/// (latency percentiles as a function of payload size).
#[derive(Debug, Clone)]
pub struct SvgLineChart {
    /// Title above the axes.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width, px.
    pub width: u32,
    /// Canvas height, px.
    pub height: u32,
}

impl SvgLineChart {
    /// A 640×400 log-log chart.
    pub fn log_log<S: Into<String>>(title: S, x_label: S, y_label: S) -> SvgLineChart {
        SvgLineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 640,
            height: 400,
        }
    }

    /// Renders `lines` on log-log axes (all coordinates must be positive).
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty or any coordinate is non-positive.
    pub fn render(&self, lines: &[SvgLine]) -> String {
        assert!(!lines.is_empty(), "chart needs at least one line");
        const COLORS: [&str; 6] =
            ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];
        let (margin_l, margin_r, margin_t, margin_b) = (64.0, 20.0, 36.0, 48.0);
        let plot_w = self.width as f64 - margin_l - margin_r;
        let plot_h = self.height as f64 - margin_t - margin_b;
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for line in lines {
            for &(x, y) in &line.points {
                assert!(x > 0.0 && y > 0.0, "log-log chart needs positive coordinates");
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
        }
        let span = |lo: f64, hi: f64| if hi > lo { hi.ln() - lo.ln() } else { 1.0 };
        let (sx_span, sy_span) = (span(min_x, max_x), span(min_y, max_y));
        let sx = |x: f64| margin_l + (x.ln() - min_x.ln()) / sx_span * plot_w;
        let sy = |y: f64| margin_t + plot_h - (y.ln() - min_y.ln()) / sy_span * plot_h;

        let mut svg = String::new();
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
            w = self.width,
            h = self.height
        ));
        svg.push_str(&format!(
            r#"<rect width="{}" height="{}" fill="white"/>"#,
            self.width, self.height
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
            self.width / 2,
            escape(&self.title)
        ));
        svg.push_str(&format!(
            r#"<line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/><line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/>"#,
            l = margin_l,
            t = margin_t,
            b = margin_t + plot_h,
            r = margin_l + plot_w,
        ));
        for (label, x, y, anchor) in [
            (format!("{:.1}", min_x), margin_l, margin_t + plot_h + 16.0, "middle"),
            (format!("{:.1}", max_x), margin_l + plot_w, margin_t + plot_h + 16.0, "middle"),
            (format!("{:.1}", min_y), margin_l - 6.0, margin_t + plot_h + 3.0, "end"),
            (format!("{:.1}", max_y), margin_l - 6.0, margin_t + 3.0, "end"),
        ] {
            svg.push_str(&format!(
                r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="10" text-anchor="{anchor}">{label}</text>"#,
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="12" text-anchor="middle">{label} (log)</text>"#,
            x = margin_l + plot_w / 2.0,
            y = margin_t + plot_h + 36.0,
            label = escape(&self.x_label),
        ));
        svg.push_str(&format!(
            r#"<text x="14" y="{y}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 {y})">{label} (log)</text>"#,
            y = margin_t + plot_h / 2.0,
            label = escape(&self.y_label),
        ));
        for (i, line) in lines.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let points: Vec<String> =
                line.points.iter().map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y))).collect();
            let dash = if line.dashed { r#" stroke-dasharray="6,4""# } else { "" };
            svg.push_str(&format!(
                r#"<polyline fill="none" stroke="{color}" stroke-width="1.8"{dash} points="{}"/>"#,
                points.join(" ")
            ));
            let ly = margin_t + 14.0 * i as f64 + 10.0;
            svg.push_str(&format!(
                r#"<line x1="{x0}" y1="{ly}" x2="{x1}" y2="{ly}" stroke="{color}" stroke-width="2"{dash}/>"#,
                x0 = margin_l + 8.0,
                x1 = margin_l + 28.0,
            ));
            svg.push_str(&format!(
                r#"<text x="{x}" y="{ty}" font-family="sans-serif" font-size="11">{label}</text>"#,
                x = margin_l + 34.0,
                ty = ly + 4.0,
                label = escape(&line.label),
            ));
        }
        svg.push_str("</svg>");
        svg
    }
}

fn inv_axis(a: f64, log: bool) -> f64 {
    if log {
        a.exp()
    } else {
        a
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<SvgSeries> {
        vec![
            SvgSeries::new("aws", (1..=100).map(|i| i as f64).collect()),
            SvgSeries::new("google", (1..=100).map(|i| i as f64 * 0.7).collect()),
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = SvgPlot::cdf("warm invocations").render(&sample_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("warm invocations"));
        assert!(svg.contains("aws"));
        assert!(svg.contains("log scale"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let series = vec![SvgSeries::new("a<b&c", vec![1.0, 2.0])];
        let svg = SvgPlot::cdf("t<t").render(&series);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(svg.contains("t&lt;t"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn linear_axis_when_values_include_zero() {
        let series = vec![SvgSeries::new("s", vec![0.0, 1.0, 2.0])];
        let svg = SvgPlot::cdf("zeros").render(&series);
        assert!(!svg.contains("log scale"));
    }

    #[test]
    fn polyline_coordinates_stay_in_canvas() {
        let plot = SvgPlot::cdf("bounds");
        let svg = plot.render(&sample_series());
        let points_part = svg.split("points=\"").nth(1).unwrap();
        let points = points_part.split('"').next().unwrap();
        for pair in points.split(' ') {
            let (x, y) = pair.split_once(',').unwrap();
            let (x, y): (f64, f64) = (x.parse().unwrap(), y.parse().unwrap());
            assert!(x >= 0.0 && x <= plot.width as f64);
            assert!(y >= 0.0 && y <= plot.height as f64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_plot_panics() {
        SvgPlot::cdf("x").render(&[]);
    }

    #[test]
    fn sketch_backed_series_matches_sample_backed_below_threshold() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let mut sketch = QuantileSketch::with_params(200.0, usize::MAX);
        for &v in &samples {
            sketch.record(v);
        }
        let from_samples = SvgPlot::cdf("t").render(&[SvgSeries::new("s", samples)]);
        let from_sketch = SvgPlot::cdf("t").render(&[SvgSeries::from_sketch("s", sketch)]);
        assert_eq!(from_samples, from_sketch);
    }

    #[test]
    fn sketching_series_renders_within_canvas() {
        let mut sketch = QuantileSketch::new();
        for i in 0..20_000u64 {
            sketch.record(1.0 + ((i * 31) % 5_000) as f64);
        }
        assert!(sketch.is_sketching());
        let svg = SvgPlot::cdf("big").render(&[SvgSeries::from_sketch("s", sketch)]);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 1);
    }

    #[test]
    fn line_chart_renders_solid_and_dashed() {
        let lines = vec![
            SvgLine::new("median", vec![(1.0, 10.0), (10.0, 50.0), (100.0, 400.0)]),
            SvgLine::new("p99", vec![(1.0, 20.0), (10.0, 90.0), (100.0, 900.0)]).dashed(),
        ];
        let svg = SvgLineChart::log_log("Fig 6a", "payload (KB)", "latency (ms)").render(&lines);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("payload (KB) (log)"));
        assert!(svg.contains("rotate(-90"));
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn line_chart_rejects_nonpositive() {
        let lines = vec![SvgLine::new("bad", vec![(0.0, 1.0)])];
        SvgLineChart::log_log("t", "x", "y").render(&lines);
    }

    #[test]
    #[should_panic(expected = "needs points")]
    fn empty_line_panics() {
        SvgLine::new("e", vec![]);
    }
}
