//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`] — backed by a
//! plain wall-clock sampler: warm-up, N timed samples, min/median/max report.
//! No statistical analysis, plots, or baseline storage. Positional
//! command-line arguments act as substring filters on benchmark names
//! (`cargo bench -- sim/warm_1k` runs just that group), mirroring
//! upstream criterion's filter argument closely enough for CI smoke jobs
//! to target individual benches.

use std::time::Instant;

pub use std::hint::black_box;

/// Batch sizing hint; accepted for API compatibility. Every batch runs the
/// routine once (matching `SmallInput` semantics closely enough for timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` hands filters to the bench binary as
        // positional arguments; flags (cargo's own `--bench`, harness
        // switches) are skipped.
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Criterion { sample_size: 20, filters }
    }
}

/// No filters runs everything; otherwise a bench runs when any filter is
/// a substring of its full name.
fn selected(filters: &[String], name: &str) -> bool {
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if !selected(&self.filters, name) {
            return self;
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: None }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if !selected(&self.criterion.filters, &full) {
            return self;
        }
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher { samples: Vec::new(), sample_size };
        f(&mut bencher);
        report(&full, &bencher.samples);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    /// Seconds per routine invocation, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly. Fast routines are batched so each sample
    /// spans at least ~2ms of wall clock.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: how many invocations fill ~2ms?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let batch = ((2e-3 / once) as usize).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Warm-up.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_time(sorted[0]),
        fmt_time(median),
        fmt_time(sorted[sorted.len() - 1]),
    );
}

/// Defines `pub fn $name()` running each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn filters_select_by_substring() {
        assert!(selected(&[], "sim/warm_1k_invocations"));
        let filters = vec!["sim/warm_1k".to_string()];
        assert!(selected(&filters, "sim/warm_1k_invocations"));
        assert!(!selected(&filters, "sim/million_invocations/adaptive"));
        let multi = vec!["cold".to_string(), "million".to_string()];
        assert!(selected(&multi, "sim/million_invocations/calendar"));
        assert!(!selected(&multi, "stats/summary_100k"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.5000 s");
        assert_eq!(fmt_time(2.5e-3), "2.5000 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5000 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5000 ns");
    }
}
