//! Calibration tests: hold the provider profiles to the paper.
//!
//! Two kinds of assertions, per DESIGN.md:
//!
//! * **Bands** — measured medians within ±25% of the paper's value and
//!   matched p99s within ±40% (simulated pipeline vs. the authors'
//!   testbed; absolute agreement is not the goal).
//! * **Shape facts** — orderings, crossovers and orders of magnitude that
//!   must hold exactly (who wins, what explodes, what is insensitive).
//!
//! Known divergences (documented in EXPERIMENTS.md) are asserted with
//! their own, honest bands rather than skipped.

use faas_sim::types::{DeploymentMethod, Runtime, TransferMode};
use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stellar_core::protocols::{
    bursty_invocations, cold_invocations, transfer_chain, warm_invocations, BurstIat, ColdSetup,
};

const SAMPLES: u32 = 1500;

fn assert_band(label: &str, measured: f64, target: f64, tolerance: f64) {
    let rel = (measured / target - 1.0).abs();
    assert!(
        rel <= tolerance,
        "{label}: measured {measured:.1} vs target {target:.1} ({:+.0}%, band ±{:.0}%)",
        (measured / target - 1.0) * 100.0,
        tolerance * 100.0
    );
}

// ---------- E1: warm invocations (Fig 3a, Obs 1) ----------

#[test]
fn warm_latency_bands() {
    for kind in ProviderKind::ALL {
        let out = warm_invocations(config_for(kind), SAMPLES, 101).unwrap();
        let (med, p99) = paper::warm_internal_ms(kind);
        let rtt = kind.prop_one_way_ms() * 2.0;
        assert_band(&format!("{kind} warm median"), out.summary.median, med + rtt, 0.15);
        assert_band(&format!("{kind} warm p99"), out.summary.tail, p99 + rtt, 0.30);
        assert!(out.summary.tmr < 2.5, "{kind}: warm TMR {}", out.summary.tmr);
    }
}

#[test]
fn warm_ordering_google_fastest_internally() {
    // Obs: internal medians order Google <= AWS < Azure (17/18/25).
    let mut medians = Vec::new();
    for kind in ProviderKind::ALL {
        let out = warm_invocations(config_for(kind), SAMPLES, 102).unwrap();
        medians.push((kind, out.summary.median - kind.prop_one_way_ms() * 2.0));
    }
    let aws = medians[0].1;
    let google = medians[1].1;
    let azure = medians[2].1;
    assert!(google <= aws + 2.0, "google {google} vs aws {aws}");
    assert!(aws < azure, "aws {aws} vs azure {azure}");
}

// ---------- E2: cold invocations (Fig 3b, Obs 2) ----------

#[test]
fn cold_latency_bands() {
    for kind in ProviderKind::ALL {
        let out =
            cold_invocations(config_for(kind), ColdSetup::baseline(), SAMPLES, 100, 103).unwrap();
        let (med, tmr) = paper::cold_observed_ms(kind);
        assert_band(&format!("{kind} cold median"), out.summary.median, med, 0.15);
        assert_band(&format!("{kind} cold p99"), out.summary.tail, med * tmr, 0.30);
        assert!(out.result.cold_fraction() > 0.8, "{kind}: mostly cold samples");
    }
}

#[test]
fn cold_is_an_order_of_magnitude_above_warm() {
    // Obs 2: cold medians are 10–28× the warm medians.
    for kind in ProviderKind::ALL {
        let warm = warm_invocations(config_for(kind), 800, 104).unwrap().summary.median;
        let cold = cold_invocations(config_for(kind), ColdSetup::baseline(), 800, 100, 104)
            .unwrap()
            .summary
            .median;
        let ratio = cold / warm;
        assert!((7.0..40.0).contains(&ratio), "{kind}: cold/warm ratio {ratio:.1}");
    }
}

#[test]
fn cold_ordering_aws_fastest_azure_slowest() {
    let mut med = Vec::new();
    for kind in ProviderKind::ALL {
        let out = cold_invocations(config_for(kind), ColdSetup::baseline(), 800, 100, 105).unwrap();
        med.push(out.summary.median);
    }
    assert!(med[0] < med[1], "aws {} < google {}", med[0], med[1]);
    assert!(med[1] < med[2], "google {} < azure {}", med[1], med[2]);
}

// ---------- E3: image size (Fig 4, Obs 2) ----------

fn image_cold(kind: ProviderKind, extra_mb: f64, seed: u64) -> stats::Summary {
    let setup = ColdSetup {
        runtime: Runtime::Go,
        deployment: DeploymentMethod::Zip,
        extra_image_mb: extra_mb,
    };
    cold_invocations(config_for(kind), setup, SAMPLES, 100, seed).unwrap().summary
}

#[test]
fn image_size_bands() {
    for kind in ProviderKind::ALL {
        let (m10, m100, t100) = paper::image_size_observed_ms(kind);
        let s10 = image_cold(kind, 10.0, 106);
        let s100 = image_cold(kind, 100.0, 107);
        assert_band(&format!("{kind} +10MB median"), s10.median, m10, 0.25);
        assert_band(&format!("{kind} +100MB median"), s100.median, m100, 0.25);
        assert_band(&format!("{kind} +100MB p99"), s100.tail, t100, 0.40);
    }
}

#[test]
fn google_is_image_size_insensitive_others_are_not() {
    // Fig 4's key shape: Google's 10MB and 100MB CDFs nearly coincide
    // (fetch hidden behind boot); AWS grows ~3.5×, Azure ~2.4×.
    let g10 = image_cold(ProviderKind::Google, 10.0, 108).median;
    let g100 = image_cold(ProviderKind::Google, 100.0, 109).median;
    assert!((g100 / g10 - 1.0).abs() < 0.10, "google should be insensitive: {g10:.0} vs {g100:.0}");
    let a10 = image_cold(ProviderKind::Aws, 10.0, 110).median;
    let a100 = image_cold(ProviderKind::Aws, 100.0, 111).median;
    assert!(a100 / a10 > 2.2, "aws sensitivity {:.1}x", a100 / a10);
    let z10 = image_cold(ProviderKind::Azure, 10.0, 112).median;
    let z100 = image_cold(ProviderKind::Azure, 100.0, 113).median;
    assert!(z100 / z10 > 1.8, "azure sensitivity {:.1}x", z100 / z10);
}

// ---------- E4: runtime & deployment method (Fig 5, Obs 3) ----------

fn aws_cold(runtime: Runtime, deployment: DeploymentMethod, seed: u64) -> stats::Summary {
    let setup = ColdSetup { runtime, deployment, extra_image_mb: 0.0 };
    cold_invocations(config_for(ProviderKind::Aws), setup, SAMPLES, 100, seed).unwrap().summary
}

#[test]
fn python_container_blows_up_the_tail() {
    // Obs 3: container deployment of an interpreted runtime raises the
    // tail ~8× over ZIP; TMR ~4.7.
    let zip = aws_cold(Runtime::Python3, DeploymentMethod::Zip, 114);
    let container = aws_cold(Runtime::Python3, DeploymentMethod::Container, 115);
    assert!(
        container.tail / zip.tail > 3.5,
        "container tail {:.0} vs zip tail {:.0}",
        container.tail,
        zip.tail
    );
    assert!(container.tmr > 3.0, "container TMR {:.1}", container.tmr);
    assert!(zip.tmr < 2.0, "zip TMR {:.1}", zip.tmr);
    assert_band("python container median", container.median, 612.0, 0.30);
    assert_band("python container p99", container.tail, 2882.0, 0.40);
}

#[test]
fn go_container_is_close_to_zip() {
    // Obs 3: a compiled runtime's container CDF stays close to ZIP.
    let zip = aws_cold(Runtime::Go, DeploymentMethod::Zip, 116);
    let container = aws_cold(Runtime::Go, DeploymentMethod::Container, 117);
    assert!(
        container.median / zip.median < 1.3,
        "go container median {:.0} vs zip {:.0}",
        container.median,
        zip.median
    );
    // ...with a moderately heavier tail (TMR 2.4 vs 1.5).
    assert!(container.tmr > zip.tmr);
    assert!(container.tmr < 3.5, "go container TMR {:.1}", container.tmr);
}

#[test]
fn runtime_choice_barely_matters_for_zip() {
    // Obs 3: <15 ms median difference in the paper; our Go image is
    // smaller so we allow a wider (still same-regime) band.
    let py = aws_cold(Runtime::Python3, DeploymentMethod::Zip, 118);
    let go = aws_cold(Runtime::Go, DeploymentMethod::Zip, 119);
    assert!(
        go.median / py.median > 0.6 && go.median / py.median < 1.2,
        "zip medians should be the same regime: go {:.0} python {:.0}",
        go.median,
        py.median
    );
}

// ---------- E5: inline transfers (Fig 6, Obs 4) ----------

#[test]
fn inline_transfer_bands() {
    for kind in [ProviderKind::Aws, ProviderKind::Google] {
        for &(bytes, med) in paper::inline_transfer_points(kind) {
            let out = transfer_chain(config_for(kind), TransferMode::Inline, bytes, SAMPLES, 120)
                .unwrap();
            let ts = out.transfer_summary.unwrap();
            assert_band(&format!("{kind} inline {bytes}B median"), ts.median, med, 0.25);
        }
    }
}

#[test]
fn inline_transfers_are_predictable() {
    // Obs 4: inline TMRs stay below ~2 (1.7 AWS, 1.4 Google at 1 MB).
    for kind in [ProviderKind::Aws, ProviderKind::Google] {
        let out = transfer_chain(config_for(kind), TransferMode::Inline, 1_000_000, SAMPLES, 121)
            .unwrap();
        let tmr = out.transfer_summary.unwrap().tmr;
        assert!(tmr < 2.5, "{kind}: inline TMR {tmr:.1}");
    }
}

#[test]
fn google_beats_aws_for_small_inline_payloads() {
    // §VI-C1: 1 KB completes ~1.6× faster on Google.
    let aws = transfer_chain(config_for(ProviderKind::Aws), TransferMode::Inline, 1_000, 800, 122)
        .unwrap()
        .transfer_summary
        .unwrap()
        .median;
    let google =
        transfer_chain(config_for(ProviderKind::Google), TransferMode::Inline, 1_000, 800, 123)
            .unwrap()
            .transfer_summary
            .unwrap()
            .median;
    assert!(google < aws, "google {google:.1} vs aws {aws:.1}");
    // ...but AWS wins for large payloads (higher inline bandwidth).
    let aws4 =
        transfer_chain(config_for(ProviderKind::Aws), TransferMode::Inline, 4_000_000, 800, 124)
            .unwrap()
            .transfer_summary
            .unwrap()
            .median;
    let google4 =
        transfer_chain(config_for(ProviderKind::Google), TransferMode::Inline, 4_000_000, 800, 125)
            .unwrap()
            .transfer_summary
            .unwrap()
            .median;
    assert!(aws4 < google4, "aws {aws4:.0} vs google {google4:.0} at 4MB");
}

// ---------- E6: storage transfers (Fig 7, Obs 4) ----------

#[test]
fn storage_transfer_bands() {
    for kind in [ProviderKind::Aws, ProviderKind::Google] {
        let (med, p99) = paper::storage_transfer_1mb_ms(kind);
        let out =
            transfer_chain(config_for(kind), TransferMode::Storage, 1_000_000, 3000, 126).unwrap();
        let ts = out.transfer_summary.unwrap();
        assert_band(&format!("{kind} storage 1MB median"), ts.median, med, 0.25);
        assert_band(&format!("{kind} storage 1MB p99"), ts.tail, p99, 0.40);
    }
}

#[test]
fn storage_is_the_tail_problem_inline_is_not() {
    // Obs 4, the paper's headline: storage TMR ≈ 10.6 (AWS) / 37.3
    // (Google), vs inline TMRs below 2.
    let aws =
        transfer_chain(config_for(ProviderKind::Aws), TransferMode::Storage, 1_000_000, 3000, 127)
            .unwrap()
            .transfer_summary
            .unwrap();
    assert!(aws.tmr > 6.0, "aws storage TMR {:.1}", aws.tmr);
    let google = transfer_chain(
        config_for(ProviderKind::Google),
        TransferMode::Storage,
        1_000_000,
        3000,
        128,
    )
    .unwrap()
    .transfer_summary
    .unwrap();
    assert!(google.tmr > 20.0, "google storage TMR {:.1}", google.tmr);
    assert!(google.tmr > aws.tmr, "google tail is worse than aws");
}

#[test]
fn storage_bandwidth_grows_with_payload() {
    // §VI-C2: effective bandwidth at ≥100 MB approaches 960 / 408 Mb/s
    // and greatly exceeds the 1 MB effective bandwidth.
    for kind in [ProviderKind::Aws, ProviderKind::Google] {
        let eff = |bytes: u64, seed| {
            let out =
                transfer_chain(config_for(kind), TransferMode::Storage, bytes, 300, seed).unwrap();
            bytes as f64 * 8.0 / 1e6 / (out.transfer_summary.unwrap().median / 1000.0)
        };
        let small = eff(1_000_000, 129);
        let large = eff(100_000_000, 130);
        let (small_target, large_target) = paper::storage_bandwidth_mbit(kind);
        assert_band(&format!("{kind} bw 1MB"), small, small_target, 0.30);
        assert_band(&format!("{kind} bw 100MB"), large, large_target, 0.30);
        assert!(large > 4.0 * small, "{kind}: {small:.0} -> {large:.0} Mb/s");
    }
}

#[test]
fn storage_beats_inline_bandwidth_but_loses_predictability() {
    // §VI-C2: storage yields higher effective bandwidth at 1 MB than the
    // corresponding inline transfer... at the price of the tail.
    let kind = ProviderKind::Aws;
    let inline = transfer_chain(config_for(kind), TransferMode::Inline, 1_000_000, 1000, 131)
        .unwrap()
        .transfer_summary
        .unwrap();
    let storage = transfer_chain(config_for(kind), TransferMode::Storage, 4_000_000, 1000, 132)
        .unwrap()
        .transfer_summary
        .unwrap();
    // 4 MB via storage is faster than 4 MB inline would extrapolate to,
    // and the storage tail dwarfs the inline tail.
    assert!(storage.tmr > 3.0 * inline.tmr);
}

// ---------- E7: bursts (Fig 8, Obs 5/6) ----------

#[test]
fn short_iat_burst_bands() {
    // Table I "Bursty warm" (burst 100): MR/TR per provider. Google's MR
    // is a known divergence (we underestimate its warm-burst bump; its
    // insensitivity fact below is preserved), so it gets a wide band.
    let base = |kind: ProviderKind| paper::warm_base_observed_ms(kind);
    let run = |kind: ProviderKind, burst: u32, seed| {
        bursty_invocations(config_for(kind), BurstIat::Short, burst, 0.0, 3000, 1, seed)
            .unwrap()
            .summary
    };
    let aws = run(ProviderKind::Aws, 100, 133);
    assert_band("aws burst100 median", aws.median, 2.0 * base(ProviderKind::Aws), 0.30);
    assert!(aws.tail > 4.0 * base(ProviderKind::Aws), "aws burst tail {:.0}", aws.tail);

    let azure = run(ProviderKind::Azure, 100, 134);
    assert_band("azure burst100 median", azure.median, 5.0 * base(ProviderKind::Azure), 0.30);
    assert!(azure.tail > 25.0 * base(ProviderKind::Azure), "azure burst tail {:.0}", azure.tail);

    let google = run(ProviderKind::Google, 100, 135);
    assert!(
        google.median < 3.5 * base(ProviderKind::Google),
        "google burst median {:.0}",
        google.median
    );
}

#[test]
fn azure_explodes_at_burst_500_google_stays_flat() {
    // §VI-D1: Azure's burst-500 median reaches ~33× its warm base;
    // Google's medians move by only ~tens of ms from 100 to 500.
    let azure500 = bursty_invocations(
        config_for(ProviderKind::Azure),
        BurstIat::Short,
        500,
        0.0,
        5000,
        1,
        136,
    )
    .unwrap()
    .summary;
    let base = paper::warm_base_observed_ms(ProviderKind::Azure);
    assert!(
        azure500.median > 20.0 * base,
        "azure burst500 median {:.0} ({}x base)",
        azure500.median,
        (azure500.median / base) as u32
    );

    let g100 = bursty_invocations(
        config_for(ProviderKind::Google),
        BurstIat::Short,
        100,
        0.0,
        3000,
        1,
        137,
    )
    .unwrap()
    .summary;
    let g500 = bursty_invocations(
        config_for(ProviderKind::Google),
        BurstIat::Short,
        500,
        0.0,
        5000,
        1,
        138,
    )
    .unwrap()
    .summary;
    assert!(
        (g500.median - g100.median).abs() < 60.0,
        "google insensitivity: {:.0} vs {:.0}",
        g100.median,
        g500.median
    );
}

#[test]
fn aws_long_bursts_get_faster_not_slower() {
    // §VI-D2's surprise: AWS burst-100 cold invocations are *faster* than
    // individual colds (storage-side image caching).
    let single =
        cold_invocations(config_for(ProviderKind::Aws), ColdSetup::baseline(), 1000, 100, 139)
            .unwrap()
            .summary;
    let burst =
        bursty_invocations(config_for(ProviderKind::Aws), BurstIat::Long, 100, 0.0, 3000, 3, 140)
            .unwrap()
            .summary;
    assert!(
        burst.median < 0.9 * single.median,
        "aws long burst median {:.0} vs single cold {:.0}",
        burst.median,
        single.median
    );
}

#[test]
fn google_long_bursts_get_slower() {
    // §VI-D2: Google burst-100 long-IAT median roughly doubles vs single
    // cold invocations (spawn pacing).
    let single =
        cold_invocations(config_for(ProviderKind::Google), ColdSetup::baseline(), 1000, 100, 141)
            .unwrap()
            .summary;
    let burst = bursty_invocations(
        config_for(ProviderKind::Google),
        BurstIat::Long,
        100,
        0.0,
        3000,
        3,
        142,
    )
    .unwrap()
    .summary;
    assert!(
        burst.median > 1.3 * single.median,
        "google long burst {:.0} vs single {:.0}",
        burst.median,
        single.median
    );
    assert_band("google long burst median", burst.median, 1818.0, 0.35);
}

#[test]
fn long_iat_bursts_have_low_tmr() {
    // Obs 6: TMRs of 1.3–2.6 for long-IAT bursts.
    for kind in ProviderKind::ALL {
        let out =
            bursty_invocations(config_for(kind), BurstIat::Long, 100, 0.0, 3000, 3, 143).unwrap();
        assert!(out.summary.tmr < 4.0, "{kind}: long burst TMR {:.1}", out.summary.tmr);
    }
}

// ---------- E8: scheduling policy (Fig 9, Obs 7) ----------

#[test]
fn fig9_policy_separation() {
    // The paper's two-orders-of-magnitude spread between no-queuing (AWS)
    // and deep queuing (Azure), with Google in between (≤4 queue).
    let run = |kind: ProviderKind, seed| {
        bursty_invocations(config_for(kind), BurstIat::Long, 100, 1000.0, 2000, 3, seed)
            .unwrap()
            .summary
    };
    let aws = run(ProviderKind::Aws, 144);
    let google = run(ProviderKind::Google, 145);
    let azure = run(ProviderKind::Azure, 146);

    let (aws_med, aws_p99) = paper::fig9_burst100_ms(ProviderKind::Aws);
    assert_band("fig9 aws median", aws.median, aws_med, 0.25);
    assert_band("fig9 aws p99", aws.tail, aws_p99, 0.40);
    // AWS: no request waits for another => everything under ~2.5 s.
    assert!(aws.tail < 2500.0, "aws fig9 p99 {:.0}", aws.tail);

    // Google: up to ~4 requests queue per instance (known +~35% median
    // divergence documented in EXPERIMENTS.md).
    let (g_med, _) = paper::fig9_burst100_ms(ProviderKind::Google);
    assert_band("fig9 google median", google.median, g_med, 0.45);
    assert!(google.median > 2.0 * aws.median);
    assert!(google.tail < 9000.0, "google queue depth bounded: {:.0}", google.tail);

    // Azure: deep queuing, median tens of seconds.
    let (z_med, z_p99) = paper::fig9_burst100_ms(ProviderKind::Azure);
    assert_band("fig9 azure median", azure.median, z_med, 0.30);
    assert_band("fig9 azure p99", azure.tail, z_p99, 0.35);
    // Paper ratio is 6.3×; our Google runs ~35% high (documented), so the
    // separation we can assert is ≳3.5×.
    assert!(
        azure.median > 3.5 * google.median,
        "azure {:.0} vs google {:.0}",
        azure.median,
        google.median
    );
    // Two orders of magnitude over AWS's (exec-subtracted) latency.
    assert!(azure.median > 10_000.0);
}

// ---------- Table I sanity ----------

#[test]
fn table_one_problematic_cells_reproduce() {
    // Every red cell (MR or TR > 10) in Table I must be red in our
    // reproduction too, for the factors we can measure end to end.
    let warm_aws = warm_invocations(config_for(ProviderKind::Aws), 2000, 147).unwrap();
    let base_aws = stats::percentile::median(&warm_aws.latencies_ms());

    // "Base cold" AWS: MR 10, TR 15.
    let cold =
        cold_invocations(config_for(ProviderKind::Aws), ColdSetup::baseline(), 1500, 100, 148)
            .unwrap();
    let ratios =
        stats::metrics::FactorRatios::compute(&cold.latencies_ms(), &warm_aws.latencies_ms());
    assert!(ratios.mr > 7.0 && ratios.mr < 14.0, "aws cold MR {:.1}", ratios.mr);
    assert!(ratios.is_problematic());
    let _ = base_aws;
}

// ---------- shipped profile artifacts ----------

#[test]
fn shipped_profile_json_matches_code() {
    // The JSON files under profiles/ are user-editable artifacts (loadable
    // by `stellar run --provider <file>`); they must stay in sync with the
    // code. Regenerate with `cargo run -p stellar-providers --example
    // dump_profiles`.
    for kind in ProviderKind::ALL {
        let cfg = config_for(kind);
        let path = format!("{}/profiles/{}.json", env!("CARGO_MANIFEST_DIR"), cfg.name);
        let shipped = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let parsed: faas_sim::config::ProviderConfig =
            serde_json::from_str(&shipped).expect("shipped profile parses");
        assert_eq!(
            serde_json::to_string(&parsed).unwrap(),
            serde_json::to_string(&cfg).unwrap(),
            "{path} is stale; regenerate with the dump_profiles example"
        );
    }
}
