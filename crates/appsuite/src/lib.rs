//! SeBS-style application scenarios for the STeLLAR simulator.
//!
//! SeBS (Copik et al., PAPERS.md) shows that a small set of calibrated
//! application classes — web/API, ML inference, multimedia, scientific —
//! covers most production FaaS workloads. This crate packages that
//! insight as named [`DagSpec`] presets with calibrated execution-time
//! and payload-size distributions, selectable from the CLI via `--app`
//! and crossed with the provider × workload × policy × fault axes.
//!
//! Calibration follows the regimes STeLLAR measures rather than absolute
//! numbers from any one provider: interactive stages run a few to tens of
//! milliseconds with log-normal tails, compute stages run hundreds of
//! milliseconds, inline payloads sit well under the ~6 MB provider caps,
//! and multimedia payloads ride the storage path at megabytes. See
//! DESIGN.md §13 for the full preset table.
//!
//! | preset           | shape                               | stages |
//! |------------------|-------------------------------------|--------|
//! | `web-api`        | linear auth → logic → render        | 3      |
//! | `thumbnail`      | upload → resize ×4 → collect (all)  | 6      |
//! | `ml-inference`   | preprocess → predict → render       | 3      |
//! | `video`          | split → transcode ×8 → merge (all)  | 10     |
//! | `map-reduce`     | ingest → map ×6 → reduce (all)      | 8      |
//! | `scatter-gather` | scatter → ×16 → gather (12-of-16)   | 18     |

use faas_sim::dag::{DagNodeSpec, DagSpec, JoinSpec};
use faas_sim::types::{DeploymentMethod, Runtime, TransferMode};
use simkit::dist::Dist;

/// Named application presets, usable from the CLI via `--app <name>`.
pub fn preset(name: &str) -> Option<DagSpec> {
    Some(match name {
        "web-api" => web_api(),
        "thumbnail" => thumbnail(),
        "ml-inference" => ml_inference(),
        "video" => video(),
        "map-reduce" => map_reduce(),
        "scatter-gather" => scatter_gather(),
        _ => return None,
    })
}

/// Every preset name, for `--help` and error messages.
pub fn preset_names() -> &'static [&'static str] {
    &["web-api", "thumbnail", "ml-inference", "video", "map-reduce", "scatter-gather"]
}

/// Parses a workflow from raw [`DagSpec`] JSON (the escape hatch for
/// applications beyond the named presets) and validates it.
///
/// # Errors
///
/// Returns a description of the parse or validation failure.
pub fn from_json(json: &str) -> Result<DagSpec, String> {
    let spec: DagSpec = serde_json::from_str(json).map_err(|e| format!("bad app spec: {e}"))?;
    spec.validate()?;
    Ok(spec)
}

/// Resolves `--app` input: a preset name, else inline JSON, else a
/// helpful error listing the presets.
///
/// # Errors
///
/// Returns a message naming the known presets when `input` is neither.
pub fn resolve(input: &str) -> Result<DagSpec, String> {
    if let Some(spec) = preset(input) {
        return Ok(spec);
    }
    if input.trim_start().starts_with('{') {
        return from_json(input);
    }
    Err(format!("unknown app '{input}' (presets: {})", preset_names().join(", ")))
}

/// Interactive web/API backend: the linear three-stage request path.
/// Fully linear with constant payloads, so it compiles onto the legacy
/// chain hot path — the degenerate single-path DAG.
pub fn web_api() -> DagSpec {
    DagSpec::new("web-api")
        .node(DagNodeSpec::new("auth").exec_ms(Dist::lognormal_median_p99(2.0, 8.0)).memory_mb(256))
        .node(
            DagNodeSpec::new("logic")
                .exec_ms(Dist::lognormal_median_p99(15.0, 60.0))
                .memory_mb(512),
        )
        .node(
            DagNodeSpec::new("render")
                .exec_ms(Dist::lognormal_median_p99(5.0, 20.0))
                .memory_mb(256),
        )
        .edge("auth", "logic", TransferMode::Inline, Dist::constant(2.0 * KB))
        .edge("logic", "render", TransferMode::Inline, Dist::constant(8.0 * KB))
}

/// Thumbnail generation: one upload fans out to four resize workers
/// (one per target resolution) whose outputs a collector joins. Images
/// ride the storage path; sizes are log-normal around a few hundred KB.
pub fn thumbnail() -> DagSpec {
    let mut spec = DagSpec::new("thumbnail").node(
        DagNodeSpec::new("upload").exec_ms(Dist::lognormal_median_p99(8.0, 30.0)).memory_mb(512),
    );
    for name in ["resize-64", "resize-128", "resize-256", "resize-512"] {
        spec = spec
            .node(
                DagNodeSpec::new(name)
                    .exec_ms(Dist::lognormal_median_p99(40.0, 180.0))
                    .memory_mb(1024),
            )
            .edge(
                "upload".to_string(),
                name.to_string(),
                TransferMode::Storage,
                Dist::lognormal_median_p99(400.0 * KB, 2.0 * MB),
            );
    }
    spec = spec.node(
        DagNodeSpec::new("collect").exec_ms(Dist::lognormal_median_p99(5.0, 20.0)).memory_mb(256),
    );
    for name in ["resize-64", "resize-128", "resize-256", "resize-512"] {
        spec = spec.edge(
            name.to_string(),
            "collect".to_string(),
            TransferMode::Storage,
            Dist::lognormal_median_p99(60.0 * KB, 250.0 * KB),
        );
    }
    spec
}

/// ML inference: preprocess → predict → render. Linear like `web-api`,
/// but the feature tensors have log-normal sizes, so every hop exercises
/// the DAG fork path (sampled payloads cannot compile to a chain), and
/// the model server is a large containerised function.
pub fn ml_inference() -> DagSpec {
    DagSpec::new("ml-inference")
        .node(
            DagNodeSpec::new("preprocess")
                .exec_ms(Dist::lognormal_median_p99(12.0, 50.0))
                .memory_mb(1024),
        )
        .node(
            DagNodeSpec::new("predict")
                .exec_ms(Dist::lognormal_median_p99(80.0, 350.0))
                .memory_mb(4096)
                .runtime(Runtime::Python3)
                .deployment(DeploymentMethod::Container),
        )
        .node(
            DagNodeSpec::new("render")
                .exec_ms(Dist::lognormal_median_p99(4.0, 15.0))
                .memory_mb(256),
        )
        .edge(
            "preprocess",
            "predict",
            TransferMode::Inline,
            Dist::lognormal_median_p99(200.0 * KB, 1.5 * MB),
        )
        .edge(
            "predict",
            "render",
            TransferMode::Inline,
            Dist::lognormal_median_p99(4.0 * KB, 32.0 * KB),
        )
}

/// Video processing: split → transcode ×8 → merge, the multimedia class.
/// Heavy compute, megabyte segments over storage, Go workers.
pub fn video() -> DagSpec {
    let mut spec = DagSpec::new("video").node(
        DagNodeSpec::new("split")
            .exec_ms(Dist::lognormal_median_p99(60.0, 250.0))
            .memory_mb(2048)
            .runtime(Runtime::Go),
    );
    for i in 0..8 {
        let name = format!("transcode-{i}");
        spec = spec
            .node(
                DagNodeSpec::new(name.clone())
                    .exec_ms(Dist::lognormal_median_p99(250.0, 1_200.0))
                    .memory_mb(3008)
                    .runtime(Runtime::Go)
                    .deployment(DeploymentMethod::Container),
            )
            .edge(
                "split".to_string(),
                name,
                TransferMode::Storage,
                Dist::lognormal_median_p99(4.0 * MB, 16.0 * MB),
            );
    }
    spec = spec.node(
        DagNodeSpec::new("merge")
            .exec_ms(Dist::lognormal_median_p99(80.0, 300.0))
            .memory_mb(2048)
            .runtime(Runtime::Go),
    );
    for i in 0..8 {
        spec = spec.edge(
            format!("transcode-{i}"),
            "merge".to_string(),
            TransferMode::Storage,
            Dist::lognormal_median_p99(2.0 * MB, 8.0 * MB),
        );
    }
    spec
}

/// Map-reduce: ingest fans a work list out to six mappers; a reducer
/// joins all partial results. The scientific/batch class with inline
/// intermediate data.
pub fn map_reduce() -> DagSpec {
    let mut spec = DagSpec::new("map-reduce").node(
        DagNodeSpec::new("ingest").exec_ms(Dist::lognormal_median_p99(10.0, 40.0)).memory_mb(512),
    );
    for i in 0..6 {
        let name = format!("map-{i}");
        spec = spec
            .node(
                DagNodeSpec::new(name.clone())
                    .exec_ms(Dist::lognormal_median_p99(70.0, 400.0))
                    .memory_mb(1024),
            )
            .edge(
                "ingest".to_string(),
                name,
                TransferMode::Inline,
                Dist::lognormal_median_p99(32.0 * KB, 200.0 * KB),
            );
    }
    spec = spec.node(
        DagNodeSpec::new("reduce").exec_ms(Dist::lognormal_median_p99(25.0, 100.0)).memory_mb(1024),
    );
    for i in 0..6 {
        spec = spec.edge(
            format!("map-{i}"),
            "reduce".to_string(),
            TransferMode::Inline,
            Dist::lognormal_median_p99(16.0 * KB, 100.0 * KB),
        );
    }
    spec
}

/// Scatter-gather: sixteen parallel lookups with a 12-of-16 quorum join —
/// the "tail at scale" shape where hedging inside the barrier (answering
/// on the first k) trades completeness for latency.
pub fn scatter_gather() -> DagSpec {
    let mut spec = DagSpec::new("scatter-gather").node(
        DagNodeSpec::new("scatter").exec_ms(Dist::lognormal_median_p99(3.0, 12.0)).memory_mb(256),
    );
    for i in 0..16 {
        let name = format!("lookup-{i}");
        spec = spec
            .node(
                DagNodeSpec::new(name.clone())
                    .exec_ms(Dist::lognormal_median_p99(10.0, 120.0))
                    .memory_mb(512),
            )
            .edge("scatter".to_string(), name, TransferMode::Inline, Dist::constant(1.0 * KB));
    }
    spec = spec.node(
        DagNodeSpec::new("gather")
            .exec_ms(Dist::lognormal_median_p99(5.0, 20.0))
            .memory_mb(512)
            .join(JoinSpec::KOfN { k: 12 }),
    );
    for i in 0..16 {
        spec = spec.edge(
            format!("lookup-{i}"),
            "gather".to_string(),
            TransferMode::Inline,
            Dist::lognormal_median_p99(2.0 * KB, 16.0 * KB),
        );
    }
    spec
}

/// Parametric fan-out/fan-in: `start → worker ×width → join (all)` with
/// rare-straggler worker execution — branches are fast (20 ms median,
/// 45 ms p99) except for a 0.2% chance of a ~1.1 s straggler (a GC
/// pause, a slow replica). Individually the slow mode hides beyond each
/// branch's p99, but an all-of-n join experiences it at `width` times
/// the per-branch rate: the tail-at-scale effect the straggler bench
/// sweeps `width` to measure.
pub fn fan_out(width: u32) -> DagSpec {
    assert!(width >= 1, "fan_out needs at least one branch");
    let mut spec = DagSpec::new(format!("fan-{width}")).node(
        DagNodeSpec::new("start").exec_ms(Dist::lognormal_median_p99(3.0, 12.0)).memory_mb(256),
    );
    for i in 0..width {
        let name = format!("worker-{i}");
        spec = spec
            .node(
                DagNodeSpec::new(name.clone())
                    .exec_ms(Dist::bimodal(
                        Dist::lognormal_median_p99(20.0, 45.0),
                        Dist::lognormal_median_p99(1_100.0, 2_200.0),
                        0.002,
                    ))
                    // Full-speed memory on every profile: a straggler must
                    // come from the slow mode above, not from CPU
                    // throttling stretching it past the inter-arrival gap
                    // (which would couple consecutive workflows through
                    // instance contention).
                    .memory_mb(2_048),
            )
            .edge("start".to_string(), name, TransferMode::Inline, Dist::constant(4.0 * KB));
    }
    let mut join_node =
        DagNodeSpec::new("join").exec_ms(Dist::lognormal_median_p99(4.0, 15.0)).memory_mb(512);
    if width >= 2 {
        join_node = join_node.join(JoinSpec::All);
    }
    spec = spec.node(join_node);
    for i in 0..width {
        spec = spec.edge(
            format!("worker-{i}"),
            "join".to_string(),
            TransferMode::Inline,
            Dist::lognormal_median_p99(2.0 * KB, 16.0 * KB),
        );
    }
    spec
}

const KB: f64 = 1_000.0;
const MB: f64 = 1_000_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_compiles() {
        for name in preset_names() {
            let spec = preset(name).unwrap_or_else(|| panic!("preset {name} missing"));
            assert_eq!(&spec.name, name, "preset name must match its key");
            let plan = spec.compile().unwrap_or_else(|e| panic!("preset {name}: {e}"));
            assert!(plan.nodes.len() >= 3, "preset {name} too small");
        }
        assert!(preset("no-such-app").is_none());
    }

    #[test]
    fn preset_shapes() {
        let web = web_api().compile().unwrap();
        assert!(web.nodes.iter().all(|n| !n.is_join()), "web-api is linear");

        let thumb = thumbnail().compile().unwrap();
        assert_eq!(thumb.nodes[thumb.root].out.len(), 4, "thumbnail fans out 4 ways");
        assert!(thumb.nodes.iter().any(|n| n.is_join()));

        let sg = scatter_gather().compile().unwrap();
        let gather = sg.nodes.iter().find(|n| n.name == "gather").unwrap();
        assert_eq!(gather.in_degree, 16);
        assert_eq!(gather.join_k, 12, "scatter-gather joins on a 12-of-16 quorum");

        let vid = video().compile().unwrap();
        assert_eq!(vid.nodes[vid.root].out.len(), 8, "video transcodes 8 segments");
    }

    #[test]
    fn fan_out_is_parametric() {
        for width in [1u32, 2, 4, 8, 16] {
            let plan = fan_out(width).compile().unwrap();
            assert_eq!(plan.nodes.len() as u32, width + 2);
            assert_eq!(plan.nodes[plan.root].out.len() as u32, width);
            let join = plan.nodes.iter().find(|n| n.name == "join").unwrap();
            assert_eq!(join.in_degree, width);
            assert_eq!(join.join_k, width, "fan_out join waits for every branch");
        }
    }

    #[test]
    fn resolve_accepts_presets_and_json() {
        assert_eq!(resolve("thumbnail").unwrap().name, "thumbnail");
        let json = r#"{"name":"mini","nodes":[{"name":"a"},{"name":"b"}],
                       "edges":[{"from":"a","to":"b"}]}"#;
        assert_eq!(resolve(json).unwrap().name, "mini");
        let err = resolve("bogus").unwrap_err();
        assert!(err.contains("web-api"), "error must list presets: {err}");
        assert!(resolve("{not json").is_err());
    }

    #[test]
    fn json_round_trip() {
        for name in preset_names() {
            let spec = preset(name).unwrap();
            let json = serde_json::to_string(&spec).unwrap();
            assert_eq!(from_json(&json).unwrap(), spec);
        }
    }
}
