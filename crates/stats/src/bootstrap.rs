//! Bootstrap confidence intervals.
//!
//! Percentile-bootstrap intervals quantify how much a reported median or
//! p99 could move under resampling — used in `EXPERIMENTS.md` to report
//! uncertainty next to paper-vs-measured comparisons.

use simkit::rng::Rng;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Draws `resamples` bootstrap resamples of `samples`, applies `statistic`
/// to each, and returns the `[alpha/2, 1-alpha/2]` percentile interval.
///
/// # Panics
///
/// Panics if `samples` is empty, `resamples == 0`, or `alpha` is outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use stats::bootstrap::bootstrap_ci;
/// use stats::percentile::median;
/// let xs: Vec<f64> = (1..=100).map(f64::from).collect();
/// let ci = bootstrap_ci(&xs, median, 500, 0.05, 42);
/// assert!(ci.contains(50.5));
/// ```
pub fn bootstrap_ci<F>(
    samples: &[f64],
    statistic: F,
    resamples: usize,
    alpha: f64,
    seed: u64,
) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!samples.is_empty(), "bootstrap of empty sample set");
    assert!(resamples > 0, "need at least one resample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha out of range: {alpha}");
    let mut rng = Rng::seed_from(seed);
    let estimate = statistic(samples);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; samples.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = samples[rng.below(samples.len() as u64) as usize];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    let lo = crate::percentile::sorted_percentile(&stats, alpha / 2.0);
    let hi = crate::percentile::sorted_percentile(&stats, 1.0 - alpha / 2.0);
    ConfidenceInterval { lo, estimate, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::{median, p99};

    #[test]
    fn median_ci_brackets_truth() {
        let xs: Vec<f64> = (1..=1000).map(f64::from).collect();
        let ci = bootstrap_ci(&xs, median, 300, 0.05, 1);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.contains(500.5));
        assert!(ci.width() < 100.0);
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let xs = vec![7.0; 50];
        let ci = bootstrap_ci(&xs, median, 100, 0.05, 2);
        assert_eq!((ci.lo, ci.estimate, ci.hi), (7.0, 7.0, 7.0));
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn p99_interval_is_wider_than_median_interval() {
        // Heavy-tailed data: the p99 estimator is far noisier than the median.
        let mut rng = Rng::seed_from(3);
        let xs: Vec<f64> = (0..2000).map(|_| (-rng.next_f64_open().ln()).powi(3) * 100.0).collect();
        let m = bootstrap_ci(&xs, median, 200, 0.05, 4);
        let t = bootstrap_ci(&xs, p99, 200, 0.05, 4);
        assert!(t.width() > m.width());
    }

    #[test]
    fn deterministic_for_seed() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let a = bootstrap_ci(&xs, median, 100, 0.05, 9);
        let b = bootstrap_ci(&xs, median, 100, 0.05, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        bootstrap_ci(&[], median, 10, 0.05, 0);
    }
}
