//! Log-spaced histograms.
//!
//! Latencies in serverless systems span four orders of magnitude (tens of
//! milliseconds warm to tens of seconds queued-cold), so the natural bin
//! layout is logarithmic.

use serde::{Deserialize, Serialize};

/// A histogram with logarithmically spaced bins over `[lo, hi)` plus
/// underflow/overflow buckets.
///
/// # Examples
///
/// ```
/// use stats::histogram::LogHistogram;
/// let mut h = LogHistogram::new(1.0, 1000.0, 3);
/// h.record(5.0);
/// h.record(50.0);
/// h.record(500.0);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.counts(), &[1, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` log-spaced bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> LogHistogram {
        assert!(lo > 0.0, "log histogram needs positive lower bound");
        assert!(hi > lo, "hi must exceed lo");
        assert!(bins > 0, "need at least one bin");
        LogHistogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Records one value.
    ///
    /// The bin chosen is always consistent with [`LogHistogram::bin_edges`]:
    /// `record(v)` increments the bin `i` with `bin_edges(i).0 <= v` and
    /// `v < bin_edges(i).1`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (a NaN used to fall through both range
    /// checks and land silently in bin 0 because `NaN as usize == 0`).
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN in a histogram");
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let k = self.counts.len();
            let frac = (value / self.lo).ln() / (self.hi / self.lo).ln();
            let mut idx = ((frac * k as f64) as usize).min(k - 1);
            // The ln-ratio mapping above and the powf mapping in
            // `bin_edges` can disagree by one ULP right at a bin boundary;
            // nudge to the bin whose edges actually contain the value.
            while idx > 0 && value < self.bin_edges(idx).0 {
                idx -= 1;
            }
            while idx + 1 < k && value >= self.bin_edges(idx).1 {
                idx += 1;
            }
            self.counts[idx] += 1;
        }
    }

    /// Records many values.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Per-bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let k = self.counts.len() as f64;
        let ratio = self.hi / self.lo;
        // Pin the outermost edges to the exact bounds: `lo * ratio` can be
        // a ULP off `hi`, which would leave values right under `hi` outside
        // every bin. The bins must tile `[lo, hi)` exactly.
        let lo = if i == 0 { self.lo } else { self.lo * ratio.powf(i as f64 / k) };
        let hi = if i + 1 == self.counts.len() {
            self.hi
        } else {
            self.lo * ratio.powf((i + 1) as f64 / k)
        };
        (lo, hi)
    }

    /// Renders the histogram as ASCII bars with bin ranges.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as f64 / max as f64 * width as f64).round() as usize);
            out.push_str(&format!("[{lo:>10.2}, {hi:>10.2}) {c:>7} {bar}\n"));
        }
        if self.underflow > 0 {
            out.push_str(&format!("underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("overflow: {}\n", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decade_bins_land_correctly() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(2.0); // decade [1,10)
        h.record(20.0); // [10,100)
        h.record(200.0); // [100,1000)
        assert_eq!(h.counts(), &[1, 1, 1]);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = LogHistogram::new(10.0, 100.0, 2);
        h.record(1.0);
        h.record(100.0);
        h.record(1e9);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn boundary_values() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.record(1.0); // exactly lo -> first bin
        h.record(10.0); // edge between bins -> second bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn bin_edges_are_logarithmic() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        let (lo, hi) = h.bin_edges(1);
        assert!((lo - 10.0).abs() < 1e-9);
        assert!((hi - 100.0).abs() < 1e-9);
    }

    #[test]
    fn record_all_and_render() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record_all([2.0, 3.0, 30.0]);
        let art = h.render_ascii(20);
        assert!(art.contains('#'));
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive lower bound")]
    fn zero_lo_panics() {
        LogHistogram::new(0.0, 10.0, 2);
    }

    #[test]
    #[should_panic(expected = "cannot record NaN")]
    fn record_nan_panics() {
        // Regression: NaN used to fall through both range checks and be
        // counted silently in bin 0.
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(f64::NAN);
    }

    #[test]
    fn infinities_hit_the_flow_buckets() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.counts(), &[0, 0, 0]);
    }

    #[test]
    fn recorded_bin_agrees_with_bin_edges_at_boundaries() {
        // Exercise exact powf bin edges, where the ln-ratio index mapping
        // can land one bin off before the nudge.
        let h0 = LogHistogram::new(1.0, 1000.0, 7);
        for i in 0..7 {
            let (lo, hi) = h0.bin_edges(i);
            for v in [lo, (lo + hi) / 2.0, hi - hi * 1e-15] {
                let mut h = h0.clone();
                h.record(v);
                assert_eq!(h.counts()[i], 1, "value {v} must land in bin {i}");
            }
        }
    }
}
