//! Property-based invariants of the DAG workflow engine.
//!
//! Random layered DAGs — fan-out, all-of-n and k-of-n joins, sampled
//! (non-constant) payloads so nothing chain-compiles away — must
//! conserve per-node spawn accounting, fire every barrier exactly once
//! per workflow, and leave no state behind after either a clean drain or
//! a mid-flight cancellation. Cyclic specs must be rejected at compile
//! time with an error that names the stuck nodes.

use faas_sim::cloud::CloudSim;
use faas_sim::dag::{DagNodeSpec, DagSpec, JoinSpec};
use faas_sim::testutil::test_provider;
use faas_sim::types::TransferMode;
use proptest::prelude::*;
use simkit::dist::Dist;
use simkit::rng::Rng;
use simkit::time::SimTime;

/// Derives a random layered DAG from `shape`: a single root, one to
/// three hidden layers of one to three nodes, every node wired to a
/// non-empty subset of the previous layer (so the root is the unique
/// source and everything is reachable). Fan-in nodes flip a coin
/// between all-of-n and a random k-of-n quorum. Payload and execution
/// distributions are sampled, never constant, so no edge is eligible
/// for the legacy-chain lowering and every hop runs on the DAG engine.
fn random_dag(shape: u64) -> DagSpec {
    let mut rng = Rng::seed_from(shape);
    let mut widths = vec![1usize];
    for _ in 0..rng.range_u64(1, 3) {
        widths.push(rng.range_u64(1, 3) as usize);
    }
    let name = |layer: usize, idx: usize| format!("l{layer}n{idx}");
    // Pick parents first so each node's in-degree is known before the
    // node (and its join spec) is added.
    let mut edges: Vec<(String, String)> = Vec::new();
    let mut in_degree = vec![vec![0u32; 1]];
    for layer in 1..widths.len() {
        let prev = widths[layer - 1];
        let mut degs = vec![0u32; widths[layer]];
        for (idx, deg) in degs.iter_mut().enumerate() {
            let first = rng.below(prev as u64) as usize;
            for p in 0..prev {
                if p == first || rng.bernoulli(0.4) {
                    edges.push((name(layer - 1, p), name(layer, idx)));
                    *deg += 1;
                }
            }
        }
        in_degree.push(degs);
    }
    let mut spec = DagSpec::new(format!("random-{shape:x}"));
    for (layer, degs) in in_degree.iter().enumerate() {
        for (idx, &d) in degs.iter().enumerate() {
            let mut node =
                DagNodeSpec::new(name(layer, idx)).exec_ms(Dist::Uniform { lo: 1.0, hi: 20.0 });
            if d >= 2 && rng.bernoulli(0.5) {
                node = node.join(JoinSpec::KOfN { k: rng.range_u64(1, u64::from(d)) as u32 });
            }
            spec = spec.node(node);
        }
    }
    for (from, to) in edges {
        spec = spec.edge(from, to, TransferMode::Inline, Dist::Uniform { lo: 512.0, hi: 4096.0 });
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A drained workflow conserves every counter: per-node spawns all
    /// complete, each barrier fires exactly once per submission, and no
    /// side table or slab slot outlives idle.
    #[test]
    fn random_dags_conserve_and_drain(
        seed in any::<u64>(),
        shape in any::<u64>(),
        submissions in 1u64..=3,
    ) {
        let plan = random_dag(shape).compile().expect("generated DAGs are acyclic");
        let mut sim = CloudSim::new(test_provider(), seed);
        let dep = sim.deploy_dag(&plan).unwrap();
        for i in 0..submissions {
            sim.submit(dep.root, i, SimTime::from_secs(i as f64));
        }
        sim.run_to_idle();

        let done = sim.drain_completions();
        prop_assert_eq!(done.len() as u64, submissions, "one completion per workflow");
        prop_assert!(done.iter().all(|c| c.is_ok()));
        for (_, counters) in sim.dag_node_counters() {
            prop_assert_eq!(counters.spawned, counters.completed, "{:?}", counters);
            prop_assert_eq!(counters.cancelled, 0);
        }
        for join in sim.dag_join_stats() {
            prop_assert_eq!(join.fired, submissions, "a barrier fires exactly once per workflow");
        }
        prop_assert!(sim.dag_tables_empty(), "DAG side tables must drain at idle");
        prop_assert_eq!(sim.request_slab_stats().live, 0);
    }

    /// Cancelling the root mid-flight (or after completion — the
    /// generation guard makes that a no-op) never strands a branch, a
    /// barrier, a pending arrival or a slab slot.
    #[test]
    fn random_dag_cancellation_leaves_no_orphans(
        seed in any::<u64>(),
        shape in any::<u64>(),
        cancel_at_ms in 0.0f64..200.0,
    ) {
        let plan = random_dag(shape).compile().expect("generated DAGs are acyclic");
        let mut sim = CloudSim::new(test_provider(), seed);
        let dep = sim.deploy_dag(&plan).unwrap();
        let rid = sim.submit(dep.root, 0, SimTime::ZERO);
        sim.run_until(SimTime::from_millis(cancel_at_ms));
        sim.cancel(rid);
        sim.run_to_idle();

        prop_assert_eq!(sim.request_slab_stats().live, 0, "cancel leaked slab slots");
        prop_assert!(sim.dag_tables_empty(), "cancel leaked barrier or arrival state");
        for (_, counters) in sim.dag_node_counters() {
            prop_assert_eq!(counters.spawned, counters.completed + counters.cancelled);
        }
        // Either the workflow finished before the cancel landed or it
        // was torn down whole — never both, never neither.
        let done = sim.drain_completions();
        let cancelled = sim.cancel_stats().cancelled;
        prop_assert!(
            (done.len() == 1 && cancelled == 0) || (done.is_empty() && cancelled > 0),
            "completions {} / cancelled {}", done.len(), cancelled,
        );
    }

    /// Splicing a two-node loop into any random DAG makes it cyclic;
    /// compilation must fail and name the stuck nodes, whatever the
    /// surrounding (valid) structure looks like.
    #[test]
    fn cycles_are_rejected_with_named_nodes(shape in any::<u64>()) {
        let payload = || Dist::Uniform { lo: 512.0, hi: 4096.0 };
        let cyclic = random_dag(shape)
            .node(DagNodeSpec::new("cx").exec_ms(Dist::Uniform { lo: 1.0, hi: 5.0 }))
            .node(DagNodeSpec::new("cy").exec_ms(Dist::Uniform { lo: 1.0, hi: 5.0 }))
            .edge("l0n0", "cx", TransferMode::Inline, payload())
            .edge("cx", "cy", TransferMode::Inline, payload())
            .edge("cy", "cx", TransferMode::Inline, payload());
        let msg = cyclic.compile().expect_err("a two-node loop must not compile");
        prop_assert!(msg.contains("cycle"), "error must say cycle: {}", msg);
        prop_assert!(
            msg.contains("cx") && msg.contains("cy"),
            "error must name the stuck nodes: {}", msg,
        );
    }
}
