//! MMPP burst trains vs a rate-matched Poisson baseline: the stochastic
//! generalization of Fig 9's burst-size knob. Both workloads offer the
//! same mean load (2 req/s); the MMPP packs it into ~20-request bursts,
//! so the queueing separation between scheduling policies (§VI-D3, Obs 7)
//! reappears without ever setting `burst_size`.

use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::{Experiment, Outcome};
use workload::spec::{ArrivalSpec, WorkloadSpec};

use crate::report::{Report, BASE_SEED};

/// Function execution time, ms. At the 2 req/s mean rate this is 0.2
/// busy-instance equivalents — far below saturation — while an MMPP burst
/// (40 req/s) transiently demands 4: the regime where burstiness, not
/// mean load, sets the tail.
pub const EXEC_MS: f64 = 100.0;

/// Mean inter-arrival time both workloads are matched to, ms.
pub const MEAN_IAT_MS: f64 = 500.0;

/// The two arrival shapes under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Rate-matched Poisson baseline (CV 1, Fano 1).
    Poisson,
    /// Two-state MMPP burst train at the same mean rate.
    Mmpp,
}

impl Shape {
    /// All shapes, baseline first.
    pub const ALL: [Shape; 2] = [Shape::Poisson, Shape::Mmpp];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Shape::Poisson => "poisson",
            Shape::Mmpp => "mmpp",
        }
    }

    /// The workload spec for this shape. Both have mean rate
    /// 1000 / [`MEAN_IAT_MS`] per second: the MMPP packs all its
    /// arrivals into 40/s bursts with a mean 500 ms dwell, silent
    /// otherwise — 40·0.5 arrivals per mean 10 s cycle = 2/s.
    pub fn spec(self) -> WorkloadSpec {
        let arrival = match self {
            Shape::Poisson => ArrivalSpec::Exponential { mean_ms: MEAN_IAT_MS },
            Shape::Mmpp => ArrivalSpec::Mmpp {
                on_mean_ms: 500.0,
                off_mean_ms: 9_500.0,
                on_rate_per_s: 40.0,
                off_rate_per_s: 0.0,
            },
        };
        WorkloadSpec { arrival, mode: workload::spec::ModeSpec::Open }
    }
}

/// Measured data: one outcome per (provider, arrival shape).
#[derive(Debug)]
pub struct MmppAmplification {
    /// The grid cells, provider-major.
    pub cells: Vec<(ProviderKind, Shape, Outcome)>,
}

fn run_cell(kind: ProviderKind, shape: Shape, samples: u32) -> Outcome {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), samples);
    runtime.warmup_rounds = 5;
    runtime.exec_ms = EXEC_MS;
    let runtime = runtime.with_workload(shape.spec());
    Experiment::new(config_for(kind))
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("amp")] })
        .workload(runtime)
        .seed(BASE_SEED + 90 + shape as u64)
        .run()
        .expect("mmpp amplification run")
}

/// Runs the provider × shape grid in parallel.
pub fn measure(samples: u32) -> MmppAmplification {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .flat_map(|&kind| Shape::ALL.into_iter().map(move |s| (kind, s)))
            .map(|(kind, shape)| {
                scope.spawn(move |_| (kind, shape, run_cell(kind, shape, samples)))
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    MmppAmplification { cells }
}

impl MmppAmplification {
    /// The outcome for one cell.
    pub fn cell(&self, kind: ProviderKind, shape: Shape) -> Option<&Outcome> {
        self.cells.iter().find(|(k, s, _)| *k == kind && *s == shape).map(|(_, _, o)| o)
    }

    /// Latency summary for one cell.
    pub fn summary(&self, kind: ProviderKind, shape: Shape) -> Option<Summary> {
        self.cell(kind, shape).map(|o| o.summary.clone())
    }

    /// p99 under MMPP over p99 under the rate-matched Poisson stream.
    pub fn amplification(&self, kind: ProviderKind) -> Option<f64> {
        let mmpp = self.summary(kind, Shape::Mmpp)?;
        let poisson = self.summary(kind, Shape::Poisson)?;
        (poisson.tail > 0.0).then(|| mmpp.tail / poisson.tail)
    }

    /// Renders the report: per-cell latency next to the realized load
    /// that produced it, plus the per-provider amplification factors.
    pub fn report(&self) -> Report {
        let mut table = stats::table::TextTable::new(vec![
            "series",
            "med_ms",
            "p99_ms",
            "tmr",
            "rate/s",
            "iat_cv",
            "peak/mean",
            "fano",
        ]);
        for (kind, shape, outcome) in &self.cells {
            let s = &outcome.summary;
            let offered = outcome.result.offered.expect("spec runs report offered load");
            table.row(vec![
                format!("{kind} {}", shape.label()),
                stats::table::fmt_latency(s.median),
                stats::table::fmt_latency(s.tail),
                stats::table::fmt_ratio(s.tmr),
                format!("{:.1}", offered.mean_rate_per_s),
                format!("{:.2}", offered.iat_cv),
                format!("{:.2}", offered.peak_to_mean),
                format!("{:.2}", offered.fano),
            ]);
        }
        let mut body = table.render();
        body.push('\n');
        for kind in ProviderKind::ALL {
            if let Some(amp) = self.amplification(kind) {
                body.push_str(&format!(
                    "{kind}: p99 amplification under MMPP ≈ {amp:.1}x the Poisson baseline\n"
                ));
            }
        }
        Report {
            id: "mmpp",
            title: "Queueing amplification under MMPP bursts (rate-matched to Poisson)",
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmpp_is_overdispersed_and_amplifies_queueing_tails() {
        let data = measure(500);
        for kind in ProviderKind::ALL {
            let poisson = data.cell(kind, Shape::Poisson).unwrap().result.offered.expect("offered");
            let mmpp = data.cell(kind, Shape::Mmpp).unwrap().result.offered.expect("offered");
            // Rate-matched inputs, very different shapes.
            assert!(
                (poisson.mean_rate_per_s - mmpp.mean_rate_per_s).abs()
                    < 0.5 * poisson.mean_rate_per_s,
                "{kind}: rates {} vs {}",
                poisson.mean_rate_per_s,
                mmpp.mean_rate_per_s
            );
            assert!((poisson.iat_cv - 1.0).abs() < 0.25, "{kind}: poisson cv {}", poisson.iat_cv);
            assert!(mmpp.iat_cv > 1.3, "{kind}: mmpp cv {}", mmpp.iat_cv);
            assert!(mmpp.fano > poisson.fano, "{kind}: fano {} vs {}", mmpp.fano, poisson.fano);
        }
        // Queue-at-instance policies turn burstiness into tail latency;
        // the effect is strongest for the deep-queueing provider (Obs 7).
        let azure = data.amplification(ProviderKind::Azure).unwrap();
        assert!(azure > 1.5, "azure amplification {azure}");
        let report = data.report().render();
        assert!(report.contains("amplification"));
        assert!(report.contains("iat_cv"));
    }
}
