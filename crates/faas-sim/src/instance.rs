//! Function instance lifecycle state machine.
//!
//! Instances move `Booting → Idle ⇄ Busy → Dead`, with keep-alive reaping
//! from `Idle`. Each state change bumps an epoch counter so that stale
//! reap events (scheduled before the instance was reused) are ignored.

use simkit::time::SimTime;

use crate::types::{InstanceId, RequestId};

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Boot in progress; ready at the contained time.
    Booting {
        /// When the boot completes.
        ready_at: SimTime,
    },
    /// Online and waiting for work since the contained time.
    Idle {
        /// When the instance last became idle.
        since: SimTime,
    },
    /// Executing the contained request.
    Busy {
        /// The request being served.
        request: RequestId,
    },
    /// Reaped; never used again.
    Dead,
}

/// One function instance.
#[derive(Debug, Clone)]
pub struct Instance {
    id: InstanceId,
    state: InstanceState,
    epoch: u64,
    served: u64,
    spawned_at: SimTime,
}

impl Instance {
    /// Creates an instance in the `Booting` state.
    pub fn boot(id: InstanceId, now: SimTime, ready_at: SimTime) -> Instance {
        assert!(ready_at >= now, "boot completes before it starts");
        Instance {
            id,
            state: InstanceState::Booting { ready_at },
            epoch: 0,
            served: 0,
            spawned_at: now,
        }
    }

    /// Instance identifier.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// Current state.
    pub fn state(&self) -> InstanceState {
        self.state
    }

    /// Epoch counter; bumps on every transition out of `Idle`/into `Idle`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Requests served by this instance.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// When the spawn began.
    pub fn spawned_at(&self) -> SimTime {
        self.spawned_at
    }

    /// Whether the instance can accept a request right now.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, InstanceState::Idle { .. })
    }

    /// Whether the instance is booting.
    pub fn is_booting(&self) -> bool {
        matches!(self.state, InstanceState::Booting { .. })
    }

    /// Whether the instance is executing a request.
    pub fn is_busy(&self) -> bool {
        matches!(self.state, InstanceState::Busy { .. })
    }

    /// Whether the instance has been reaped.
    pub fn is_dead(&self) -> bool {
        matches!(self.state, InstanceState::Dead)
    }

    /// Boot finished: `Booting → Idle`.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not booting.
    pub fn boot_complete(&mut self, now: SimTime) {
        assert!(self.is_booting(), "boot_complete on {:?}", self.state);
        self.state = InstanceState::Idle { since: now };
        self.epoch += 1;
    }

    /// Work assigned: `Idle → Busy`.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not idle.
    pub fn assign(&mut self, request: RequestId) {
        assert!(self.is_idle(), "assign on {:?}", self.state);
        self.state = InstanceState::Busy { request };
        self.epoch += 1;
        self.served += 1;
    }

    /// Work finished: `Busy → Idle`.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not busy with `request`.
    pub fn release(&mut self, request: RequestId, now: SimTime) {
        match self.state {
            InstanceState::Busy { request: current } if current == request => {
                self.state = InstanceState::Idle { since: now };
                self.epoch += 1;
            }
            _ => panic!("release({request}) on {:?}", self.state),
        }
    }

    /// Boot failure: `Booting → Dead` (failure injection).
    ///
    /// # Panics
    ///
    /// Panics if the instance is not booting.
    pub fn fail_boot(&mut self) {
        assert!(self.is_booting(), "fail_boot on {:?}", self.state);
        self.state = InstanceState::Dead;
        self.epoch += 1;
    }

    /// Mid-execution crash: `Busy → Dead` (fault injection). The request
    /// being served dies with the instance; its result is lost.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not busy with `request`.
    pub fn crash(&mut self, request: RequestId) {
        match self.state {
            InstanceState::Busy { request: current } if current == request => {
                self.state = InstanceState::Dead;
                self.epoch += 1;
            }
            _ => panic!("crash({request}) on {:?}", self.state),
        }
    }

    /// Keep-alive expiry: `Idle → Dead`, but only if the epoch still
    /// matches (otherwise the instance was reused and the reap is stale).
    /// Returns whether the instance died.
    pub fn try_reap(&mut self, epoch: u64) -> bool {
        if self.is_idle() && self.epoch == epoch {
            self.state = InstanceState::Dead;
            self.epoch += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FunctionId;

    fn iid() -> InstanceId {
        InstanceId { function: FunctionId(0), idx: 0 }
    }

    fn rid(n: u64) -> RequestId {
        RequestId(n)
    }

    const MS: fn(f64) -> SimTime = SimTime::from_millis;

    #[test]
    fn full_lifecycle() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(100.0));
        assert!(inst.is_booting());
        inst.boot_complete(MS(100.0));
        assert!(inst.is_idle());
        inst.assign(rid(1));
        assert!(inst.is_busy());
        inst.release(rid(1), MS(150.0));
        assert!(inst.is_idle());
        assert_eq!(inst.served(), 1);
    }

    #[test]
    fn reap_only_when_epoch_matches() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(10.0));
        inst.boot_complete(MS(10.0));
        let epoch = inst.epoch();
        inst.assign(rid(1));
        inst.release(rid(1), MS(20.0));
        // Reap scheduled while idle at `epoch` is stale now.
        assert!(!inst.try_reap(epoch));
        assert!(!inst.is_dead());
        // Reap with the current epoch succeeds.
        assert!(inst.try_reap(inst.epoch()));
        assert!(inst.is_dead());
    }

    #[test]
    fn reap_on_busy_is_ignored() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(10.0));
        inst.boot_complete(MS(10.0));
        let epoch = inst.epoch();
        inst.assign(rid(1));
        assert!(!inst.try_reap(epoch));
        assert!(inst.is_busy());
    }

    #[test]
    #[should_panic(expected = "assign")]
    fn assign_while_booting_panics() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(10.0));
        inst.assign(rid(1));
    }

    #[test]
    #[should_panic(expected = "release")]
    fn release_wrong_request_panics() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(10.0));
        inst.boot_complete(MS(10.0));
        inst.assign(rid(1));
        inst.release(rid(2), MS(20.0));
    }

    #[test]
    fn crash_kills_busy_instance() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(10.0));
        inst.boot_complete(MS(10.0));
        inst.assign(rid(1));
        let epoch = inst.epoch();
        inst.crash(rid(1));
        assert!(inst.is_dead());
        assert!(inst.epoch() > epoch, "crash must invalidate pending reaps");
    }

    #[test]
    #[should_panic(expected = "crash")]
    fn crash_wrong_request_panics() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(10.0));
        inst.boot_complete(MS(10.0));
        inst.assign(rid(1));
        inst.crash(rid(2));
    }

    #[test]
    fn epoch_advances_on_transitions() {
        let mut inst = Instance::boot(iid(), MS(0.0), MS(10.0));
        let e0 = inst.epoch();
        inst.boot_complete(MS(10.0));
        let e1 = inst.epoch();
        inst.assign(rid(1));
        let e2 = inst.epoch();
        assert!(e0 < e1 && e1 < e2);
    }
}
