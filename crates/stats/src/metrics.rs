//! The paper's normalised tail-latency metrics.
//!
//! §V defines three metrics used throughout the evaluation and in Table I:
//!
//! * **TMR** (tail-to-median ratio): p99 of a distribution normalised to
//!   its own median — a per-experiment predictability measure;
//! * **MR** (*median to base median ratio*): the median latency of a
//!   factor experiment normalised to the median latency of an individual
//!   warm invocation on the same provider;
//! * **TR** (*tail to base median ratio*): the p99 of a factor experiment
//!   normalised to the same warm-invocation base median.
//!
//! The paper flags MR or TR above 10 as potentially problematic.

use crate::percentile::{sort_samples, sorted_percentile};

/// Threshold above which the paper considers MR/TR/TMR problematic.
pub const PROBLEMATIC_THRESHOLD: f64 = 10.0;

/// Tail-to-median ratio of one sample set.
///
/// Sorts a single copy of the input and derives both quantiles from it.
///
/// # Panics
///
/// Panics if `samples` is empty.
///
/// # Examples
///
/// ```
/// use stats::metrics::tmr;
/// let mut xs = vec![10.0; 95];
/// xs.extend(std::iter::repeat(1000.0).take(5));
/// assert!(tmr(&xs) > 10.0);
/// ```
pub fn tmr(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sort_samples(&mut sorted);
    ratio(sorted_percentile(&sorted, 0.99), sorted_percentile(&sorted, 0.5))
}

/// MR: median of `factor_samples` over the median of `base_samples`
/// (the provider's individual warm invocations).
///
/// # Panics
///
/// Panics if either sample set is empty.
pub fn median_ratio(factor_samples: &[f64], base_samples: &[f64]) -> f64 {
    FactorRatios::compute(factor_samples, base_samples).mr
}

/// TR: p99 of `factor_samples` over the median of `base_samples`.
///
/// # Panics
///
/// Panics if either sample set is empty.
pub fn tail_ratio(factor_samples: &[f64], base_samples: &[f64]) -> f64 {
    FactorRatios::compute(factor_samples, base_samples).tr
}

/// One row of the paper's Table I for a single provider: a factor's MR and
/// TR against the warm-invocation base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorRatios {
    /// Median-to-base-median ratio.
    pub mr: f64,
    /// Tail-to-base-median ratio.
    pub tr: f64,
}

impl FactorRatios {
    /// Computes MR and TR for `factor_samples` against `base_samples`.
    ///
    /// Each input is copied and sorted exactly once. For a fixed base
    /// compared against many factors (Table I has eight factor rows per
    /// provider), pre-compute the base median and use
    /// [`FactorRatios::against_base_median`].
    ///
    /// # Panics
    ///
    /// Panics if either sample set is empty.
    pub fn compute(factor_samples: &[f64], base_samples: &[f64]) -> FactorRatios {
        let mut base = base_samples.to_vec();
        sort_samples(&mut base);
        let mut factor = factor_samples.to_vec();
        sort_samples(&mut factor);
        FactorRatios::from_sorted(&factor, sorted_percentile(&base, 0.5))
    }

    /// Computes MR and TR for `factor_samples` against an already-known
    /// base median, sorting one copy of the factor samples.
    ///
    /// # Panics
    ///
    /// Panics if `factor_samples` is empty.
    pub fn against_base_median(factor_samples: &[f64], base_median: f64) -> FactorRatios {
        let mut factor = factor_samples.to_vec();
        sort_samples(&mut factor);
        FactorRatios::from_sorted(&factor, base_median)
    }

    /// Computes MR and TR from an ascending-sorted factor slice and a
    /// pre-computed base median (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `factor_sorted` is empty.
    pub fn from_sorted(factor_sorted: &[f64], base_median: f64) -> FactorRatios {
        FactorRatios {
            mr: ratio(sorted_percentile(factor_sorted, 0.5), base_median),
            tr: ratio(sorted_percentile(factor_sorted, 0.99), base_median),
        }
    }

    /// Computes MR and TR after subtracting a constant from every factor
    /// sample — Table I footnote 7 subtracts the 1 s execution time in the
    /// "Bursty long" row so only infrastructure and queueing delays remain.
    ///
    /// # Panics
    ///
    /// Panics if either sample set is empty.
    pub fn compute_minus_exec(
        factor_samples: &[f64],
        base_samples: &[f64],
        exec_ms: f64,
    ) -> FactorRatios {
        let mut base = base_samples.to_vec();
        sort_samples(&mut base);
        FactorRatios::minus_exec_against_base_median(
            factor_samples,
            sorted_percentile(&base, 0.5),
            exec_ms,
        )
    }

    /// [`FactorRatios::compute_minus_exec`] against an already-known base
    /// median (skips re-sorting the base).
    ///
    /// # Panics
    ///
    /// Panics if `factor_samples` is empty.
    pub fn minus_exec_against_base_median(
        factor_samples: &[f64],
        base_median: f64,
        exec_ms: f64,
    ) -> FactorRatios {
        let mut adjusted: Vec<f64> =
            factor_samples.iter().map(|&x| (x - exec_ms).max(0.0)).collect();
        sort_samples(&mut adjusted);
        FactorRatios::from_sorted(&adjusted, base_median)
    }

    /// Whether either ratio crosses the paper's problematic threshold
    /// (highlighted red in Table I).
    pub fn is_problematic(&self) -> bool {
        self.mr > PROBLEMATIC_THRESHOLD || self.tr > PROBLEMATIC_THRESHOLD
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmr_of_flat_distribution_is_one() {
        assert_eq!(tmr(&[5.0; 100]), 1.0);
    }

    #[test]
    fn mr_tr_against_base() {
        let base = vec![10.0; 100]; // warm median 10
        let mut factor = vec![100.0; 95]; // factor median 100
        factor.extend(std::iter::repeat_n(2000.0, 5)); // p99 in straggler mode
        let r = FactorRatios::compute(&factor, &base);
        assert_eq!(r.mr, 10.0);
        assert!(r.tr > 100.0);
        assert!(r.is_problematic());
    }

    #[test]
    fn non_problematic_factor() {
        let base = vec![10.0; 100];
        let factor = vec![20.0; 100];
        let r = FactorRatios::compute(&factor, &base);
        assert_eq!(r.mr, 2.0);
        assert_eq!(r.tr, 2.0);
        assert!(!r.is_problematic());
    }

    #[test]
    fn exec_subtraction_matches_footnote() {
        let base = vec![10.0; 100];
        // 1s execution + 100ms infra per request.
        let factor = vec![1100.0; 100];
        let r = FactorRatios::compute_minus_exec(&factor, &base, 1000.0);
        assert_eq!(r.mr, 10.0);
        assert_eq!(r.tr, 10.0);
    }

    #[test]
    fn exec_subtraction_clamps_at_zero() {
        let base = vec![10.0; 10];
        let factor = vec![500.0; 10];
        let r = FactorRatios::compute_minus_exec(&factor, &base, 1000.0);
        assert_eq!(r.mr, 0.0);
    }

    #[test]
    fn zero_base_median_is_infinite() {
        let base = vec![0.0; 10];
        let factor = vec![1.0; 10];
        assert!(median_ratio(&factor, &base).is_infinite());
        assert!(tail_ratio(&factor, &base).is_infinite());
    }
}
