//! Storage services: the image store and the payload store.
//!
//! Both model cost-optimised object storage (paper §III): per-operation
//! base latency with a heavy tail plus a size/bandwidth term. The image
//! store additionally models the behaviours the paper infers from its burst
//! experiments (§VI-D2):
//!
//! * a storage-side **cache** that keeps recently fetched images hot (AWS
//!   bursts completing *faster* than individual cold starts),
//! * **request coalescing** of concurrent fetches for the same image,
//! * **load adaptation** boosting bandwidth under many in-flight fetches,
//! * **contention** dividing bandwidth across concurrent fetches.

use std::collections::HashMap;

use simkit::rng::Rng;
use simkit::time::SimTime;

use crate::config::{ImageStoreConfig, PayloadStoreConfig};
use crate::types::FunctionId;

/// Outcome of one image fetch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchOutcome {
    /// Total fetch latency, ms.
    pub latency_ms: f64,
    /// Whether the storage-side cache was warm.
    pub cache_warm: bool,
    /// Whether the fetch was coalesced onto an in-flight fetch.
    pub coalesced: bool,
    /// Whether load adaptation boosted the bandwidth.
    pub adaptive: bool,
}

/// Counters exposed for tests and experiment diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImageStoreStats {
    /// Total fetches issued.
    pub fetches: u64,
    /// Fetches served from the warm cache.
    pub warm_hits: u64,
    /// Fetches coalesced onto an in-flight fetch.
    pub coalesced: u64,
    /// Fetches served under load adaptation.
    pub adaptive_hits: u64,
}

#[derive(Debug)]
struct ImageState {
    /// Earliest instant the cache holds the image (first admitting fetch
    /// completion).
    warm_from: SimTime,
    /// Cache stays warm until this instant.
    warm_until: SimTime,
    /// Completion times of in-flight fetches (pruned lazily).
    inflight_ends: Vec<SimTime>,
    /// Start times of recent fetches within the TTL window (popularity).
    recent_starts: Vec<SimTime>,
}

impl Default for ImageState {
    fn default() -> Self {
        ImageState {
            warm_from: SimTime::MAX,
            warm_until: SimTime::ZERO,
            inflight_ends: Vec::new(),
            recent_starts: Vec::new(),
        }
    }
}

/// The function-image storage service.
#[derive(Debug)]
pub struct ImageStore {
    cfg: ImageStoreConfig,
    rng: Rng,
    images: HashMap<FunctionId, ImageState>,
    stats: ImageStoreStats,
}

impl ImageStore {
    /// Creates a store from its configuration and a forked RNG stream.
    pub fn new(cfg: ImageStoreConfig, rng: Rng) -> ImageStore {
        ImageStore { cfg, rng, images: HashMap::new(), stats: ImageStoreStats::default() }
    }

    /// Counters for tests/diagnostics.
    pub fn stats(&self) -> ImageStoreStats {
        self.stats
    }

    /// Fetches the image of `function` (`size_mb` decimal megabytes) at
    /// time `now`, returning the sampled latency and cache behaviour.
    pub fn fetch(&mut self, function: FunctionId, size_mb: f64, now: SimTime) -> FetchOutcome {
        self.stats.fetches += 1;
        let cache = self.cfg.cache.clone();
        let state = self.images.entry(function).or_default();
        state.inflight_ends.retain(|&end| end > now);
        if now >= state.warm_until {
            // The cache entry (if any) has expired; forget the old window.
            state.warm_from = SimTime::MAX;
        }
        let inflight = state.inflight_ends.len() as u32;

        let cache_warm = cache.enabled && now >= state.warm_from && now < state.warm_until;
        let adaptive = cache.adaptive_threshold > 0 && inflight >= cache.adaptive_threshold;

        let mut base = self.cfg.base_latency_ms.sample(&mut self.rng);
        let mut bw = self.cfg.bandwidth_mbps.sample(&mut self.rng).max(0.01);
        if cache_warm {
            base *= cache.warm_latency_mult;
            bw *= cache.warm_bandwidth_mult;
            self.stats.warm_hits += 1;
        }
        if adaptive {
            bw *= cache.adaptive_bandwidth_mult;
            self.stats.adaptive_hits += 1;
        }
        if cache.contention_parallelism > 0.0 {
            bw /= 1.0 + inflight as f64 / cache.contention_parallelism;
        }

        let mut latency_ms = base + size_mb / bw * 1000.0;
        let mut coalesced = false;

        // Request coalescing: a cold fetch that overlaps an in-flight fetch
        // of the same image completes shortly after the earliest in-flight
        // completion rather than paying the full transfer again.
        if cache.enabled && !cache_warm {
            if let Some(&earliest) = state
                .inflight_ends
                .iter()
                .min()
                .filter(|&&end| end < now + SimTime::from_millis(latency_ms))
            {
                let tail = earliest.saturating_sub(now).as_millis();
                let warm_cost = base * cache.warm_latency_mult
                    + size_mb / (bw * cache.warm_bandwidth_mult) * 1000.0;
                latency_ms = tail + warm_cost;
                coalesced = true;
                self.stats.coalesced += 1;
            }
        }

        let end = now + SimTime::from_millis(latency_ms);
        state.inflight_ends.push(end);
        if cache.enabled {
            let window = SimTime::from_secs(cache.warm_ttl_s);
            state.recent_starts.retain(|&s| s + window > now);
            state.recent_starts.push(now);
            // Admit to the cache only once the image is popular enough.
            if state.recent_starts.len() >= cache.warm_min_recent.max(1) as usize {
                state.warm_from = state.warm_from.min(end);
                state.warm_until = state.warm_until.max(end + window);
            }
        }
        FetchOutcome { latency_ms, cache_warm, coalesced, adaptive }
    }
}

/// The payload storage service (S3 / Cloud Storage analogue).
#[derive(Debug)]
pub struct PayloadStore {
    cfg: PayloadStoreConfig,
    rng: Rng,
    puts: u64,
    gets: u64,
}

impl PayloadStore {
    /// Creates a store from its configuration and a forked RNG stream.
    pub fn new(cfg: PayloadStoreConfig, rng: Rng) -> PayloadStore {
        PayloadStore { cfg, rng, puts: 0, gets: 0 }
    }

    /// Latency of writing `bytes` at `now`, ms.
    pub fn put_ms(&mut self, bytes: u64) -> f64 {
        self.puts += 1;
        let base = self.cfg.put_base_ms.sample(&mut self.rng);
        base + self.transfer_ms(bytes)
    }

    /// Latency of reading `bytes` at `now`, ms.
    pub fn get_ms(&mut self, bytes: u64) -> f64 {
        self.gets += 1;
        let base = self.cfg.get_base_ms.sample(&mut self.rng);
        base + self.transfer_ms(bytes)
    }

    /// `(puts, gets)` issued so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.puts, self.gets)
    }

    fn transfer_ms(&mut self, bytes: u64) -> f64 {
        let bw = self.cfg.bandwidth_mbps.sample(&mut self.rng).max(0.01);
        bytes as f64 / 1e6 / bw * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImageCacheConfig;
    use simkit::dist::Dist;

    fn store_cfg(cache: ImageCacheConfig) -> ImageStoreConfig {
        ImageStoreConfig {
            base_latency_ms: Dist::constant(50.0),
            bandwidth_mbps: Dist::constant(100.0),
            cache,
        }
    }

    fn fid(n: u32) -> FunctionId {
        FunctionId(n)
    }

    #[test]
    fn uncached_fetch_is_base_plus_transfer() {
        let mut store = ImageStore::new(store_cfg(ImageCacheConfig::none()), Rng::seed_from(1));
        let out = store.fetch(fid(0), 10.0, SimTime::ZERO);
        // 50ms base + 10MB / 100MB/s = 100ms -> 150ms
        assert_eq!(out.latency_ms, 150.0);
        assert!(!out.cache_warm && !out.coalesced && !out.adaptive);
    }

    #[test]
    fn warm_cache_speeds_up_later_fetch() {
        let cache = ImageCacheConfig {
            enabled: true,
            warm_ttl_s: 100.0,
            warm_latency_mult: 0.2,
            warm_bandwidth_mult: 10.0,
            ..ImageCacheConfig::none()
        };
        let mut store = ImageStore::new(store_cfg(cache), Rng::seed_from(1));
        let first = store.fetch(fid(0), 10.0, SimTime::ZERO);
        assert!(!first.cache_warm);
        // Well after the first fetch completed, within TTL:
        let later = SimTime::from_secs(10.0);
        let second = store.fetch(fid(0), 10.0, later);
        assert!(second.cache_warm);
        // 50*0.2 + 10MB/(1000MB/s) = 10 + 10 = 20ms
        assert_eq!(second.latency_ms, 20.0);
        assert_eq!(store.stats().warm_hits, 1);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let cache = ImageCacheConfig {
            enabled: true,
            warm_ttl_s: 1.0,
            warm_latency_mult: 0.2,
            warm_bandwidth_mult: 10.0,
            ..ImageCacheConfig::none()
        };
        let mut store = ImageStore::new(store_cfg(cache), Rng::seed_from(1));
        store.fetch(fid(0), 10.0, SimTime::ZERO);
        let after_ttl = SimTime::from_secs(5.0);
        let out = store.fetch(fid(0), 10.0, after_ttl);
        assert!(!out.cache_warm);
    }

    #[test]
    fn concurrent_fetches_coalesce() {
        let cache = ImageCacheConfig {
            enabled: true,
            warm_ttl_s: 100.0,
            warm_latency_mult: 0.1,
            warm_bandwidth_mult: 10.0,
            ..ImageCacheConfig::none()
        };
        let mut store = ImageStore::new(store_cfg(cache), Rng::seed_from(1));
        let first = store.fetch(fid(0), 100.0, SimTime::ZERO); // 50 + 1000 = 1050ms
        assert_eq!(first.latency_ms, 1050.0);
        // Second starts 100ms in; coalesces onto the first (ends at 1050ms):
        let second = store.fetch(fid(0), 100.0, SimTime::from_millis(100.0));
        assert!(second.coalesced);
        // tail (950) + warm cost (5 + 100) = 1055
        assert_eq!(second.latency_ms, 1055.0);
        assert!(second.latency_ms < 1050.0 + 100.0);
    }

    #[test]
    fn distinct_images_do_not_share_cache() {
        let cache = ImageCacheConfig {
            enabled: true,
            warm_ttl_s: 100.0,
            warm_latency_mult: 0.2,
            warm_bandwidth_mult: 10.0,
            ..ImageCacheConfig::none()
        };
        let mut store = ImageStore::new(store_cfg(cache), Rng::seed_from(1));
        store.fetch(fid(0), 10.0, SimTime::ZERO);
        let other = store.fetch(fid(1), 10.0, SimTime::from_secs(10.0));
        assert!(!other.cache_warm);
    }

    #[test]
    fn adaptive_boost_kicks_in_under_load() {
        let cache = ImageCacheConfig {
            enabled: false,
            adaptive_threshold: 3,
            adaptive_bandwidth_mult: 10.0,
            ..ImageCacheConfig::none()
        };
        let mut store = ImageStore::new(store_cfg(cache), Rng::seed_from(1));
        let t = SimTime::ZERO;
        for _ in 0..3 {
            let out = store.fetch(fid(0), 100.0, t);
            assert!(!out.adaptive);
        }
        let boosted = store.fetch(fid(0), 100.0, t);
        assert!(boosted.adaptive);
        // 50 + 100MB/(1000MB/s) = 150ms, vs 1050 unboosted.
        assert_eq!(boosted.latency_ms, 150.0);
        assert_eq!(store.stats().adaptive_hits, 1);
    }

    #[test]
    fn contention_divides_bandwidth() {
        let cache = ImageCacheConfig { contention_parallelism: 1.0, ..ImageCacheConfig::none() };
        let mut store = ImageStore::new(store_cfg(cache), Rng::seed_from(1));
        let t = SimTime::ZERO;
        let first = store.fetch(fid(0), 100.0, t);
        assert_eq!(first.latency_ms, 1050.0); // no contention yet
        let second = store.fetch(fid(0), 100.0, t);
        // one inflight: bw / (1 + 1) -> 2050ms
        assert_eq!(second.latency_ms, 2050.0);
    }

    #[test]
    fn inflight_prunes_after_completion() {
        let cache = ImageCacheConfig { contention_parallelism: 1.0, ..ImageCacheConfig::none() };
        let mut store = ImageStore::new(store_cfg(cache), Rng::seed_from(1));
        store.fetch(fid(0), 100.0, SimTime::ZERO); // ends at 1050ms
        let late = store.fetch(fid(0), 100.0, SimTime::from_secs(10.0));
        assert_eq!(late.latency_ms, 1050.0, "old inflight should be pruned");
    }

    #[test]
    fn payload_store_put_get() {
        let cfg = PayloadStoreConfig {
            put_base_ms: Dist::constant(20.0),
            get_base_ms: Dist::constant(10.0),
            bandwidth_mbps: Dist::constant(50.0),
        };
        let mut store = PayloadStore::new(cfg, Rng::seed_from(1));
        // 1MB at 50MB/s = 20ms transfer.
        assert_eq!(store.put_ms(1_000_000), 40.0);
        assert_eq!(store.get_ms(1_000_000), 30.0);
        assert_eq!(store.op_counts(), (1, 1));
    }

    #[test]
    fn payload_store_scales_with_size() {
        let cfg = PayloadStoreConfig {
            put_base_ms: Dist::constant(0.0),
            get_base_ms: Dist::constant(0.0),
            bandwidth_mbps: Dist::constant(100.0),
        };
        let mut store = PayloadStore::new(cfg, Rng::seed_from(1));
        let small = store.get_ms(1_000_000);
        let large = store.get_ms(1_000_000_000);
        assert!((large / small - 1000.0).abs() < 1e-6);
    }
}
