//! Fig 8: latency CDFs for bursts arriving with short and long IATs at
//! different burst sizes (§VI-D1, §VI-D2).

use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::protocols::{bursty_invocations, BurstIat};

use crate::report::{comparison_table, Comparison, Report, BASE_SEED};

/// Burst sizes swept (1 = individual invocations, as in Fig 3).
pub const BURSTS: [u32; 4] = [1, 100, 300, 500];

/// Replica count for long-IAT bursts: 3 functions × 10 rounds reproduces
/// the paper's 30 bursts per configuration.
pub const LONG_REPLICAS: u32 = 3;

/// Measured data: `(provider, iat, burst, samples)`.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One cell per (provider, regime, burst size).
    pub cells: Vec<(ProviderKind, BurstIat, u32, Vec<f64>)>,
}

/// Runs the full grid (3 providers × 2 regimes × burst sizes) in parallel.
pub fn measure(samples: u32) -> Fig8 {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .flat_map(|&kind| {
                [BurstIat::Short, BurstIat::Long]
                    .into_iter()
                    .flat_map(move |iat| BURSTS.iter().map(move |&b| (kind, iat, b)))
            })
            .map(|(kind, iat, burst)| {
                scope.spawn(move |_| {
                    // Keep round counts sensible: at least 10 rounds per
                    // configuration, at most `samples` per cell for burst 1.
                    let n = samples.max(burst * 10);
                    let out = bursty_invocations(
                        config_for(kind),
                        iat,
                        burst,
                        0.0,
                        n,
                        LONG_REPLICAS,
                        BASE_SEED + 40 + burst as u64,
                    )
                    .expect("burst run");
                    (kind, iat, burst, out.latencies_ms())
                })
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    Fig8 { cells }
}

impl Fig8 {
    /// Summary for one cell.
    pub fn summary(&self, kind: ProviderKind, iat: BurstIat, burst: u32) -> Option<Summary> {
        self.cells
            .iter()
            .find(|(k, i, b, _)| *k == kind && *i == iat && *b == burst)
            .map(|(_, _, _, s)| Summary::from_samples(s))
    }

    /// Paper-vs-measured rows. The paper gives explicit values for
    /// Google's long-IAT bursts and Table I ratios at burst 100.
    pub fn comparisons(&self) -> Vec<Comparison> {
        let mut rows = Vec::new();
        for (kind, iat, burst, samples) in &self.cells {
            let base = paper::warm_base_observed_ms(*kind);
            let (pm, pt) = match (iat, *burst) {
                (BurstIat::Short, 100) => {
                    // Table I "Bursty warm" row.
                    let (mr, tr) = match kind {
                        ProviderKind::Aws => (2.0, 11.0),
                        ProviderKind::Google => (3.0, 5.0),
                        ProviderKind::Azure => (5.0, 41.0),
                    };
                    (mr * base, tr * base)
                }
                (BurstIat::Short, 500) if *kind == ProviderKind::Azure => {
                    // §VI-D1: 33.4× median, 98.5× tail.
                    (33.4 * base, 98.5 * base)
                }
                (BurstIat::Long, 100) => {
                    let (mr, tr) = match kind {
                        ProviderKind::Aws => (6.0, 12.0),
                        ProviderKind::Google => (59.0, 100.0),
                        ProviderKind::Azure => (41.0, 58.0),
                    };
                    (mr * base, tr * base)
                }
                (BurstIat::Long, 1) => {
                    let (m, tmr) = paper::cold_observed_ms(*kind);
                    (m, m * tmr)
                }
                _ => (f64::NAN, f64::NAN),
            };
            let regime = match iat {
                BurstIat::Short => "short",
                BurstIat::Long => "long",
            };
            rows.push(Comparison::from_summary(
                format!("{kind} {regime} b{burst}"),
                &Summary::from_samples(samples),
                pm,
                pt,
            ));
        }
        rows
    }

    /// Renders the report with the headline shape facts.
    pub fn report(&self) -> Report {
        let mut body = comparison_table(&self.comparisons());
        body.push('\n');
        // Shape callouts from §VI-D.
        if let (Some(a1), Some(a100)) = (
            self.summary(ProviderKind::Aws, BurstIat::Long, 1),
            self.summary(ProviderKind::Aws, BurstIat::Long, 100),
        ) {
            body.push_str(&format!(
                "aws long-IAT: burst100/burst1 median = {:.2}x (paper 1/1.8x = 0.56x: bursts get FASTER)\n",
                a100.median / a1.median
            ));
        }
        if let (Some(g100), Some(g500)) = (
            self.summary(ProviderKind::Google, BurstIat::Short, 100),
            self.summary(ProviderKind::Google, BurstIat::Short, 500),
        ) {
            body.push_str(&format!(
                "google short-IAT: |median(500)-median(100)| = {:.0} ms (paper: within 15 ms)\n",
                (g500.median - g100.median).abs()
            ));
        }
        if let (Some(z1), Some(z500)) = (
            self.summary(ProviderKind::Azure, BurstIat::Short, 1),
            self.summary(ProviderKind::Azure, BurstIat::Short, 500),
        ) {
            body.push_str(&format!(
                "azure short-IAT: burst500/burst1 median = {:.1}x (paper 33.4x)\n",
                z500.median / z1.median
            ));
        }
        Report { id: "fig8", title: "Burst latency CDFs for short and long IATs", body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_shape_facts() {
        let data = measure(600);
        // Azure explodes with burst size under short IAT.
        let z1 = data.summary(ProviderKind::Azure, BurstIat::Short, 1).unwrap();
        let z500 = data.summary(ProviderKind::Azure, BurstIat::Short, 500).unwrap();
        assert!(z500.median > 15.0 * z1.median, "azure {:.0} -> {:.0}", z1.median, z500.median);
        // AWS long-IAT bursts are faster than individual colds.
        let a1 = data.summary(ProviderKind::Aws, BurstIat::Long, 1).unwrap();
        let a100 = data.summary(ProviderKind::Aws, BurstIat::Long, 100).unwrap();
        assert!(a100.median < a1.median);
        // Google long-IAT bursts are slower than individual colds.
        let g1 = data.summary(ProviderKind::Google, BurstIat::Long, 1).unwrap();
        let g100 = data.summary(ProviderKind::Google, BurstIat::Long, 100).unwrap();
        assert!(g100.median > g1.median);
        assert!(data.report().render().contains("FASTER"));
    }
}
