//! # stellar-stats — latency statistics for tail-latency analysis
//!
//! Statistical machinery used throughout the STeLLAR reproduction:
//!
//! * [`mod@percentile`] — interpolated percentiles over latency samples;
//! * [`summary`] — one-struct summaries ([`summary::Summary`]) with the
//!   paper's headline metrics (median, p99 "tail", tail-to-median ratio);
//! * [`cdf`] — empirical CDFs with text rendering (the paper's Figs 3–9 are
//!   CDF plots);
//! * [`metrics`] — the paper's normalised factor metrics: TMR, MR and TR
//!   (§V "Latency and Bandwidth Metrics" and Table I);
//! * [`histogram`] — log-spaced histograms (deprecated shim over the
//!   quantile sketch, kept for bin-count views);
//! * [`ks`] — two-sample Kolmogorov–Smirnov distance, used by calibration
//!   tests to compare simulated and target distributions;
//! * [`bootstrap`] — bootstrap confidence intervals;
//! * [`sketch`] — streaming quantile sketches ([`sketch::QuantileSketch`],
//!   [`sketch::LatencyAgg`]) with a documented rank-error bound, so
//!   million-invocation runs never materialise their full latency vector;
//! * [`table`] — plain-text table rendering for the benchmark harness.

// No internal code may call the deprecated LogHistogram shim: new users
// get the sketch, and the shim's own impl/tests opt back in locally.
#![deny(deprecated)]

pub mod bootstrap;
pub mod cdf;
pub mod histogram;
pub mod ks;
pub mod metrics;
pub mod percentile;
pub mod sketch;
pub mod summary;
pub mod svg;
pub mod table;

pub use cdf::Cdf;
pub use metrics::{median_ratio, tail_ratio, tmr};
pub use percentile::{median, p99, percentile, percentile_in_place};
pub use sketch::{LatencyAgg, QuantileMode, QuantileSketch};
pub use summary::Summary;
