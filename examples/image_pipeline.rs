//! Image-processing pipeline: a three-stage function chain
//! (resize → filter → encode) moving image payloads between stages — the
//! kind of data-intensive serverless app the paper's §VI-C motivates.
//!
//! Shows the transport decision the paper quantifies: inline transfers are
//! fast and predictable but size-capped; storage transfers scale to any
//! size but pay a heavy latency tail.
//!
//! ```bash
//! cargo run --release -p stellar-examples --bin image_pipeline
//! ```

use faas_sim::types::{TransferMode, KB, MB};
use providers::profiles::aws_like;
use stats::table::{fmt_latency, fmt_ratio, TextTable};
use stellar_core::config::{ChainConfig, IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::Experiment;

fn run_pipeline(payload_bytes: u64, mode: TransferMode) -> Option<stats::Summary> {
    let mut workload = RuntimeConfig::single(IatSpec::Fixed { ms: 2000.0 }, 400);
    workload.warmup_rounds = 3;
    workload.exec_ms = 15.0; // per-stage compute (resize/filter/encode)
    workload.chain = Some(ChainConfig { length: 3, mode, payload_bytes });
    let outcome = Experiment::new(aws_like())
        .functions(StaticConfig { functions: vec![StaticFunction::go_zip("img")] })
        .workload(workload)
        .seed(7)
        .run()
        .ok()?; // inline transfers above the 6 MB cap fail deployment
    Some(outcome.summary)
}

fn main() {
    println!("Three-stage image pipeline on aws-like, end-to-end latency by");
    println!("payload size and inter-stage transport:\n");
    let mut table = TextTable::new(vec![
        "image size",
        "inline med",
        "inline p99",
        "storage med",
        "storage p99",
        "storage tmr",
    ]);
    for &bytes in &[100 * KB, MB, 4 * MB, 20 * MB] {
        let inline = run_pipeline(bytes, TransferMode::Inline);
        let storage =
            run_pipeline(bytes, TransferMode::Storage).expect("storage transfers have no size cap");
        let label =
            if bytes >= MB { format!("{}MB", bytes / MB) } else { format!("{}KB", bytes / KB) };
        table.row(vec![
            label,
            inline.as_ref().map_or("over cap".into(), |s| fmt_latency(s.median)),
            inline.as_ref().map_or("-".into(), |s| fmt_latency(s.tail)),
            fmt_latency(storage.median),
            fmt_latency(storage.tail),
            fmt_ratio(storage.tmr),
        ]);
    }
    println!("{}", table.render());
    println!("Take-aways (paper Obs 4): inline wins on predictability while it fits;");
    println!("past the request-size cap only storage works, and its slow mode shows");
    println!("up directly in the pipeline's p99.");
}
