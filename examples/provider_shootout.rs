//! Provider shoot-out: compare the three simulated clouds on the traffic
//! pattern *your* application cares about, across the paper's four factor
//! vectors (warm, cold, transfer, burst), and print a ranking per metric.
//!
//! ```bash
//! cargo run --release -p stellar-examples --bin provider_shootout
//! ```

use faas_sim::types::{TransferMode, MB};
use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stats::table::{fmt_latency, fmt_ratio, TextTable};
use stellar_core::protocols::{
    bursty_invocations, cold_invocations, transfer_chain, warm_invocations, BurstIat, ColdSetup,
};

const SAMPLES: u32 = 1000;

struct Row {
    metric: &'static str,
    values: Vec<(ProviderKind, f64)>,
    unit: &'static str,
}

fn main() {
    let mut rows = Vec::new();

    let mut warm_medians = Vec::new();
    let mut warm_tmrs = Vec::new();
    let mut cold_medians = Vec::new();
    let mut burst_p99s = Vec::new();
    for kind in ProviderKind::ALL {
        let warm = warm_invocations(config_for(kind), SAMPLES, 1).unwrap().summary;
        warm_medians.push((kind, warm.median));
        warm_tmrs.push((kind, warm.tmr));
        let cold = cold_invocations(config_for(kind), ColdSetup::baseline(), SAMPLES, 100, 2)
            .unwrap()
            .summary;
        cold_medians.push((kind, cold.median));
        let burst = bursty_invocations(config_for(kind), BurstIat::Short, 100, 0.0, 2000, 1, 3)
            .unwrap()
            .summary;
        burst_p99s.push((kind, burst.tail));
    }
    rows.push(Row { metric: "warm median", values: warm_medians, unit: "ms" });
    rows.push(Row { metric: "warm TMR", values: warm_tmrs, unit: "x" });
    rows.push(Row { metric: "cold median", values: cold_medians, unit: "ms" });
    rows.push(Row { metric: "burst100 p99", values: burst_p99s, unit: "ms" });

    // Data-plane comparison: 1 MB producer→consumer transfers.
    let mut inline = Vec::new();
    let mut storage_tmr = Vec::new();
    for kind in [ProviderKind::Aws, ProviderKind::Google] {
        let i = transfer_chain(config_for(kind), TransferMode::Inline, MB, SAMPLES, 4)
            .unwrap()
            .transfer_summary
            .unwrap();
        inline.push((kind, i.median));
        let s = transfer_chain(config_for(kind), TransferMode::Storage, MB, SAMPLES, 5)
            .unwrap()
            .transfer_summary
            .unwrap();
        storage_tmr.push((kind, s.tmr));
    }
    rows.push(Row { metric: "1MB inline median", values: inline, unit: "ms" });
    rows.push(Row { metric: "1MB storage TMR", values: storage_tmr, unit: "x" });

    let mut table = TextTable::new(vec!["metric", "aws", "google", "azure", "winner"]);
    for row in &rows {
        let get = |kind: ProviderKind| {
            row.values
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|&(_, v)| if row.unit == "x" { fmt_ratio(v) } else { fmt_latency(v) })
                .unwrap_or_else(|| "n/a".to_string())
        };
        let winner = row
            .values
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(k, _)| k.label())
            .unwrap_or("-");
        table.row(vec![
            row.metric.to_string(),
            get(ProviderKind::Aws),
            get(ProviderKind::Google),
            get(ProviderKind::Azure),
            winner.to_string(),
        ]);
    }
    println!("Provider shoot-out (lower is better):\n");
    println!("{}", table.render());
    println!("Paper's take: warm paths are uniformly fast (Obs 1); cold starts and");
    println!("storage transfers dominate the tail (Obs 2/4); burst behaviour separates");
    println!("the providers most (Obs 5-7).");
}
