//! # stellar-providers — calibrated cloud profiles
//!
//! Three [`faas_sim::ProviderConfig`]s modelling the serverless clouds the
//! paper studies:
//!
//! * [`profiles::aws_like`] — per-request scaling, fixed 10-min keep-alive,
//!   image-store caching, fast spawns;
//! * [`profiles::google_like`] — target-concurrency (≤4) scaling,
//!   boot/fetch overlap, paced spawns with adaptive batch boost;
//! * [`profiles::azure_like`] — periodic scale controller with deep
//!   queuing, degrading burst dispatch, slow container cold starts.
//!
//! The [`paper`] module collects every number the paper reports, used both
//! as calibration targets and as the "paper" column in benchmark output.
//!
//! ```
//! use providers::paper::ProviderKind;
//! use providers::profiles::config_for;
//!
//! for kind in ProviderKind::ALL {
//!     let cfg = config_for(kind);
//!     assert!(cfg.validate().is_ok());
//! }
//! ```

pub mod paper;
pub mod profiles;

pub use paper::ProviderKind;
pub use profiles::{aws_like, azure_like, config_for, google_like};
