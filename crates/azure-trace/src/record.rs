//! Per-function execution-time records, matching the schema of the public
//! Azure Functions trace (Shahrad et al., ATC'20) that the paper analyses
//! in §VII-B / Fig 10.
//!
//! The trace's duration table reports, per function, the distribution of
//! execution times as a set of percentiles (excluding cold-start delays).

use serde::{Deserialize, Serialize};

/// Execution-time percentiles of one function, milliseconds.
///
/// Field names mirror the public trace's columns (`percentile_Average_N`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDurationRecord {
    /// Hashed owner id.
    pub owner: String,
    /// Hashed app id.
    pub app: String,
    /// Hashed function id.
    pub function: String,
    /// Number of invocations aggregated.
    pub count: u64,
    /// Mean execution time, ms.
    pub average_ms: f64,
    /// Minimum (percentile 0), ms.
    pub p0: f64,
    /// 1st percentile, ms.
    pub p1: f64,
    /// 25th percentile, ms.
    pub p25: f64,
    /// Median, ms.
    pub p50: f64,
    /// 75th percentile, ms.
    pub p75: f64,
    /// 99th percentile, ms.
    pub p99: f64,
    /// Maximum (percentile 100), ms.
    pub p100: f64,
}

/// Duration class used by the paper's Fig 10 discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DurationClass {
    /// Median under one second.
    Short,
    /// Median between one and ten seconds.
    Medium,
    /// Median of ten seconds or more.
    Long,
}

impl FunctionDurationRecord {
    /// Tail-to-median ratio (p99 / p50), the paper's Fig 10 metric.
    pub fn tmr(&self) -> f64 {
        if self.p50 > 0.0 {
            self.p99 / self.p50
        } else {
            f64::INFINITY
        }
    }

    /// The record's duration class by median execution time.
    pub fn class(&self) -> DurationClass {
        if self.p50 < 1_000.0 {
            DurationClass::Short
        } else if self.p50 < 10_000.0 {
            DurationClass::Medium
        } else {
            DurationClass::Long
        }
    }

    /// Validates percentile monotonicity and positivity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err(format!("{}: zero invocation count", self.function));
        }
        let ps = [self.p0, self.p1, self.p25, self.p50, self.p75, self.p99, self.p100];
        for (i, &p) in ps.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(format!("{}: percentile {i} invalid: {p}", self.function));
            }
        }
        if ps.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("{}: percentiles not monotone: {ps:?}", self.function));
        }
        if self.average_ms < self.p0 || self.average_ms > self.p100 {
            return Err(format!(
                "{}: average {} outside [min, max]",
                self.function, self.average_ms
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(p50: f64, p99: f64) -> FunctionDurationRecord {
        FunctionDurationRecord {
            owner: "o".into(),
            app: "a".into(),
            function: "f".into(),
            count: 100,
            average_ms: p50,
            p0: p50 / 10.0,
            p1: p50 / 5.0,
            p25: p50 / 2.0,
            p50,
            p75: p50 * 1.5,
            p99,
            p100: p99 * 2.0,
        }
    }

    #[test]
    fn tmr_is_p99_over_median() {
        assert_eq!(record(100.0, 900.0).tmr(), 9.0);
        let zero = FunctionDurationRecord { p50: 0.0, ..record(100.0, 900.0) };
        assert!(zero.tmr().is_infinite());
    }

    #[test]
    fn classes_split_at_one_and_ten_seconds() {
        assert_eq!(record(500.0, 900.0).class(), DurationClass::Short);
        assert_eq!(record(5_000.0, 9_000.0).class(), DurationClass::Medium);
        assert_eq!(record(60_000.0, 90_000.0).class(), DurationClass::Long);
    }

    #[test]
    fn validation_accepts_good_record() {
        record(100.0, 900.0).validate().unwrap();
    }

    #[test]
    fn validation_rejects_non_monotone() {
        let mut r = record(100.0, 900.0);
        r.p75 = 5_000.0; // above p99
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_count_and_bad_average() {
        let mut r = record(100.0, 900.0);
        r.count = 0;
        assert!(r.validate().is_err());
        let mut r = record(100.0, 900.0);
        r.average_ms = 1e9;
        assert!(r.validate().is_err());
    }
}
