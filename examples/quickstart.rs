//! Quickstart: deploy one function to a simulated provider, drive warm
//! traffic at it, and read the latency statistics — the three-call core
//! of the STeLLAR API.
//!
//! ```bash
//! cargo run -p stellar-examples --bin quickstart
//! ```

use providers::profiles::aws_like;
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::Experiment;
use stellar_core::visualize::render_cdf;

fn main() {
    // 1. Describe the deployment (STeLLAR's static function configuration).
    let functions =
        StaticConfig { functions: vec![StaticFunction::python_zip("hello").with_replicas(2)] };

    // 2. Describe the workload (STeLLAR's runtime configuration): single
    //    invocations at the paper's short 3 s inter-arrival time, with one
    //    warm-up round so the cold start is excluded.
    let mut workload = RuntimeConfig::single(IatSpec::short(), 500);
    workload.warmup_rounds = 2;

    // 3. Deploy, drive and measure.
    let outcome = Experiment::new(aws_like())
        .functions(functions)
        .workload(workload)
        .seed(42)
        .run()
        .expect("experiment runs");

    println!("{}", render_cdf("warm invocations on aws-like", &outcome.result.latency_agg));
    println!("cold starts among measured samples: {:.1}%", outcome.result.cold_fraction() * 100.0);
    println!(
        "per-component medians of a typical request (ms): \
         propagation {:.1}, infra overhead {:.1}, execution {:.1}",
        outcome.result.completions[0].breakdown.prop_out_ms
            + outcome.result.completions[0].breakdown.prop_back_ms,
        outcome.result.completions[0].breakdown.infra_ms(),
        outcome.result.completions[0].breakdown.exec_ms,
    );
}
