//! The client: provider-agnostic load generation and measurement.
//!
//! Mirrors STeLLAR's client (§IV): invokes the endpoints produced by the
//! deployer in round-robin order at the configured inter-arrival time,
//! optionally issuing `burst_size` simultaneous requests per round, and
//! collects per-request latency samples plus the intra-function transfer
//! timestamps.

use faas_sim::cloud::CloudSim;
use faas_sim::request::{Completion, TransferSample};
use simkit::rng::Rng;
use simkit::time::SimTime;
use stats::sketch::{LatencyAgg, QuantileMode};

use crate::config::{IatSpec, RuntimeConfig};
use crate::deployer::Deployment;

/// How the client measures a run: which quantile machinery to use and
/// whether to retain per-request sample vectors.
///
/// The default (`Exact` + `keep_samples`) is the legacy behaviour every
/// figure pipeline relies on: full completion vectors, exact percentiles.
/// Large runs switch to [`QuantileMode::Sketch`] without `keep_samples`,
/// which streams completions through a [`LatencyAgg`] in bounded slices —
/// peak latency storage is the sketch, not a `Vec<f64>` of every request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureSpec {
    /// Quantile machinery for summaries.
    pub quantile: QuantileMode,
    /// Whether to retain per-completion vectors (required by the CDF,
    /// breakdown and figure pipelines).
    pub keep_samples: bool,
}

impl Default for MeasureSpec {
    fn default() -> Self {
        MeasureSpec { quantile: QuantileMode::Exact, keep_samples: true }
    }
}

impl MeasureSpec {
    /// Exact percentiles over retained samples (the default).
    pub fn exact() -> MeasureSpec {
        MeasureSpec::default()
    }

    /// Streaming sketch quantiles, samples not retained — O(sketch)
    /// memory however many invocations run.
    pub fn sketch() -> MeasureSpec {
        MeasureSpec { quantile: QuantileMode::Sketch, keep_samples: false }
    }

    /// Overrides sample retention (e.g. sketch quantiles but keep vectors
    /// for a CDF plot).
    pub fn with_keep_samples(mut self, keep: bool) -> MeasureSpec {
        self.keep_samples = keep;
        self
    }

    /// Validates the combination: exact quantiles require the samples
    /// they are computed from.
    pub fn validate(&self) -> Result<(), String> {
        if self.quantile == QuantileMode::Exact && !self.keep_samples {
            return Err("exact quantiles require keep_samples (use sketch mode to drop samples)"
                .to_string());
        }
        Ok(())
    }
}

/// Everything the client measured in one run.
///
/// Sample vectors (`completions`, `warmup_completions`, `transfers`) are
/// populated only when the run's [`MeasureSpec`] keeps samples; the
/// aggregate fields are always populated and are the only O(1)-per-run
/// representation on streaming runs.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completions from measured rounds, in completion order (empty on
    /// streaming runs).
    pub completions: Vec<Completion>,
    /// Completions from warm-up rounds (excluded from statistics; empty on
    /// streaming runs).
    pub warmup_completions: Vec<Completion>,
    /// Cross-function transfer samples from measured rounds (empty on
    /// streaming runs).
    pub transfers: Vec<TransferSample>,
    /// Streaming aggregate over measured end-to-end latencies, ms.
    pub latency_agg: LatencyAgg,
    /// Streaming aggregate over measured transfer times, ms.
    pub transfer_agg: LatencyAgg,
    /// Measured completions observed (equals `completions.len()` when
    /// samples are kept).
    pub measured_count: u64,
    /// Warm-up completions observed.
    pub warmup_count: u64,
    /// Measured completions that waited on a cold start.
    pub cold_count: u64,
    /// Wall-clock (simulated) duration of the whole run.
    pub duration: SimTime,
}

impl RunResult {
    /// End-to-end latencies of measured completions, ms. Empty on
    /// streaming runs — use [`RunResult::latency_agg`] there.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.completions.iter().map(Completion::latency_ms).collect()
    }

    /// Effective transfer times of measured transfer samples, ms. Empty on
    /// streaming runs — use [`RunResult::transfer_agg`] there.
    pub fn transfer_ms(&self) -> Vec<f64> {
        self.transfers.iter().map(TransferSample::transfer_ms).collect()
    }

    /// Fraction of measured completions that waited on a cold start.
    pub fn cold_fraction(&self) -> f64 {
        if self.measured_count == 0 {
            return 0.0;
        }
        self.cold_count as f64 / self.measured_count as f64
    }
}

/// Errors from a client run.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The runtime configuration failed validation.
    InvalidConfig(String),
    /// The deployment has no endpoints.
    EmptyDeployment,
    /// Not all requests completed within the simulation horizon.
    IncompleteRun {
        /// Completions received.
        received: usize,
        /// Completions expected.
        expected: usize,
        /// The completions that did arrive, for post-mortem debugging.
        completions: Vec<Completion>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::InvalidConfig(msg) => write!(f, "invalid runtime config: {msg}"),
            ClientError::EmptyDeployment => write!(f, "deployment has no endpoints"),
            ClientError::IncompleteRun { received, expected, .. } => {
                write!(f, "run incomplete: {received}/{expected} completions")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Samples the next inter-arrival gap.
fn sample_iat_ms(iat: &IatSpec, rng: &mut Rng) -> f64 {
    match iat {
        IatSpec::Fixed { ms } => *ms,
        IatSpec::Exponential { mean_ms } => -mean_ms * rng.next_f64_open().ln(),
        IatSpec::Uniform { lo_ms, hi_ms } => rng.range_f64(*lo_ms, *hi_ms),
    }
}

/// Drives the workload described by `cfg` against `deployment` on
/// `cloud`, starting at the cloud's current time.
///
/// Rounds are issued at the configured IAT; each round sends
/// `cfg.burst_size` simultaneous requests to one endpoint, cycling through
/// endpoints round-robin (§IV/§V). The first `cfg.warmup_rounds` rounds
/// are collected separately and excluded from statistics. Requests are
/// tagged with their round number.
///
/// # Errors
///
/// Returns [`ClientError`] for invalid configs, empty deployments, or if
/// requests fail to complete within a generous horizon (which would
/// indicate a simulator bug).
pub fn run_workload(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    seed: u64,
) -> Result<RunResult, ClientError> {
    run_workload_with(cloud, deployment, cfg, seed, &MeasureSpec::default())
}

/// [`run_workload`] with an explicit [`MeasureSpec`].
///
/// With `keep_samples` (the default) this is the legacy path: run to the
/// horizon, drain everything, partition, retain full vectors. Without it,
/// the simulation is advanced in bounded time slices and each slice's
/// completions are folded into the streaming aggregates and discarded, so
/// peak latency storage is one slice's completions plus the sketch — not
/// the whole run. Both paths process the identical event sequence (the
/// engine's `run_until` is prefix-stable), so a streaming run aggregates
/// exactly the samples the legacy run would have collected, in the same
/// order.
///
/// # Errors
///
/// Returns [`ClientError`] for invalid configs or specs, empty
/// deployments, or if requests fail to complete within a generous horizon
/// (which would indicate a simulator bug). On streaming runs the
/// [`ClientError::IncompleteRun`] post-mortem vector only holds
/// completions from the final slice.
pub fn run_workload_with(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    seed: u64,
    measure: &MeasureSpec,
) -> Result<RunResult, ClientError> {
    cfg.validate().map_err(ClientError::InvalidConfig)?;
    measure.validate().map_err(ClientError::InvalidConfig)?;
    if deployment.is_empty() {
        return Err(ClientError::EmptyDeployment);
    }
    let mut rng = Rng::seed_from(seed).fork("client-iat");
    let start = cloud.now();
    let total_rounds = cfg.warmup_rounds + cfg.measured_rounds();
    let expected = (total_rounds * cfg.burst_size) as usize;
    if measure.keep_samples {
        cloud.reserve_requests(expected);
    } else {
        // Streaming runs drain per slice; pre-sizing the completion
        // buffer for the full run would be the O(n) allocation this mode
        // exists to avoid.
        cloud.reserve_submissions(expected);
    }

    let mut t = start;
    let mut last_issue = start;
    for round in 0..total_rounds {
        let endpoint = &deployment.endpoints[round as usize % deployment.len()];
        for _ in 0..cfg.burst_size {
            cloud.submit(endpoint.function, round as u64, t);
        }
        last_issue = t;
        t += SimTime::from_millis(sample_iat_ms(&cfg.iat, &mut rng));
    }

    // Generous completion horizon: bursts can queue for minutes on slow
    // scale-out policies (Fig 9 observes ~39 s; chains and 1 GB transfers
    // take tens of seconds too).
    let mut horizon = last_issue + SimTime::from_secs(300.0);
    let warmup_tag = cfg.warmup_rounds as u64;
    let mut latency_agg = LatencyAgg::with_mode(measure.quantile);
    let mut transfer_agg = LatencyAgg::with_mode(measure.quantile);

    if measure.keep_samples {
        let mut completions = Vec::with_capacity(expected);
        let mut transfers = Vec::new();
        for _ in 0..20 {
            cloud.run_until(horizon);
            // Drain in place: the simulator appends into our buffers, so
            // the loop allocates nothing once the buffers reach steady
            // size.
            cloud.drain_completions_into(&mut completions);
            cloud.drain_transfers_into(&mut transfers);
            if completions.len() >= expected {
                break;
            }
            horizon += SimTime::from_secs(600.0);
        }
        if completions.len() < expected {
            return Err(ClientError::IncompleteRun {
                received: completions.len(),
                expected,
                completions,
            });
        }

        let (warmup, measured): (Vec<Completion>, Vec<Completion>) =
            completions.into_iter().partition(|c| c.tag < warmup_tag);
        let transfers: Vec<TransferSample> =
            transfers.into_iter().filter(|tr| tr.parent_tag >= warmup_tag).collect();
        let mut cold_count = 0u64;
        for c in &measured {
            if c.cold {
                cold_count += 1;
            }
            latency_agg.record(c.latency_ms());
        }
        for tr in &transfers {
            transfer_agg.record(tr.transfer_ms());
        }
        Ok(RunResult {
            measured_count: measured.len() as u64,
            warmup_count: warmup.len() as u64,
            cold_count,
            completions: measured,
            warmup_completions: warmup,
            transfers,
            latency_agg,
            transfer_agg,
            duration: cloud.now() - start,
        })
    } else {
        // Slice width: ~256 slices across the nominal horizon, clamped to
        // [1 s, 60 s] of simulated time. Slicing only bounds how many
        // completions accumulate between drains; it does not change what
        // the simulation computes.
        let span = horizon.saturating_sub(start);
        let slice =
            SimTime::from_nanos((span.as_nanos() / 256).clamp(1_000_000_000, 60_000_000_000));
        let mut comp_buf: Vec<Completion> = Vec::new();
        let mut trans_buf: Vec<TransferSample> = Vec::new();
        let mut received = 0usize;
        let mut measured_count = 0u64;
        let mut warmup_count = 0u64;
        let mut cold_count = 0u64;
        'drive: for _ in 0..20 {
            while cloud.now() < horizon {
                let next = (cloud.now() + slice).min(horizon);
                cloud.run_until(next);
                cloud.drain_completions_into(&mut comp_buf);
                cloud.drain_transfers_into(&mut trans_buf);
                received += comp_buf.len();
                for c in comp_buf.drain(..) {
                    if c.tag < warmup_tag {
                        warmup_count += 1;
                    } else {
                        measured_count += 1;
                        if c.cold {
                            cold_count += 1;
                        }
                        latency_agg.record(c.latency_ms());
                    }
                }
                for tr in trans_buf.drain(..) {
                    if tr.parent_tag >= warmup_tag {
                        transfer_agg.record(tr.transfer_ms());
                    }
                }
                if received >= expected {
                    break 'drive;
                }
            }
            horizon += SimTime::from_secs(600.0);
        }
        if received < expected {
            return Err(ClientError::IncompleteRun { received, expected, completions: Vec::new() });
        }
        Ok(RunResult {
            completions: Vec::new(),
            warmup_completions: Vec::new(),
            transfers: Vec::new(),
            latency_agg,
            transfer_agg,
            measured_count,
            warmup_count,
            cold_count,
            duration: cloud.now() - start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChainConfig, StaticConfig, StaticFunction};
    use crate::deployer::deploy;
    use faas_sim::testutil::test_provider;
    use faas_sim::types::TransferMode;

    fn setup(static_cfg: &StaticConfig, runtime_cfg: &RuntimeConfig) -> (CloudSim, Deployment) {
        let mut cloud = CloudSim::new(test_provider(), 7);
        let d = deploy(&mut cloud, static_cfg, runtime_cfg).unwrap();
        (cloud, d)
    }

    #[test]
    fn collects_exactly_the_requested_samples() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 50);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 50);
        assert!(result.warmup_completions.is_empty());
        assert_eq!(result.latencies_ms().len(), 50);
    }

    #[test]
    fn warmup_rounds_are_partitioned_out() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 20);
        cfg.warmup_rounds = 5;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 20);
        assert_eq!(result.warmup_completions.len(), 5);
        // The cold start happened in warm-up; measured samples are warm.
        assert_eq!(result.cold_fraction(), 0.0);
    }

    #[test]
    fn bursts_issue_simultaneous_requests() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 10_000.0 }, 100);
        cfg.burst_size = 50;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 100);
        // Two rounds: tags 0 and 1, 50 requests each.
        let round0 = result.completions.iter().filter(|c| c.tag == 0).count();
        assert_eq!(round0, 50);
    }

    #[test]
    fn round_robin_spreads_rounds_over_endpoints() {
        let static_cfg =
            StaticConfig { functions: vec![StaticFunction::python_zip("f").with_replicas(4)] };
        let cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 100.0 }, 8);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        // 8 rounds over 4 endpoints: each function invoked exactly twice.
        for e in &d.endpoints {
            let count = result.completions.iter().filter(|c| c.function == e.function).count();
            assert_eq!(count, 2, "endpoint {}", e.name);
        }
    }

    #[test]
    fn chain_transfers_are_collected() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 10);
        cfg.warmup_rounds = 2;
        cfg.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Storage, payload_bytes: 1_000_000 });
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 10);
        assert_eq!(result.transfers.len(), 10, "one transfer per measured round");
        assert!(result.transfer_ms().iter().all(|&ms| ms > 0.0));
    }

    #[test]
    fn empty_deployment_is_an_error() {
        let mut cloud = CloudSim::new(test_provider(), 1);
        let cfg = RuntimeConfig::single(IatSpec::short(), 10);
        let d = Deployment { endpoints: vec![] };
        assert_eq!(
            run_workload(&mut cloud, &d, &cfg, 1).unwrap_err(),
            ClientError::EmptyDeployment
        );
    }

    #[test]
    fn poisson_iat_works() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 500.0 }, 30);
        cfg.warmup_rounds = 1;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 30);
    }

    #[test]
    fn streaming_sketch_matches_legacy_run() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 50.0 }, 400);
        cfg.warmup_rounds = 10;
        let (mut cloud_a, d_a) = setup(&static_cfg, &cfg);
        let legacy = run_workload(&mut cloud_a, &d_a, &cfg, 9).unwrap();
        let (mut cloud_b, d_b) = setup(&static_cfg, &cfg);
        let streaming =
            run_workload_with(&mut cloud_b, &d_b, &cfg, 9, &MeasureSpec::sketch()).unwrap();

        assert!(streaming.completions.is_empty(), "streaming keeps no samples");
        assert_eq!(streaming.measured_count, legacy.completions.len() as u64);
        assert_eq!(streaming.warmup_count, legacy.warmup_completions.len() as u64);
        assert_eq!(streaming.cold_fraction(), legacy.cold_fraction());
        // Both paths aggregate the identical completion sequence, so the
        // moment sums agree bit for bit.
        let mut agg = streaming.latency_agg.clone();
        assert_eq!(agg.count(), 400);
        assert_eq!(agg.mean(), {
            let lat = legacy.latencies_ms();
            lat.iter().sum::<f64>() / lat.len() as f64
        });
        // Below the sketch threshold the quantiles are exact too.
        assert_eq!(agg.quantile(0.5), stats::percentile(&legacy.latencies_ms(), 0.5));
    }

    #[test]
    fn streaming_transfers_are_aggregated() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 10);
        cfg.warmup_rounds = 2;
        cfg.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Storage, payload_bytes: 1_000_000 });
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload_with(&mut cloud, &d, &cfg, 1, &MeasureSpec::sketch()).unwrap();
        assert!(result.transfers.is_empty());
        assert_eq!(result.transfer_agg.count(), 10, "one transfer per measured round");
        let mut agg = result.transfer_agg.clone();
        assert!(agg.quantile(0.5) > 0.0);
    }

    #[test]
    fn exact_mode_without_samples_is_rejected() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::short(), 10);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let spec = MeasureSpec::exact().with_keep_samples(false);
        let err = run_workload_with(&mut cloud, &d, &cfg, 1, &spec).unwrap_err();
        assert!(matches!(err, ClientError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 200.0 }, 25);
        let run = |seed: u64| {
            let (mut cloud, d) = setup(&static_cfg, &cfg);
            run_workload(&mut cloud, &d, &cfg, seed).unwrap().latencies_ms()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
