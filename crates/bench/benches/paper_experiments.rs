//! Criterion benches: one per paper artifact.
//!
//! Each bench runs the corresponding experiment end to end (at a reduced
//! sample count so `cargo bench` stays minutes, not hours) and reports the
//! simulation throughput. The *scientific* output — paper-vs-measured
//! tables — is printed once per bench via the experiment's `report()`.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::experiments;

/// Reduced per-configuration sample count for benchmarking runs.
const BENCH_SAMPLES: u32 = 300;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group
        .bench_function("fig3_warm_cold", |b| b.iter(|| experiments::fig3::measure(BENCH_SAMPLES)));
    println!("{}", experiments::fig3::measure(BENCH_SAMPLES).report().render());

    group.bench_function("fig4_image_size", |b| {
        b.iter(|| experiments::fig4::measure(BENCH_SAMPLES))
    });
    println!("{}", experiments::fig4::measure(BENCH_SAMPLES).report().render());

    group.bench_function("fig5_runtime_deployment", |b| {
        b.iter(|| experiments::fig5::measure(BENCH_SAMPLES))
    });
    println!("{}", experiments::fig5::measure(BENCH_SAMPLES).report().render());

    group.bench_function("fig6_inline_transfers", |b| {
        b.iter(|| experiments::fig6::measure(BENCH_SAMPLES))
    });
    println!("{}", experiments::fig6::measure(BENCH_SAMPLES).report().render());

    group.bench_function("fig7_storage_transfers", |b| {
        b.iter(|| experiments::fig7::measure(BENCH_SAMPLES))
    });
    println!("{}", experiments::fig7::measure(BENCH_SAMPLES).report().render());

    group.bench_function("fig8_bursts", |b| b.iter(|| experiments::fig8::measure(BENCH_SAMPLES)));
    println!("{}", experiments::fig8::measure(BENCH_SAMPLES).report().render());

    group.bench_function("fig9_scheduling_policy", |b| {
        b.iter(|| experiments::fig9::measure(BENCH_SAMPLES))
    });
    println!("{}", experiments::fig9::measure(BENCH_SAMPLES).report().render());

    group.bench_function("table1_factor_metrics", |b| {
        b.iter(|| experiments::table1::measure(BENCH_SAMPLES))
    });
    println!("{}", experiments::table1::measure(BENCH_SAMPLES).report().render());

    group.bench_function("fig10_trace_tmr", |b| b.iter(|| experiments::fig10::measure(10_000)));
    println!("{}", experiments::fig10::measure(10_000).report().render());

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
