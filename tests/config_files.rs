//! Integration: the file-driven configuration path — JSON documents in,
//! experiments out — mirroring how STeLLAR users drive the tool (§IV).

use faas_sim::cloud::CloudSim;
use providers::profiles::{aws_like, azure_like, google_like};
use stellar_core::client::run_workload;
use stellar_core::config::{RuntimeConfig, StaticConfig};
use stellar_core::deployer::deploy;

const STATIC_JSON: &str = r#"{
  "functions": [
    {
      "name": "api-frontend",
      "runtime": "python3",
      "deployment": "zip",
      "memory_mb": 2048,
      "replicas": 4
    },
    {
      "name": "thumbnailer",
      "runtime": "go",
      "deployment": "container",
      "memory_mb": 1024,
      "extra_image_mb": 10.0
    }
  ]
}"#;

const RUNTIME_JSON: &str = r#"{
  "iat": { "kind": "fixed", "ms": 3000.0 },
  "burst_size": 1,
  "samples": 60,
  "warmup_rounds": 5
}"#;

const CHAIN_JSON: &str = r#"{
  "iat": { "kind": "exponential", "mean_ms": 1500.0 },
  "samples": 40,
  "warmup_rounds": 2,
  "chain": { "length": 2, "mode": "inline", "payload_bytes": 500000 }
}"#;

#[test]
fn json_configs_drive_a_full_run() {
    let static_cfg = StaticConfig::from_json(STATIC_JSON).unwrap();
    let runtime_cfg = RuntimeConfig::from_json(RUNTIME_JSON).unwrap();
    let mut cloud = CloudSim::new(aws_like(), 1);
    let deployment = deploy(&mut cloud, &static_cfg, &runtime_cfg).unwrap();
    assert_eq!(deployment.len(), 5, "4 replicas + 1 thumbnailer");
    assert!(deployment.endpoints[0].url.contains("aws-like"));
    let result = run_workload(&mut cloud, &deployment, &runtime_cfg, 1).unwrap();
    assert_eq!(result.completions.len(), 60);
    assert_eq!(result.warmup_completions.len(), 5);
}

#[test]
fn chain_json_round_trips_and_runs() {
    let runtime_cfg = RuntimeConfig::from_json(CHAIN_JSON).unwrap();
    // Round-trip through to_json.
    let again = RuntimeConfig::from_json(&runtime_cfg.to_json()).unwrap();
    assert_eq!(runtime_cfg, again);

    let static_cfg = StaticConfig::from_json(
        r#"{"functions": [{"name": "p", "runtime": "go", "deployment": "zip", "memory_mb": 2048}]}"#,
    )
    .unwrap();
    let mut cloud = CloudSim::new(google_like(), 2);
    let deployment = deploy(&mut cloud, &static_cfg, &runtime_cfg).unwrap();
    let result = run_workload(&mut cloud, &deployment, &runtime_cfg, 2).unwrap();
    assert_eq!(result.transfers.len(), 40);
}

#[test]
fn provider_profiles_serialise_as_config_files() {
    // Profiles themselves are serde documents: a user can dump, edit and
    // reload one — the simulator-side analogue of STeLLAR's provider
    // plugins being configuration-driven.
    for cfg in [aws_like(), google_like(), azure_like()] {
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: faas_sim::config::ProviderConfig = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(cfg.name, back.name);
        // An edited copy still validates and runs.
        let mut edited = back;
        edited.network.max_inline_payload = 1_000_000;
        edited.validate().unwrap();
        let mut cloud = CloudSim::new(edited, 3);
        let f = cloud.deploy(faas_sim::spec::FunctionSpec::builder("probe").build()).unwrap();
        cloud.submit(f, 0, simkit::time::SimTime::ZERO);
        cloud.run_until(simkit::time::SimTime::from_secs(60.0));
        assert_eq!(cloud.drain_completions().len(), 1);
    }
}

#[test]
fn malformed_documents_are_rejected_with_context() {
    assert!(StaticConfig::from_json("{}").is_err());
    assert!(StaticConfig::from_json(r#"{"functions": []}"#).is_err());
    let err = RuntimeConfig::from_json(r#"{"iat": {"kind": "fixed", "ms": -5.0}, "samples": 1}"#)
        .unwrap_err();
    assert!(err.contains("positive"), "{err}");
    let err = RuntimeConfig::from_json(r#"{"iat": {"kind": "fixed", "ms": 10.0}, "samples": 0}"#)
        .unwrap_err();
    assert!(err.contains("samples"), "{err}");
}
