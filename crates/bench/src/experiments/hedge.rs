//! The hedging frontier: tail improvement bought per unit of wasted
//! work. Request hedging is the classic tail-tolerance technique for
//! exactly the serverless pathologies the paper measures — cold starts
//! and burst queueing inflate a small fraction of requests by an order
//! of magnitude, so re-issuing a straggler to a (likely idle) second
//! instance trades duplicate compute for a shorter tail. This artifact
//! sweeps hedge aggressiveness (quantile threshold q ∈ {0.90, 0.95,
//! 0.99}) against a no-policy baseline, per provider, under both a
//! Poisson stream and the rate-matched MMPP burst train of
//! [`crate::experiments::mmpp`], and reports p50/p99/p999 next to the
//! hedge-fire rate and the wasted-work fraction: the frontier a tail
//! SLO buys along.

use policy::{PolicySpec, ThresholdSpec};
use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::{Experiment, Outcome};

use crate::experiments::mmpp::Shape;
use crate::report::{Report, BASE_SEED};

/// Function execution time, ms — matched to the MMPP amplification
/// experiment so the burst regime carries over.
pub const EXEC_MS: f64 = 100.0;

/// The policy axis: baseline plus three hedge aggressiveness levels.
/// Quantile thresholds are estimated online from the run's own winner
/// latencies, exactly as a real tail-tolerant client would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgePolicy {
    /// No policy: every arrival is a single attempt.
    None,
    /// Hedge once when an attempt outlives the observed p90.
    P90,
    /// Hedge once past the observed p95.
    P95,
    /// Hedge once past the observed p99.
    P99,
}

impl HedgePolicy {
    /// All policies, baseline first.
    pub const ALL: [HedgePolicy; 4] =
        [HedgePolicy::None, HedgePolicy::P90, HedgePolicy::P95, HedgePolicy::P99];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            HedgePolicy::None => "none",
            HedgePolicy::P90 => "hedge-p90",
            HedgePolicy::P95 => "hedge-p95",
            HedgePolicy::P99 => "hedge-p99",
        }
    }

    /// The policy spec, `None` for the baseline.
    pub fn spec(self) -> Option<PolicySpec> {
        let q = match self {
            HedgePolicy::None => return None,
            HedgePolicy::P90 => 0.90,
            HedgePolicy::P95 => 0.95,
            HedgePolicy::P99 => 0.99,
        };
        Some(PolicySpec::Hedge { threshold: ThresholdSpec::Quantile { q }, max_hedges: 1 })
    }
}

/// Measured data: one outcome per (provider, arrival shape, policy).
#[derive(Debug)]
pub struct HedgeFrontier {
    /// The grid cells, provider-major, shape-then-policy minor.
    pub cells: Vec<(ProviderKind, Shape, HedgePolicy, Outcome)>,
}

fn run_cell(kind: ProviderKind, shape: Shape, policy: HedgePolicy, samples: u32) -> Outcome {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), samples);
    runtime.warmup_rounds = 5;
    runtime.exec_ms = EXEC_MS;
    let mut runtime = runtime.with_workload(shape.spec());
    runtime.policy = policy.spec();
    Experiment::new(config_for(kind))
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("hedge")] })
        .workload(runtime)
        // Same seed across the policy axis: every policy faces the same
        // arrival train, so differences are the policy's doing.
        .seed(BASE_SEED + 110 + shape as u64)
        .run()
        .expect("hedge frontier run")
}

/// Runs the provider × shape × policy grid in parallel.
pub fn measure(samples: u32) -> HedgeFrontier {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .flat_map(|&kind| Shape::ALL.into_iter().map(move |s| (kind, s)))
            .flat_map(|(kind, shape)| HedgePolicy::ALL.into_iter().map(move |p| (kind, shape, p)))
            .map(|(kind, shape, policy)| {
                scope.spawn(move |_| (kind, shape, policy, run_cell(kind, shape, policy, samples)))
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    HedgeFrontier { cells }
}

impl HedgeFrontier {
    /// The outcome for one cell.
    pub fn cell(&self, kind: ProviderKind, shape: Shape, policy: HedgePolicy) -> Option<&Outcome> {
        self.cells
            .iter()
            .find(|(k, s, p, _)| *k == kind && *s == shape && *p == policy)
            .map(|(_, _, _, o)| o)
    }

    /// p99 under `policy` relative to the no-policy baseline (same
    /// provider, same arrival train): below 1.0 means the hedge helped.
    pub fn p99_ratio(&self, kind: ProviderKind, shape: Shape, policy: HedgePolicy) -> Option<f64> {
        let hedged = self.cell(kind, shape, policy)?.summary.tail;
        let base = self.cell(kind, shape, HedgePolicy::None)?.summary.tail;
        (base > 0.0).then(|| hedged / base)
    }

    /// Renders the frontier table plus per-provider MMPP headlines.
    pub fn report(&self) -> Report {
        let mut table = stats::table::TextTable::new(vec![
            "series",
            "p50_ms",
            "p99_ms",
            "p999_ms",
            "hedges/req",
            "wasted%",
            "dups",
            "abandoned",
        ]);
        for (kind, shape, policy, outcome) in &self.cells {
            let s = &outcome.summary;
            // Same quantile engine as every other figure (exact here, the
            // cells retain their samples and stay below the threshold).
            let p999 = outcome.result.latency_agg.clone().quantile(0.999);
            let (rate, wasted, dups, abandoned) = match &outcome.result.policy {
                Some(p) => (
                    format!("{:.3}", p.hedge_fire_rate()),
                    format!("{:.1}", p.wasted_fraction() * 100.0),
                    format!("{}", p.duplicate_successes),
                    format!("{}", p.abandoned),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            table.row(vec![
                format!("{kind} {} {}", shape.label(), policy.label()),
                stats::table::fmt_latency(s.median),
                stats::table::fmt_latency(s.tail),
                stats::table::fmt_latency(p999),
                rate,
                wasted,
                dups,
                abandoned,
            ]);
        }
        let mut body = table.render();
        body.push('\n');
        for kind in ProviderKind::ALL {
            if let (Some(ratio), Some(outcome)) = (
                self.p99_ratio(kind, Shape::Mmpp, HedgePolicy::P95),
                self.cell(kind, Shape::Mmpp, HedgePolicy::P95),
            ) {
                let p = outcome.result.policy.as_ref().expect("policy cell carries stats");
                body.push_str(&format!(
                    "{kind}: hedge-p95 under MMPP bursts — p99 {:.0}% of baseline at \
                     {:.1}% wasted work ({:.1} hedges per 100 requests)\n",
                    ratio * 100.0,
                    p.wasted_fraction() * 100.0,
                    p.hedge_fire_rate() * 100.0,
                ));
            }
        }
        Report {
            id: "hedge",
            title: "Hedging frontier: tail latency vs wasted work per provider",
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_reports_policy_costs_and_structure() {
        let data = measure(600);
        assert_eq!(data.cells.len(), 3 * 2 * 4, "provider x shape x policy grid");
        for kind in ProviderKind::ALL {
            for shape in Shape::ALL {
                let base = data.cell(kind, shape, HedgePolicy::None).unwrap();
                assert!(base.result.policy.is_none(), "baseline carries no policy stats");
                for policy in [HedgePolicy::P90, HedgePolicy::P95, HedgePolicy::P99] {
                    let cell = data.cell(kind, shape, policy).unwrap();
                    let p = cell.result.policy.as_ref().expect("hedged cell has stats");
                    assert_eq!(p.logical, 605, "{kind} {shape:?} {policy:?}");
                    assert!(
                        p.extra_launches <= p.logical,
                        "single hedge caps extras at one per request"
                    );
                    let wasted = p.wasted_fraction();
                    assert!((0.0..1.0).contains(&wasted), "{kind} {shape:?} wasted {wasted}");
                    // Same arrival train: hedging must not abandon work.
                    assert_eq!(p.abandoned, 0);
                    assert_eq!(cell.summary.count, base.summary.count, "one sample per arrival");
                }
                // A more aggressive threshold hedges at least as often.
                let p90 = data.cell(kind, shape, HedgePolicy::P90).unwrap();
                let p99 = data.cell(kind, shape, HedgePolicy::P99).unwrap();
                let (r90, r99) = (
                    p90.result.policy.as_ref().unwrap().hedge_fire_rate(),
                    p99.result.policy.as_ref().unwrap().hedge_fire_rate(),
                );
                assert!(r90 >= r99, "{kind} {shape:?}: p90 rate {r90} < p99 rate {r99}");
            }
        }
        let report = data.report().render();
        assert!(report.contains("hedge-p95"), "{report}");
        assert!(report.contains("wasted work"), "{report}");
    }
}
