//! Fig 10 analysis: TMR CDFs over per-function execution times.

use stats::cdf::Cdf;

use crate::record::{DurationClass, FunctionDurationRecord};

/// Result of the paper's §VII-B analysis.
#[derive(Debug, Clone)]
pub struct TmrAnalysis {
    /// TMR CDF over all functions.
    pub all: Cdf,
    /// TMR CDF over sub-second functions (if any).
    pub short: Option<Cdf>,
    /// TMR CDF over 1–10 s functions (if any).
    pub medium: Option<Cdf>,
    /// TMR CDF over ≥10 s functions (if any).
    pub long: Option<Cdf>,
}

impl TmrAnalysis {
    /// Analyses a trace.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn compute(records: &[FunctionDurationRecord]) -> TmrAnalysis {
        assert!(!records.is_empty(), "cannot analyse an empty trace");
        let tmrs_of = |class: Option<DurationClass>| -> Vec<f64> {
            records
                .iter()
                .filter(|r| class.is_none_or(|c| r.class() == c))
                .map(FunctionDurationRecord::tmr)
                .filter(|t| t.is_finite())
                .collect()
        };
        let make = |class| {
            let tmrs = tmrs_of(Some(class));
            (!tmrs.is_empty()).then(|| Cdf::from_samples(&tmrs))
        };
        TmrAnalysis {
            all: Cdf::from_samples(&tmrs_of(None)),
            short: make(DurationClass::Short),
            medium: make(DurationClass::Medium),
            long: make(DurationClass::Long),
        }
    }

    /// Fraction of all functions with TMR below `threshold` (the paper
    /// uses 10).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        self.all.eval(threshold)
    }

    /// Fraction of functions of `class` with TMR below `threshold`;
    /// `None` if the class is empty.
    pub fn class_fraction_below(&self, class: DurationClass, threshold: f64) -> Option<f64> {
        let cdf = match class {
            DurationClass::Short => self.short.as_ref(),
            DurationClass::Medium => self.medium.as_ref(),
            DurationClass::Long => self.long.as_ref(),
        };
        cdf.map(|c| c.eval(threshold))
    }

    /// The Fig 10 plot: `(tmr, cumulative fraction)` points for the
    /// all-functions CDF.
    pub fn fig10_points(&self, n: usize) -> Vec<(f64, f64)> {
        self.all.points(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn paper_fig10_facts_hold_on_synthetic_trace() {
        let records = generate(&SynthConfig::paper_defaults(30_000), 42);
        let analysis = TmrAnalysis::compute(&records);
        // §VII-B: ~70% of all functions have TMR < 10.
        let all = analysis.fraction_below(10.0);
        assert!((all - 0.70).abs() < 0.05, "all-function fraction {all}");
        // ~60% of sub-second functions...
        let short = analysis.class_fraction_below(DurationClass::Short, 10.0).unwrap();
        assert!((short - 0.60).abs() < 0.06, "short fraction {short}");
        // ...and ~90% of >10 s functions.
        let long = analysis.class_fraction_below(DurationClass::Long, 10.0).unwrap();
        assert!((long - 0.90).abs() < 0.05, "long fraction {long}");
        // Short functions are noisier than long ones.
        assert!(short < long);
    }

    #[test]
    fn fig10_points_are_monotone() {
        let records = generate(&SynthConfig::paper_defaults(5_000), 1);
        let analysis = TmrAnalysis::compute(&records);
        let pts = analysis.fig10_points(21);
        assert_eq!(pts.len(), 21);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        assert!(pts[0].0 >= 1.0, "TMR is at least 1");
    }

    #[test]
    fn empty_class_yields_none() {
        let records = generate(&SynthConfig::paper_defaults(50), 2);
        let short_only: Vec<_> =
            records.into_iter().filter(|r| r.class() == DurationClass::Short).collect();
        let analysis = TmrAnalysis::compute(&short_only);
        assert!(analysis.class_fraction_below(DurationClass::Long, 10.0).is_none());
        assert!(analysis.class_fraction_below(DurationClass::Short, 10.0).is_some());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        TmrAnalysis::compute(&[]);
    }
}
