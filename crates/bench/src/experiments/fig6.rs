//! Fig 6: inline data-transfer latency as a function of payload size
//! (§VI-C1). AWS and Google only (Azure had no Go runtime in the paper).

use faas_sim::types::{TransferMode, KB, MB};
use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::protocols::transfer_chain;

use crate::report::{comparison_table, Comparison, Report, BASE_SEED};

/// Payload sweep (bytes): 1 KB to 4 MB as plotted, capped by each
/// provider's request size limit.
pub const SIZES: [u64; 5] = [KB, 10 * KB, 100 * KB, MB, 4 * MB];

/// Providers swept. The paper only measures AWS and Google (Azure had no
/// Go runtime, §VI-C fn.6); the azure-like rows are simulator predictions
/// and render with `-` in the paper columns.
pub const PROVIDERS: [ProviderKind; 3] =
    [ProviderKind::Aws, ProviderKind::Google, ProviderKind::Azure];

/// The providers with paper-reported numbers.
pub const PAPER_PROVIDERS: [ProviderKind; 2] = [ProviderKind::Aws, ProviderKind::Google];

/// Measured data: `(provider, payload_bytes, transfer samples ms)`.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// One cell per (provider, size).
    pub cells: Vec<(ProviderKind, u64, Vec<f64>)>,
}

/// Runs the sweep in parallel.
pub fn measure(samples: u32) -> Fig6 {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = PROVIDERS
            .iter()
            .flat_map(|&kind| SIZES.iter().map(move |&bytes| (kind, bytes)))
            .map(|(kind, bytes)| {
                scope.spawn(move |_| {
                    let out = transfer_chain(
                        config_for(kind),
                        TransferMode::Inline,
                        bytes,
                        samples,
                        BASE_SEED + 20,
                    )
                    .expect("inline transfer run");
                    (kind, bytes, out.result.transfer_ms())
                })
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    Fig6 { cells }
}

impl Fig6 {
    /// Summary for one cell.
    pub fn summary(&self, kind: ProviderKind, bytes: u64) -> Option<Summary> {
        self.cells
            .iter()
            .find(|(k, b, _)| *k == kind && *b == bytes)
            .map(|(_, _, s)| Summary::from_samples(s))
    }

    /// Effective bandwidth in Mb/s at `bytes` (payload / median).
    pub fn effective_bandwidth_mbit(&self, kind: ProviderKind, bytes: u64) -> Option<f64> {
        let median_ms = self.summary(kind, bytes)?.median;
        Some(bytes as f64 * 8.0 / 1e6 / (median_ms / 1000.0))
    }

    /// Paper-vs-measured rows (paper values where Fig 6 reports them).
    pub fn comparisons(&self) -> Vec<Comparison> {
        let mut rows = Vec::new();
        for (kind, bytes, samples) in &self.cells {
            let paper_med = paper::inline_transfer_points(*kind)
                .iter()
                .find(|(b, _)| b == bytes)
                .map_or(f64::NAN, |&(_, m)| m);
            let paper_p99 =
                if *bytes == MB { paper_med * paper::inline_tmr_1mb(*kind) } else { f64::NAN };
            rows.push(Comparison::from_summary(
                format!("{kind} inline {}", fmt_bytes(*bytes)),
                &Summary::from_samples(samples),
                paper_med,
                paper_p99,
            ));
        }
        rows
    }

    /// Renders the report with the effective-bandwidth line (§VI-C1:
    /// 264 / 152 Mb/s).
    pub fn report(&self) -> Report {
        let mut body = comparison_table(&self.comparisons());
        body.push('\n');
        for kind in PROVIDERS {
            if let Some(bw) = self.effective_bandwidth_mbit(kind, 4 * MB) {
                let target = match kind {
                    ProviderKind::Aws => 264.0,
                    ProviderKind::Google => 152.0,
                    ProviderKind::Azure => f64::NAN,
                };
                body.push_str(&format!(
                    "{kind}: effective inline bandwidth at 4MB = {bw:.0} Mb/s (paper {target:.0})\n"
                ));
            }
        }
        Report { id: "fig6", title: "Inline data-transfer latency vs. payload size", body }
    }
}

/// Formats a byte count the way the paper's axes do.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1_000_000_000 {
        format!("{}GB", bytes / 1_000_000_000)
    } else if bytes >= MB {
        format!("{}MB", bytes / MB)
    } else if bytes >= KB {
        format!("{}KB", bytes / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_payload_and_stays_predictable() {
        let data = measure(300);
        for kind in PROVIDERS {
            let small = data.summary(kind, KB).unwrap();
            let large = data.summary(kind, 4 * MB).unwrap();
            assert!(large.median > 5.0 * small.median, "{kind}");
            // Obs 4: inline transfers are predictable.
            assert!(large.tmr < 2.5, "{kind} inline TMR {}", large.tmr);
        }
        // Google wins small payloads; AWS wins large ones.
        let g1 = data.summary(ProviderKind::Google, KB).unwrap().median;
        let a1 = data.summary(ProviderKind::Aws, KB).unwrap().median;
        assert!(g1 < a1);
        let g4 = data.summary(ProviderKind::Google, 4 * MB).unwrap().median;
        let a4 = data.summary(ProviderKind::Aws, 4 * MB).unwrap().median;
        assert!(a4 < g4);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(1_000), "1KB");
        assert_eq!(fmt_bytes(4_000_000), "4MB");
        assert_eq!(fmt_bytes(1_000_000_000), "1GB");
        assert_eq!(fmt_bytes(17), "17B");
    }
}
