//! The deployer: turns a static configuration into live endpoints.
//!
//! STeLLAR's deployer features provider-specific plugins that push
//! functions to the target cloud and emit a file of endpoint URLs (§IV).
//! In this reproduction the plugin deploys into a [`CloudSim`]; the plugin
//! trait is kept so a real-cloud backend could slot in.

use faas_sim::cloud::{CloudSim, DeployError};
use faas_sim::spec::FunctionSpec;
use faas_sim::types::FunctionId;
use simkit::dist::Dist;

use crate::config::{ChainConfig, RuntimeConfig, StaticConfig, StaticFunction};

/// One deployed, invokable function endpoint (a chain's head when chains
/// are configured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Synthetic URL, in the shape a provider would assign.
    pub url: String,
    /// The head function to invoke.
    pub function: FunctionId,
    /// Deployed name (base name + replica suffix).
    pub name: String,
}

/// A completed deployment: the endpoints file the client consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    /// One endpoint per (entry × replica).
    pub endpoints: Vec<Endpoint>,
}

impl Deployment {
    /// Number of invokable endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the deployment is empty.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }
}

/// Deploys `static_cfg` into `cloud`, wiring chains and execution times
/// from `runtime_cfg`.
///
/// For every entry and replica this creates the function (and, when a
/// chain is configured, its `length − 1` downstream hops, deployed
/// tail-first so each hop can reference the next).
///
/// # Errors
///
/// Propagates [`DeployError`] from the simulator (invalid specs, inline
/// payload above the provider cap).
pub fn deploy(
    cloud: &mut CloudSim,
    static_cfg: &StaticConfig,
    runtime_cfg: &RuntimeConfig,
) -> Result<Deployment, DeployError> {
    static_cfg.validate().map_err(DeployError::InvalidSpec)?;
    runtime_cfg.validate().map_err(DeployError::InvalidSpec)?;
    let mut endpoints = Vec::new();
    for entry in &static_cfg.functions {
        for replica in 0..entry.replicas {
            let name = format!("{}-{replica}", entry.name);
            let head = match &runtime_cfg.chain {
                Some(chain) => deploy_chain(cloud, entry, &name, runtime_cfg.exec_ms, chain)?,
                None => deploy_one(cloud, entry, &name, runtime_cfg.exec_ms, None)?,
            };
            endpoints.push(Endpoint {
                url: format!("https://{}.sim/{}", cloud.config().name, name),
                function: head,
                name,
            });
        }
    }
    Ok(Deployment { endpoints })
}

fn deploy_one(
    cloud: &mut CloudSim,
    entry: &StaticFunction,
    name: &str,
    exec_ms: f64,
    chain_to: Option<(&ChainConfig, FunctionId)>,
) -> Result<FunctionId, DeployError> {
    let mut builder = FunctionSpec::builder(name)
        .runtime(entry.runtime)
        .deployment(entry.deployment)
        .memory_mb(entry.memory_mb)
        .extra_image_mb(entry.extra_image_mb)
        .exec_ms(Dist::constant(exec_ms));
    if let Some((chain, next)) = chain_to {
        builder = builder.chain(next, chain.mode, chain.payload_bytes);
    }
    let spec = builder.try_build().map_err(DeployError::InvalidSpec)?;
    cloud.deploy(spec)
}

/// Deploys a chain tail-first; returns the head (producer) function.
fn deploy_chain(
    cloud: &mut CloudSim,
    entry: &StaticFunction,
    name: &str,
    exec_ms: f64,
    chain: &ChainConfig,
) -> Result<FunctionId, DeployError> {
    // Tail (final consumer) has no downstream hop.
    let tail_name = format!("{name}-hop{}", chain.length - 1);
    let mut next = deploy_one(cloud, entry, &tail_name, exec_ms, None)?;
    // Middle hops and head, from tail-1 down to 0.
    for hop in (0..chain.length - 1).rev() {
        let hop_name = if hop == 0 { name.to_string() } else { format!("{name}-hop{hop}") };
        next = deploy_one(cloud, entry, &hop_name, exec_ms, Some((chain, next)))?;
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IatSpec;
    use faas_sim::testutil::test_provider;
    use faas_sim::types::TransferMode;
    use simkit::time::SimTime;

    fn cloud() -> CloudSim {
        CloudSim::new(test_provider(), 1)
    }

    #[test]
    fn deploys_replicas_as_separate_endpoints() {
        let mut cloud = cloud();
        let static_cfg =
            StaticConfig { functions: vec![StaticFunction::python_zip("probe").with_replicas(5)] };
        let runtime_cfg = RuntimeConfig::single(IatSpec::short(), 10);
        let d = deploy(&mut cloud, &static_cfg, &runtime_cfg).unwrap();
        assert_eq!(d.len(), 5);
        assert_eq!(d.endpoints[0].name, "probe-0");
        assert_eq!(d.endpoints[4].name, "probe-4");
        assert!(d.endpoints[0].url.starts_with("https://test.sim/"));
        // Each endpoint invokes a distinct function.
        let mut ids: Vec<_> = d.endpoints.iter().map(|e| e.function).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn deploys_chain_head_and_hops() {
        let mut cloud = cloud();
        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] };
        let mut runtime_cfg = RuntimeConfig::single(IatSpec::short(), 10);
        runtime_cfg.chain =
            Some(ChainConfig { length: 3, mode: TransferMode::Inline, payload_bytes: 1_000 });
        let d = deploy(&mut cloud, &static_cfg, &runtime_cfg).unwrap();
        assert_eq!(d.len(), 1, "one endpoint: the chain head");
        // Invoking the head must traverse the whole chain: two transfers.
        cloud.submit(d.endpoints[0].function, 0, SimTime::ZERO);
        cloud.run_until(SimTime::from_secs(30.0));
        assert_eq!(cloud.drain_completions().len(), 1);
        assert_eq!(cloud.drain_transfers().len(), 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cloud = cloud();
        let empty = StaticConfig { functions: vec![] };
        let runtime_cfg = RuntimeConfig::single(IatSpec::short(), 10);
        assert!(deploy(&mut cloud, &empty, &runtime_cfg).is_err());

        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("f")] };
        let mut bad_runtime = runtime_cfg;
        bad_runtime.samples = 0;
        assert!(deploy(&mut cloud, &static_cfg, &bad_runtime).is_err());
    }

    #[test]
    fn oversized_inline_chain_payload_is_rejected() {
        let mut cloud = cloud();
        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("f")] };
        let mut runtime_cfg = RuntimeConfig::single(IatSpec::short(), 10);
        runtime_cfg.chain = Some(ChainConfig {
            length: 2,
            mode: TransferMode::Inline,
            payload_bytes: 100_000_000, // over the 6 MB test-provider cap
        });
        let err = deploy(&mut cloud, &static_cfg, &runtime_cfg).unwrap_err();
        assert!(matches!(err, DeployError::InlinePayloadTooLarge { .. }));
    }

    #[test]
    fn exec_time_is_applied() {
        let mut cloud = cloud();
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("slow")] };
        let mut runtime_cfg = RuntimeConfig::single(IatSpec::short(), 10);
        runtime_cfg.exec_ms = 1000.0;
        let d = deploy(&mut cloud, &static_cfg, &runtime_cfg).unwrap();
        cloud.submit(d.endpoints[0].function, 0, SimTime::ZERO);
        cloud.run_until(SimTime::from_secs(30.0));
        let done = cloud.drain_completions();
        assert_eq!(done[0].breakdown.exec_ms, 1000.0);
    }
}
