//! Fig 3: latency distributions for warm (short-IAT) and cold (long-IAT)
//! invocations across the three providers (§VI-A, §VI-B1).

use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::protocols::{cold_invocations, warm_invocations, ColdSetup};
use stellar_core::visualize::{render_comparison, Series};

use crate::report::{comparison_table, Comparison, Report, BASE_SEED};

/// Measured data behind Fig 3.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Per-provider warm latency samples (Fig 3a).
    pub warm: Vec<(ProviderKind, Vec<f64>)>,
    /// Per-provider cold latency samples (Fig 3b).
    pub cold: Vec<(ProviderKind, Vec<f64>)>,
}

/// Runs both halves of Fig 3 (providers in parallel).
pub fn measure(samples: u32) -> Fig3 {
    let mut warm = Vec::new();
    let mut cold = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .map(|&kind| {
                scope.spawn(move |_| {
                    let w = warm_invocations(config_for(kind), samples, BASE_SEED + 1)
                        .expect("warm run")
                        .latencies_ms();
                    let c = cold_invocations(
                        config_for(kind),
                        ColdSetup::baseline(),
                        samples,
                        100,
                        BASE_SEED + 2,
                    )
                    .expect("cold run")
                    .latencies_ms();
                    (kind, w, c)
                })
            })
            .collect();
        for handle in handles {
            let (kind, w, c) = handle.join().expect("experiment thread");
            warm.push((kind, w));
            cold.push((kind, c));
        }
    })
    .expect("scope");
    Fig3 { warm, cold }
}

impl Fig3 {
    /// Paper-vs-measured comparison rows (warm then cold).
    pub fn comparisons(&self) -> Vec<Comparison> {
        let mut rows = Vec::new();
        for (kind, samples) in &self.warm {
            let (med, p99) = paper::warm_internal_ms(*kind);
            let rtt = kind.prop_one_way_ms() * 2.0;
            rows.push(Comparison::from_summary(
                format!("warm {kind}"),
                &Summary::from_samples(samples),
                med + rtt,
                p99 + rtt,
            ));
        }
        for (kind, samples) in &self.cold {
            let (med, tmr) = paper::cold_observed_ms(*kind);
            rows.push(Comparison::from_summary(
                format!("cold {kind}"),
                &Summary::from_samples(samples),
                med,
                med * tmr,
            ));
        }
        rows
    }

    /// Renders the report: comparison table plus per-series stat lines.
    pub fn report(&self) -> Report {
        let mut body = comparison_table(&self.comparisons());
        body.push('\n');
        let series: Vec<Series> = self
            .warm
            .iter()
            .map(|(k, s)| Series::new(format!("warm-{k}"), s.clone()))
            .chain(self.cold.iter().map(|(k, s)| Series::new(format!("cold-{k}"), s.clone())))
            .collect();
        body.push_str(&render_comparison(&series));
        Report { id: "fig3", title: "Warm and cold invocation latency distributions", body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shapes() {
        let data = measure(300);
        assert_eq!(data.warm.len(), 3);
        assert_eq!(data.cold.len(), 3);
        for (kind, samples) in &data.warm {
            assert_eq!(samples.len(), 300, "{kind}");
        }
        // Cold is an order of magnitude above warm for every provider.
        for ((k, w), (_, c)) in data.warm.iter().zip(&data.cold) {
            let wm = stats::percentile::median(w);
            let cm = stats::percentile::median(c);
            assert!(cm > 5.0 * wm, "{k}: warm {wm:.0} cold {cm:.0}");
        }
        let report = data.report();
        assert!(report.render().contains("warm aws"));
    }
}
