//! Events dispatched inside the cloud simulation.

use simkit::profile::EventClass;

use crate::types::{FunctionId, InstanceId, RequestId};

/// The event alphabet of the serverless cloud simulation.
///
/// Each variant corresponds to a hand-off point in the invocation
/// lifecycle of the paper's Fig 1.
///
/// `CloudEvent` is deliberately `Copy` and small: every variant carries
/// only plain ids, so moving payloads through the SoA event queues is a
/// trivial memcpy. The size assertion below keeps it that way — a variant
/// that needs more state should carry a slab id, not the state itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudEvent {
    /// The request reached the front-end fleet (step ①).
    FrontendArrive(RequestId),
    /// Front-end + routing processing finished; enter burst dispatch
    /// (step ②).
    RoutingDone(RequestId),
    /// The request cleared dispatch and is ready to be queued/served
    /// (step ③).
    Enqueued(RequestId),
    /// An instance finished booting (step ⑤ done).
    BootComplete(InstanceId),
    /// User compute of the request finished on the instance; chain hops
    /// happen next (steps ⑧–⑨).
    ComputeDone(RequestId, InstanceId),
    /// The request's work on the instance is fully done (including chain);
    /// the response leaves the instance.
    ExecDone(RequestId, InstanceId),
    /// The response reached the requester.
    Completed(RequestId),
    /// Client-side cancellation of an in-flight request (tail-tolerance
    /// policies): the request is dropped at this event boundary, freeing
    /// its instance if it was executing.
    Cancel(RequestId),
    /// Keep-alive check for an idle instance at the given epoch.
    ReapCheck(InstanceId, u64),
    /// Periodic scale-controller tick for a function (Azure-style).
    ScaleTick(FunctionId),
    /// Telemetry sampling tick (enabled via `CloudSim::enable_timeline`).
    TelemetryTick,
    /// Keepalive-purge storm tick (fault injection): reaps every idle
    /// instance, then reschedules itself while the run is still active.
    FaultStorm,
    /// A DAG branch produced by the request reaches the join barrier of
    /// the given fan-in function (delayed by the storage PUT for storage
    /// transfers). The k-th arrival fires the barrier.
    JoinArrive(RequestId, FunctionId),
}

// Queue payload moves must stay memcpy-trivial: two 8-byte ids plus the
// discriminant. See also the runtime regression test below.
const _: () = assert!(std::mem::size_of::<CloudEvent>() <= 24);

impl EventClass for CloudEvent {
    const CLASS_NAMES: &'static [&'static str] = &[
        "frontend_arrive",
        "routing_done",
        "enqueued",
        "boot_complete",
        "compute_done",
        "exec_done",
        "completed",
        "cancel",
        "reap_check",
        "scale_tick",
        "telemetry_tick",
        "fault_storm",
        "join_arrive",
    ];

    fn class(&self) -> usize {
        match self {
            CloudEvent::FrontendArrive(_) => 0,
            CloudEvent::RoutingDone(_) => 1,
            CloudEvent::Enqueued(_) => 2,
            CloudEvent::BootComplete(_) => 3,
            CloudEvent::ComputeDone(_, _) => 4,
            CloudEvent::ExecDone(_, _) => 5,
            CloudEvent::Completed(_) => 6,
            CloudEvent::Cancel(_) => 7,
            CloudEvent::ReapCheck(_, _) => 8,
            CloudEvent::ScaleTick(_) => 9,
            CloudEvent::TelemetryTick => 10,
            CloudEvent::FaultStorm => 11,
            CloudEvent::JoinArrive(_, _) => 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Future variants must not fatten the event past 24 bytes — every
    /// byte here is multiplied by heap sift traffic at 10^6 pending.
    #[test]
    fn cloud_event_stays_small() {
        assert!(
            std::mem::size_of::<CloudEvent>() <= 24,
            "CloudEvent grew to {} bytes",
            std::mem::size_of::<CloudEvent>()
        );
    }

    /// Every class index is in range and names are distinct — a new
    /// variant must extend CLASS_NAMES in enum order.
    #[test]
    fn event_classes_are_dense_and_named() {
        use crate::types::{FunctionId, InstanceId, RequestId};
        let rid = RequestId::new(0, 0);
        let iid = InstanceId { function: FunctionId::from_raw_for_tests(0), idx: 0 };
        let fid = FunctionId::from_raw_for_tests(0);
        let all = [
            CloudEvent::FrontendArrive(rid),
            CloudEvent::RoutingDone(rid),
            CloudEvent::Enqueued(rid),
            CloudEvent::BootComplete(iid),
            CloudEvent::ComputeDone(rid, iid),
            CloudEvent::ExecDone(rid, iid),
            CloudEvent::Completed(rid),
            CloudEvent::Cancel(rid),
            CloudEvent::ReapCheck(iid, 0),
            CloudEvent::ScaleTick(fid),
            CloudEvent::TelemetryTick,
            CloudEvent::FaultStorm,
            CloudEvent::JoinArrive(rid, fid),
        ];
        assert_eq!(all.len(), CloudEvent::CLASS_NAMES.len());
        for (i, ev) in all.iter().enumerate() {
            assert_eq!(ev.class(), i, "{ev:?} out of enum order");
        }
        let mut names: Vec<&str> = CloudEvent::CLASS_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CloudEvent::CLASS_NAMES.len(), "duplicate class name");
    }
}
