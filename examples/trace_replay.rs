//! Trace replay: sample functions from the (synthetic) Azure Functions
//! trace, deploy them onto a simulated provider, and replay Poisson
//! invocation traffic — comparing the trace's *execution-time* variability
//! against the variability the *infrastructure* adds on top (the question
//! the paper's §VII-B asks).
//!
//! ```bash
//! cargo run --release -p stellar-examples --bin trace_replay
//! ```

use azure_trace::synth::{generate, SynthConfig};
use faas_sim::cloud::CloudSim;
use faas_sim::spec::FunctionSpec;
use providers::profiles::google_like;
use simkit::dist::Dist;
use simkit::rng::Rng;
use simkit::time::SimTime;
use stats::Summary;

fn main() {
    // 1. Draw a handful of representative functions from the trace.
    let trace = generate(&SynthConfig::paper_defaults(2_000), 11);
    let mut picks: Vec<_> = trace
        .iter()
        .filter(|r| r.p50 < 30_000.0) // keep the replay short
        .take(12)
        .collect();
    picks.sort_by(|a, b| a.p50.partial_cmp(&b.p50).unwrap());

    // 2. Deploy each as a function whose execution time follows the
    //    trace's log-normal (reconstructed from its median and p99).
    let mut cloud = CloudSim::new(google_like(), 42);
    let mut deployed = Vec::new();
    for record in &picks {
        let exec = Dist::lognormal_median_p99(record.p50.max(0.1), record.p99.max(record.p50));
        let f = cloud
            .deploy(FunctionSpec::builder(record.function.clone()).exec_ms(exec).build())
            .expect("deploy");
        deployed.push((record, f));
    }

    // 3. Replay ~80 Poisson invocations per function.
    let mut rng = Rng::seed_from(7);
    for (_, f) in &deployed {
        let mut t = SimTime::ZERO;
        for i in 0..80u64 {
            t += SimTime::from_millis(-30_000.0 * rng.next_f64_open().ln());
            cloud.submit(*f, i, t);
        }
    }
    cloud.run_until(SimTime::from_secs(48.0 * 3600.0));
    let completions = cloud.drain_completions();

    // 4. Per function: trace TMR (pure execution) vs replayed end-to-end TMR.
    println!(
        "{:<12} {:>10} {:>10} {:>11} {:>12}",
        "function", "exec p50", "trace TMR", "e2e TMR", "infra share"
    );
    for (record, f) in &deployed {
        let lat: Vec<f64> =
            completions.iter().filter(|c| c.function == *f).map(|c| c.latency_ms()).collect();
        let s = Summary::from_samples(&lat);
        let infra_share = completions
            .iter()
            .filter(|c| c.function == *f)
            .map(|c| c.breakdown.infra_ms() / c.latency_ms())
            .sum::<f64>()
            / lat.len() as f64;
        println!(
            "{:<12} {:>8.0}ms {:>10.1} {:>11.1} {:>11.0}%",
            &record.function[..record.function.len().min(12)],
            record.p50,
            record.tmr(),
            s.tmr,
            infra_share * 100.0
        );
    }
    println!();
    println!("Short functions inherit the infrastructure's variability (cold starts");
    println!("dwarf their execution); for long functions the trace's own execution");
    println!("spread dominates — the paper's §VII-B conclusion.");
}
