//! Probability distributions for latency modelling.
//!
//! [`Dist`] is a *data-driven* distribution type: a serde-serialisable enum
//! rather than a trait object, so that provider profiles and experiment
//! configurations can be written to / read from JSON configuration files
//! (mirroring STeLLAR's file-driven configuration, paper §IV).
//!
//! All sampling is done through [`Dist::sample`] with a [`Rng`] supplied by
//! the caller, keeping the distribution values immutable and shareable.
//!
//! Latency components in the serverless simulator are mostly modelled as
//! log-normals (multiplicative noise), mixtures with a slow mode
//! (cost-optimised storage, paper §VI-C2) and shifted/scaled combinations.
//! The convenience constructor [`Dist::lognormal_median_p99`] builds a
//! log-normal directly from the two numbers the paper reports: a median and
//! a 99th percentile.

use serde::{Deserialize, Serialize};

use crate::rng::Rng;

/// The 99th-percentile quantile of the standard normal distribution.
pub const Z99: f64 = 2.326_347_874_040_841;

/// A probability distribution over non-negative `f64` values.
///
/// # Examples
///
/// ```
/// use simkit::dist::Dist;
/// use simkit::rng::Rng;
///
/// // A latency component with 10ms median and 40ms p99:
/// let d = Dist::lognormal_median_p99(10.0, 40.0);
/// let mut rng = Rng::seed_from(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// assert!((d.median_exact().unwrap() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Dist {
    /// Always returns `value`.
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given `mean` (= 1/rate).
    Exponential { mean: f64 },
    /// Normal (Gaussian), truncated at zero on sampling.
    Normal { mean: f64, std: f64 },
    /// Log-normal with location `mu` and shape `sigma` (of the underlying
    /// normal).
    LogNormal { mu: f64, sigma: f64 },
    /// Pareto (Lomax-style heavy tail) with minimum `scale` and tail index
    /// `shape` (`alpha`). Smaller `shape` means heavier tail.
    Pareto { scale: f64, shape: f64 },
    /// Weibull with the given `scale` (lambda) and `shape` (k).
    Weibull { scale: f64, shape: f64 },
    /// Gamma with `shape` (k) and `scale` (theta).
    Gamma { shape: f64, scale: f64 },
    /// Resamples uniformly from an empirical set of values.
    Empirical { values: Vec<f64> },
    /// Weighted mixture of component distributions.
    Mixture { components: Vec<Weighted> },
    /// `offset + inner`: additive shift of another distribution.
    Shifted { offset: f64, inner: Box<Dist> },
    /// `factor * inner`: multiplicative scaling of another distribution.
    Scaled { factor: f64, inner: Box<Dist> },
    /// Sum of two independent draws.
    SumOf { a: Box<Dist>, b: Box<Dist> },
    /// Larger of two independent draws.
    MaxOf { a: Box<Dist>, b: Box<Dist> },
}

/// A weighted mixture component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weighted {
    /// Relative (unnormalised) weight of this component.
    pub weight: f64,
    /// The component distribution.
    pub dist: Dist,
}

impl Dist {
    /// A distribution that always returns `value`.
    pub fn constant(value: f64) -> Dist {
        Dist::Constant { value }
    }

    /// Log-normal parameterised by its median and 99th percentile.
    ///
    /// For a log-normal, `median = exp(mu)` and `p99 = exp(mu + Z99*sigma)`,
    /// so `mu = ln(median)` and `sigma = ln(p99/median)/Z99`. This is the
    /// natural way to encode the paper's reported (median, tail) pairs.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `p99 < median`.
    pub fn lognormal_median_p99(median: f64, p99: f64) -> Dist {
        assert!(median > 0.0, "median must be positive, got {median}");
        assert!(p99 >= median, "p99 {p99} below median {median}");
        Dist::LogNormal { mu: median.ln(), sigma: (p99 / median).ln() / Z99 }
    }

    /// Fits a log-normal to positive `samples` by matching log-moments
    /// (maximum likelihood for the log-normal family). Useful for turning
    /// measured latency samples back into a model — e.g. replaying a trace
    /// function's execution-time distribution.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any sample is non-positive or
    /// non-finite.
    pub fn fit_lognormal(samples: &[f64]) -> Dist {
        assert!(!samples.is_empty(), "cannot fit an empty sample set");
        assert!(
            samples.iter().all(|&x| x.is_finite() && x > 0.0),
            "log-normal fit needs positive finite samples"
        );
        let n = samples.len() as f64;
        let mu = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
        let var = samples.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
        Dist::LogNormal { mu, sigma: var.sqrt() }
    }

    /// A two-mode mixture: with probability `p_slow` sample the `slow`
    /// distribution, otherwise the `fast` one. Models cost-optimised
    /// services with an occasional slow path.
    pub fn bimodal(fast: Dist, slow: Dist, p_slow: f64) -> Dist {
        assert!((0.0..=1.0).contains(&p_slow), "p_slow out of range: {p_slow}");
        Dist::Mixture {
            components: vec![
                Weighted { weight: 1.0 - p_slow, dist: fast },
                Weighted { weight: p_slow, dist: slow },
            ],
        }
    }

    /// Additively shifts this distribution by `offset`.
    pub fn shifted(self, offset: f64) -> Dist {
        Dist::Shifted { offset, inner: Box::new(self) }
    }

    /// Multiplicatively scales this distribution by `factor`.
    pub fn scaled(self, factor: f64) -> Dist {
        Dist::Scaled { factor, inner: Box::new(self) }
    }

    /// Draws a sample. All variants clamp the result at zero so that
    /// latency components can never be negative.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let v = match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::Exponential { mean } => -mean * rng.next_f64_open().ln(),
            Dist::Normal { mean, std } => mean + std * sample_standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
            Dist::Pareto { scale, shape } => scale / rng.next_f64_open().powf(1.0 / shape),
            Dist::Weibull { scale, shape } => scale * (-rng.next_f64_open().ln()).powf(1.0 / shape),
            Dist::Gamma { shape, scale } => sample_gamma(rng, *shape) * scale,
            Dist::Empirical { values } => {
                assert!(!values.is_empty(), "empirical distribution has no values");
                *rng.choose(values)
            }
            Dist::Mixture { components } => {
                assert!(!components.is_empty(), "mixture has no components");
                let total: f64 = components.iter().map(|c| c.weight).sum();
                let mut pick = rng.next_f64() * total;
                let mut chosen = &components[components.len() - 1].dist;
                for c in components {
                    if pick < c.weight {
                        chosen = &c.dist;
                        break;
                    }
                    pick -= c.weight;
                }
                chosen.sample(rng)
            }
            Dist::Shifted { offset, inner } => offset + inner.sample(rng),
            Dist::Scaled { factor, inner } => factor * inner.sample(rng),
            Dist::SumOf { a, b } => a.sample(rng) + b.sample(rng),
            Dist::MaxOf { a, b } => a.sample(rng).max(b.sample(rng)),
        };
        v.max(0.0)
    }

    /// Analytic mean, where one exists in closed form.
    ///
    /// Returns `None` for variants whose mean is not implemented
    /// (`MaxOf`) or does not exist (Pareto with `shape <= 1`).
    pub fn mean_exact(&self) -> Option<f64> {
        match self {
            Dist::Constant { value } => Some(*value),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Dist::Exponential { mean } => Some(*mean),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Pareto { scale, shape } => {
                if *shape > 1.0 {
                    Some(shape * scale / (shape - 1.0))
                } else {
                    None
                }
            }
            Dist::Weibull { scale, shape } => Some(scale * gamma_fn(1.0 + 1.0 / shape)),
            Dist::Gamma { shape, scale } => Some(shape * scale),
            Dist::Empirical { values } => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            }
            Dist::Mixture { components } => {
                let total: f64 = components.iter().map(|c| c.weight).sum();
                let mut acc = 0.0;
                for c in components {
                    acc += c.weight * c.dist.mean_exact()?;
                }
                Some(acc / total)
            }
            Dist::Shifted { offset, inner } => Some(offset + inner.mean_exact()?),
            Dist::Scaled { factor, inner } => Some(factor * inner.mean_exact()?),
            Dist::SumOf { a, b } => Some(a.mean_exact()? + b.mean_exact()?),
            Dist::MaxOf { .. } => None,
        }
    }

    /// Analytic median, where one exists in closed form.
    pub fn median_exact(&self) -> Option<f64> {
        match self {
            Dist::Constant { value } => Some(*value),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Dist::Exponential { mean } => Some(mean * std::f64::consts::LN_2),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, .. } => Some(mu.exp()),
            Dist::Pareto { scale, shape } => Some(scale * 2f64.powf(1.0 / shape)),
            Dist::Weibull { scale, shape } => {
                Some(scale * std::f64::consts::LN_2.powf(1.0 / shape))
            }
            Dist::Shifted { offset, inner } => Some(offset + inner.median_exact()?),
            Dist::Scaled { factor, inner } => Some(factor * inner.median_exact()?),
            _ => None,
        }
    }

    /// Validates structural invariants (non-empty mixtures/empiricals,
    /// finite parameters, valid ranges). Returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        fn finite(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(format!("{name} is not finite: {v}"))
            }
        }
        match self {
            Dist::Constant { value } => finite("value", *value),
            Dist::Uniform { lo, hi } => {
                finite("lo", *lo)?;
                finite("hi", *hi)?;
                if lo > hi {
                    return Err(format!("uniform lo {lo} > hi {hi}"));
                }
                Ok(())
            }
            Dist::Exponential { mean } => {
                finite("mean", *mean)?;
                if *mean <= 0.0 {
                    return Err(format!("exponential mean must be positive: {mean}"));
                }
                Ok(())
            }
            Dist::Normal { mean, std } => {
                finite("mean", *mean)?;
                finite("std", *std)?;
                if *std < 0.0 {
                    return Err(format!("normal std must be non-negative: {std}"));
                }
                Ok(())
            }
            Dist::LogNormal { mu, sigma } => {
                finite("mu", *mu)?;
                finite("sigma", *sigma)?;
                if *sigma < 0.0 {
                    return Err(format!("lognormal sigma must be non-negative: {sigma}"));
                }
                Ok(())
            }
            Dist::Pareto { scale, shape } | Dist::Weibull { scale, shape } => {
                finite("scale", *scale)?;
                finite("shape", *shape)?;
                if *scale <= 0.0 || *shape <= 0.0 {
                    return Err("pareto/weibull parameters must be positive".to_string());
                }
                Ok(())
            }
            Dist::Gamma { shape, scale } => {
                finite("shape", *shape)?;
                finite("scale", *scale)?;
                if *shape <= 0.0 || *scale <= 0.0 {
                    return Err("gamma parameters must be positive".to_string());
                }
                Ok(())
            }
            Dist::Empirical { values } => {
                if values.is_empty() {
                    return Err("empirical distribution has no values".to_string());
                }
                for v in values {
                    finite("empirical value", *v)?;
                }
                Ok(())
            }
            Dist::Mixture { components } => {
                if components.is_empty() {
                    return Err("mixture has no components".to_string());
                }
                let total: f64 = components.iter().map(|c| c.weight).sum();
                if total <= 0.0 || total.is_nan() {
                    return Err(format!("mixture weights sum to {total}"));
                }
                for c in components {
                    if c.weight < 0.0 {
                        return Err(format!("negative mixture weight {}", c.weight));
                    }
                    c.dist.validate()?;
                }
                Ok(())
            }
            Dist::Shifted { offset, inner } => {
                finite("offset", *offset)?;
                inner.validate()
            }
            Dist::Scaled { factor, inner } => {
                finite("factor", *factor)?;
                if *factor < 0.0 {
                    return Err(format!("negative scale factor {factor}"));
                }
                inner.validate()
            }
            Dist::SumOf { a, b } | Dist::MaxOf { a, b } => {
                a.validate()?;
                b.validate()
            }
        }
    }
}

/// Standard normal variate via Box–Muller (polar form avoided for
/// determinism simplicity; each call consumes exactly two uniforms).
fn sample_standard_normal(rng: &mut Rng) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma(shape, 1) via Marsaglia–Tsang, with the boost trick for shape < 1.
fn sample_gamma(rng: &mut Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u = rng.next_f64_open();
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64_open();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Lanczos approximation of the gamma function (for Weibull mean).
fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::seed_from(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn sample_quantile(d: &Dist, q: f64, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::seed_from(seed);
        let mut v: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[((n as f64 - 1.0) * q).round() as usize]
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::constant(3.5);
        let mut rng = Rng::seed_from(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = Rng::seed_from(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((sample_mean(&d, 50_000, 2) - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::Exponential { mean: 5.0 };
        assert!((sample_mean(&d, 100_000, 3) - 5.0).abs() < 0.1);
        assert!((d.median_exact().unwrap() - 5.0 * std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn normal_mean_and_clamp() {
        let d = Dist::Normal { mean: 10.0, std: 2.0 };
        assert!((sample_mean(&d, 100_000, 4) - 10.0).abs() < 0.05);
        // Heavily negative normal clamps to zero:
        let neg = Dist::Normal { mean: -100.0, std: 1.0 };
        assert_eq!(neg.sample(&mut Rng::seed_from(5)), 0.0);
    }

    #[test]
    fn lognormal_median_p99_constructor() {
        let d = Dist::lognormal_median_p99(100.0, 400.0);
        assert!((d.median_exact().unwrap() - 100.0).abs() < 1e-9);
        let med = sample_quantile(&d, 0.5, 100_000, 6);
        let p99 = sample_quantile(&d, 0.99, 100_000, 6);
        assert!((med - 100.0).abs() / 100.0 < 0.03, "median {med}");
        assert!((p99 - 400.0).abs() / 400.0 < 0.10, "p99 {p99}");
    }

    #[test]
    fn lognormal_mean_exact() {
        let d = Dist::LogNormal { mu: 0.0, sigma: 1.0 };
        let expected = (0.5f64).exp();
        assert!((sample_mean(&d, 200_000, 7) - expected).abs() / expected < 0.03);
        assert!((d.mean_exact().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn pareto_heavy_tail() {
        let d = Dist::Pareto { scale: 1.0, shape: 2.0 };
        assert!((d.mean_exact().unwrap() - 2.0).abs() < 1e-12);
        let mut rng = Rng::seed_from(8);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        assert_eq!(Dist::Pareto { scale: 1.0, shape: 0.9 }.mean_exact(), None);
    }

    #[test]
    fn weibull_mean_exact() {
        // shape=1 degenerates to exponential with mean=scale.
        let d = Dist::Weibull { scale: 3.0, shape: 1.0 };
        assert!((d.mean_exact().unwrap() - 3.0).abs() < 1e-9);
        assert!((sample_mean(&d, 100_000, 9) - 3.0).abs() < 0.1);
    }

    #[test]
    fn gamma_mean_matches() {
        let d = Dist::Gamma { shape: 3.0, scale: 2.0 };
        assert!((sample_mean(&d, 100_000, 10) - 6.0).abs() < 0.1);
        let small = Dist::Gamma { shape: 0.5, scale: 1.0 };
        assert!((sample_mean(&small, 200_000, 11) - 0.5).abs() < 0.02);
    }

    #[test]
    fn empirical_resamples_values() {
        let d = Dist::Empirical { values: vec![1.0, 2.0, 3.0] };
        let mut rng = Rng::seed_from(12);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 3.0);
        }
        assert!((d.mean_exact().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_weights_respected() {
        let d = Dist::bimodal(Dist::constant(1.0), Dist::constant(100.0), 0.25);
        let mean = sample_mean(&d, 100_000, 13);
        let expected = 0.75 * 1.0 + 0.25 * 100.0;
        assert!((mean - expected).abs() / expected < 0.03, "mean {mean}");
        assert!((d.mean_exact().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn shifted_and_scaled() {
        let d = Dist::constant(2.0).scaled(3.0).shifted(1.0);
        assert_eq!(d.sample(&mut Rng::seed_from(0)), 7.0);
        assert_eq!(d.mean_exact(), Some(7.0));
        assert_eq!(d.median_exact(), Some(7.0));
    }

    #[test]
    fn sum_and_max_of() {
        let s = Dist::SumOf { a: Box::new(Dist::constant(1.0)), b: Box::new(Dist::constant(2.0)) };
        assert_eq!(s.sample(&mut Rng::seed_from(0)), 3.0);
        assert_eq!(s.mean_exact(), Some(3.0));
        let m = Dist::MaxOf { a: Box::new(Dist::constant(1.0)), b: Box::new(Dist::constant(2.0)) };
        assert_eq!(m.sample(&mut Rng::seed_from(0)), 2.0);
        assert_eq!(m.mean_exact(), None);
    }

    #[test]
    fn validate_catches_errors() {
        assert!(Dist::Uniform { lo: 5.0, hi: 1.0 }.validate().is_err());
        assert!(Dist::Exponential { mean: -1.0 }.validate().is_err());
        assert!(Dist::Empirical { values: vec![] }.validate().is_err());
        assert!(Dist::Mixture { components: vec![] }.validate().is_err());
        assert!(Dist::constant(1.0).validate().is_ok());
        assert!(Dist::lognormal_median_p99(10.0, 50.0).validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let d = Dist::bimodal(
            Dist::lognormal_median_p99(10.0, 40.0),
            Dist::Pareto { scale: 100.0, shape: 1.5 },
            0.03,
        )
        .shifted(2.0);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn fit_lognormal_recovers_parameters() {
        let truth = Dist::LogNormal { mu: 3.0, sigma: 0.5 };
        let mut rng = Rng::seed_from(99);
        let samples: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Dist::fit_lognormal(&samples);
        let Dist::LogNormal { mu, sigma } = fitted else { panic!("wrong variant") };
        assert!((mu - 3.0).abs() < 0.02, "mu {mu}");
        assert!((sigma - 0.5).abs() < 0.02, "sigma {sigma}");
    }

    #[test]
    fn fit_lognormal_on_constant_data() {
        let fitted = Dist::fit_lognormal(&[5.0, 5.0, 5.0]);
        assert!((fitted.median_exact().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn fit_lognormal_rejects_nonpositive() {
        Dist::fit_lognormal(&[1.0, 0.0]);
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }
}
