//! Command-line argument parsing (dependency-free).

use simkit::engine::QueueKind;
use stats::sketch::QuantileMode;

/// Options of `stellar run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Path to the static function configuration JSON (default single
    /// function when omitted; requires `--workload`).
    pub static_path: Option<String>,
    /// Path to the runtime (client) configuration JSON (defaults derived
    /// from `--samples`/`--warmup` when omitted; requires `--workload`).
    pub runtime_path: Option<String>,
    /// Workload model: a preset name (`mmpp-burst`, `trace-replay`, …) or
    /// a path to a workload-spec JSON. Supersedes the runtime config's
    /// IAT.
    pub workload: Option<String>,
    /// Tail-tolerance policy: a preset name (`hedge-p95`, `tied-2`, …),
    /// a path to a policy-spec JSON, or `none` for the unmodified
    /// baseline.
    pub policy: Option<String>,
    /// Fault model: a preset name (`throttle-5pct`, `outage-10s`, …), a
    /// path to a fault-spec JSON, or `none` for the fault-free baseline.
    pub faults: Option<String>,
    /// Application workflow: a preset name (`web-api`, `thumbnail`,
    /// `video`, …), a path to a DAG-spec JSON, or `none` for the legacy
    /// single-function baseline. Replaces the static function set with
    /// the workflow's DAG.
    pub app: Option<String>,
    /// Measured samples when `--runtime` is omitted.
    pub samples: u32,
    /// Warm-up arrivals when `--runtime` is omitted.
    pub warmup: u32,
    /// Provider: a built-in name (`aws-like`, `google-like`,
    /// `azure-like`) or a path to a provider-config JSON.
    pub provider: String,
    /// Deterministic seed.
    pub seed: u64,
    /// Print the per-component breakdown table.
    pub breakdown: bool,
    /// Print an ASCII CDF.
    pub cdf: bool,
    /// Write quantile CSV to this path.
    pub csv: Option<String>,
    /// Write an SVG CDF to this path.
    pub svg: Option<String>,
    /// Event-queue backend (performance knob; results are identical).
    pub queue: QueueKind,
    /// Quantile machinery: exact sorting or streaming sketches.
    pub quantile_mode: QuantileMode,
    /// Time every event dispatch and print a per-event-class cost table
    /// (observational: results are bit-identical with or without it).
    pub profile_events: bool,
}

/// Export format of `stellar trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per span per line.
    Jsonl,
    /// CSV with a header row.
    Csv,
}

/// Options of `stellar trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOptions {
    /// Path to the static function configuration JSON (default workload
    /// when omitted).
    pub static_path: Option<String>,
    /// Path to the runtime (client) configuration JSON (default workload
    /// when omitted).
    pub runtime_path: Option<String>,
    /// Provider: built-in name or provider-config JSON path.
    pub provider: String,
    /// Deterministic seed.
    pub seed: u64,
    /// Export format.
    pub format: TraceFormat,
    /// Output file; stdout when omitted.
    pub out: Option<String>,
    /// Trace ring capacity (oldest spans dropped beyond it).
    pub capacity: usize,
}

/// Options of `stellar sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Path to the static function configuration JSON (default workload
    /// when omitted).
    pub static_path: Option<String>,
    /// Path to the runtime (client) configuration JSON (default workload
    /// when omitted).
    pub runtime_path: Option<String>,
    /// Providers to sweep: built-in names or provider-config JSON paths.
    pub providers: Vec<String>,
    /// Number of seeds per provider.
    pub seeds: u64,
    /// First seed; the sweep uses `base_seed..base_seed + seeds`.
    pub base_seed: u64,
    /// Samples per cell when `--runtime` is omitted.
    pub samples: u32,
    /// Workload models to sweep as an extra grid axis: preset names or
    /// workload-spec JSON paths. Empty = legacy IAT behaviour.
    pub workloads: Vec<String>,
    /// Tail-tolerance policies swept as an extra grid axis: preset
    /// names, policy-spec JSON paths, or `none` for the baseline. Empty
    /// = no policy axis (and byte-identical legacy output).
    pub policies: Vec<String>,
    /// Fault models swept as an extra grid axis: preset names, fault-spec
    /// JSON paths, or `none` for the fault-free baseline. Empty = no
    /// fault axis (and byte-identical legacy output).
    pub faults: Vec<String>,
    /// Application workflows swept as an extra grid axis: preset names,
    /// DAG-spec JSON paths, or `none` for the single-function baseline.
    /// Empty = no app axis (and byte-identical legacy output).
    pub apps: Vec<String>,
    /// Worker threads; 0 selects the machine's parallelism.
    pub threads: usize,
    /// Write the CSV report here instead of stdout.
    pub out: Option<String>,
    /// Event-queue backend (performance knob; results are identical).
    pub queue: QueueKind,
    /// Quantile machinery: exact sorting or streaming sketches.
    pub quantile_mode: QuantileMode,
    /// Time every event dispatch and print a per-event-class cost table
    /// aggregated over all cells (observational; results are identical).
    pub profile_events: bool,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `stellar run …`
    Run(RunOptions),
    /// `stellar sweep …`
    Sweep(SweepOptions),
    /// `stellar trace …`
    Trace(TraceOptions),
    /// `stellar providers`
    Providers,
    /// `stellar dump-provider <name>`
    DumpProvider(String),
    /// `stellar sample-config`
    SampleConfig,
    /// `stellar help` / no args / `--help`.
    Help,
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a usage-style message for unknown commands, unknown flags or
/// missing flag values.
fn parse_queue(s: &str) -> Result<QueueKind, String> {
    QueueKind::parse(s)
        .ok_or_else(|| format!("--queue must be adaptive, calendar or binary-heap, got {s}"))
}

fn parse_quantile_mode(s: &str) -> Result<QuantileMode, String> {
    QuantileMode::parse(s)
        .ok_or_else(|| format!("--quantile-mode must be exact or sketch, got {s}"))
}

pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "providers" => Ok(Command::Providers),
        "sample-config" => Ok(Command::SampleConfig),
        "dump-provider" => {
            let name = it.next().ok_or("dump-provider needs a profile name")?;
            Ok(Command::DumpProvider(name.clone()))
        }
        "run" => {
            let mut static_path = None;
            let mut runtime_path = None;
            let mut workload = None;
            let mut policy = None;
            let mut faults = None;
            let mut app = None;
            let mut samples = 100u32;
            let mut warmup = 0u32;
            let mut provider = "aws-like".to_string();
            let mut seed = 0u64;
            let mut breakdown = false;
            let mut cdf = false;
            let mut csv = None;
            let mut svg = None;
            let mut queue = QueueKind::default();
            let mut quantile_mode = QuantileMode::default();
            let mut profile_events = false;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--static" => static_path = Some(value("--static")?),
                    "--runtime" => runtime_path = Some(value("--runtime")?),
                    "--workload" => workload = Some(value("--workload")?),
                    "--policy" => policy = Some(value("--policy")?),
                    "--faults" => faults = Some(value("--faults")?),
                    "--app" => app = Some(value("--app")?),
                    "--samples" => {
                        samples =
                            value("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?;
                        if samples == 0 {
                            return Err("--samples must be positive".to_string());
                        }
                    }
                    "--warmup" => {
                        warmup =
                            value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
                    }
                    "--provider" => provider = value("--provider")?,
                    "--seed" => {
                        seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                    }
                    "--breakdown" => breakdown = true,
                    "--cdf" => cdf = true,
                    "--csv" => csv = Some(value("--csv")?),
                    "--svg" => svg = Some(value("--svg")?),
                    "--queue" => queue = parse_queue(&value("--queue")?)?,
                    "--quantile-mode" => {
                        quantile_mode = parse_quantile_mode(&value("--quantile-mode")?)?;
                    }
                    "--profile-events" => profile_events = true,
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            if workload.is_none()
                && app.is_none()
                && (static_path.is_none() || runtime_path.is_none())
            {
                return Err(
                    "run needs --static <file> and --runtime <file>, or --workload <file|preset>, \
                     or --app <file|preset>"
                        .to_string(),
                );
            }
            Ok(Command::Run(RunOptions {
                static_path,
                runtime_path,
                workload,
                policy,
                faults,
                app,
                samples,
                warmup,
                provider,
                seed,
                breakdown,
                cdf,
                csv,
                svg,
                queue,
                quantile_mode,
                profile_events,
            }))
        }
        "sweep" => {
            let mut static_path = None;
            let mut runtime_path = None;
            let mut providers =
                vec!["aws-like".to_string(), "google-like".to_string(), "azure-like".to_string()];
            let mut seeds = 4u64;
            let mut base_seed = 0u64;
            let mut samples = 100u32;
            let mut workloads: Vec<String> = Vec::new();
            let mut policies: Vec<String> = Vec::new();
            let mut faults: Vec<String> = Vec::new();
            let mut apps: Vec<String> = Vec::new();
            let mut threads = 0usize;
            let mut out = None;
            let mut queue = QueueKind::default();
            let mut quantile_mode = QuantileMode::default();
            let mut profile_events = false;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--static" => static_path = Some(value("--static")?),
                    "--runtime" => runtime_path = Some(value("--runtime")?),
                    "--providers" => {
                        providers = value("--providers")?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                        if providers.is_empty() {
                            return Err("--providers needs at least one name".to_string());
                        }
                    }
                    "--seeds" => {
                        seeds = value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?;
                        if seeds == 0 {
                            return Err("--seeds must be positive".to_string());
                        }
                    }
                    "--base-seed" => {
                        base_seed = value("--base-seed")?
                            .parse()
                            .map_err(|e| format!("--base-seed: {e}"))?;
                    }
                    "--samples" => {
                        samples =
                            value("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?;
                        if samples == 0 {
                            return Err("--samples must be positive".to_string());
                        }
                    }
                    "--threads" => {
                        threads =
                            value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                    }
                    "--workload" | "--workloads" => {
                        workloads = value("--workload")?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                        if workloads.is_empty() {
                            return Err("--workload needs at least one name or file".to_string());
                        }
                    }
                    "--policy" | "--policies" => {
                        policies = value("--policy")?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                        if policies.is_empty() {
                            return Err("--policy needs at least one name or file".to_string());
                        }
                    }
                    "--faults" => {
                        faults = value("--faults")?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                        if faults.is_empty() {
                            return Err("--faults needs at least one name or file".to_string());
                        }
                    }
                    "--app" | "--apps" => {
                        apps = value("--app")?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                        if apps.is_empty() {
                            return Err("--app needs at least one name or file".to_string());
                        }
                    }
                    "--out" => out = Some(value("--out")?),
                    "--queue" => queue = parse_queue(&value("--queue")?)?,
                    "--quantile-mode" => {
                        quantile_mode = parse_quantile_mode(&value("--quantile-mode")?)?;
                    }
                    "--profile-events" => profile_events = true,
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            Ok(Command::Sweep(SweepOptions {
                static_path,
                runtime_path,
                providers,
                seeds,
                base_seed,
                samples,
                workloads,
                policies,
                faults,
                apps,
                threads,
                out,
                queue,
                quantile_mode,
                profile_events,
            }))
        }
        "trace" => {
            let mut static_path = None;
            let mut runtime_path = None;
            let mut provider = "aws-like".to_string();
            let mut seed = 0u64;
            let mut format = TraceFormat::Jsonl;
            let mut out = None;
            let mut capacity = 1 << 20;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--static" => static_path = Some(value("--static")?),
                    "--runtime" => runtime_path = Some(value("--runtime")?),
                    "--provider" => provider = value("--provider")?,
                    "--seed" => {
                        seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                    }
                    "--format" => {
                        format = match value("--format")?.as_str() {
                            "jsonl" => TraceFormat::Jsonl,
                            "csv" => TraceFormat::Csv,
                            other => {
                                return Err(format!("--format must be jsonl or csv, got {other}"))
                            }
                        };
                    }
                    "--out" => out = Some(value("--out")?),
                    "--capacity" => {
                        capacity =
                            value("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?;
                        if capacity == 0 {
                            return Err("--capacity must be positive".to_string());
                        }
                    }
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            Ok(Command::Trace(TraceOptions {
                static_path,
                runtime_path,
                provider,
                seed,
                format,
                out,
                capacity,
            }))
        }
        other => Err(format!("unknown command: {other} (try `stellar help`)")),
    }
}

/// The help text.
pub const USAGE: &str = "\
STeLLAR — Serverless Tail-Latency Analyzer (simulation-backed reproduction)

USAGE:
    stellar run --static <fns.json> --runtime <load.json> [OPTIONS]
    stellar run --workload <preset|file> [OPTIONS]
    stellar sweep [OPTIONS]
    stellar trace [OPTIONS]
    stellar providers
    stellar dump-provider <aws-like|google-like|azure-like>
    stellar sample-config
    stellar help

RUN OPTIONS:
    --workload <name|file>   workload model: a preset (poisson, mmpp-burst,
                             diurnal, trace-replay, closed-loop,
                             multi-tenant) or a workload-spec JSON;
                             supersedes the runtime config's IAT and makes
                             --static/--runtime optional
    --policy <name|file>     tail-tolerance policy: a preset (hedge-p95,
                             hedge-p99, hedge-200ms, retry-backoff,
                             deadline-2s, tied-2, hedge-deadline), a
                             policy-spec JSON, or none (baseline)
    --faults <name|file>     fault model: a preset (throttle-5pct,
                             crash-2pct, purge-storm, outage-10s,
                             brownout-2x, shed-64, outage-throttle), a
                             fault-spec JSON, or none (fault-free)
    --app <name|file>        application workflow: a preset (web-api,
                             thumbnail, ml-inference, video, map-reduce,
                             scatter-gather), a DAG-spec JSON, or none
                             (single-function baseline); replaces the
                             static function set, makes --static/--runtime
                             optional, and prints a per-stage breakdown
                             with join straggler amplification
    --samples <n>            measured arrivals without --runtime
                             [default: 100]
    --warmup <n>             warm-up arrivals without --runtime [default: 0]
    --provider <name|file>   built-in profile or provider-config JSON
                             [default: aws-like]
    --seed <n>               deterministic seed [default: 0]
    --breakdown              print per-component latency attribution
    --cdf                    print an ASCII CDF of end-to-end latency
    --csv <file>             write quantile CSV
    --svg <file>             write an SVG CDF plot
    --queue <kind>           event queue: adaptive (binary heap that promotes
                             to the calendar wheel on large runs), calendar
                             or binary-heap [default: adaptive]
    --quantile-mode <mode>   exact (sort all samples) or sketch (stream
                             through t-digests; constant memory)
                             [default: exact]
    --profile-events         time every event dispatch and print a
                             per-event-class cost table (observational:
                             results are bit-identical)

SWEEP OPTIONS:
    --static <file>          static function config [default: one function]
    --runtime <file>         runtime config [default: --samples invocations]
    --providers <a,b,c>      comma-separated profiles or config paths
                             [default: aws-like,google-like,azure-like]
    --seeds <n>              seeds per provider [default: 4]
    --base-seed <n>          first seed [default: 0]
    --samples <n>            samples per cell without --runtime [default: 100]
    --workload <a,b,c>       workload models swept as an extra grid axis:
                             comma-separated presets or spec JSON paths
    --policy <a,b,c>         tail-tolerance policies swept as an extra grid
                             axis: comma-separated presets, spec JSON paths
                             or none; adds policy columns to the CSV
    --faults <a,b,c>         fault models swept as an extra grid axis:
                             comma-separated presets, spec JSON paths or
                             none; adds retry_amp/goodput columns to the CSV
    --app <a,b,c>            application workflows swept as an extra grid
                             axis: comma-separated presets, DAG-spec JSON
                             paths or none; adds a join_amp column to the
                             CSV (labels: provider@app)
    --threads <n>            worker threads, 0 = all cores [default: 0]
    --out <file>             write the CSV report here instead of stdout
    --queue <kind>           event queue: adaptive, calendar or binary-heap
                             [default: adaptive]
    --quantile-mode <mode>   exact or sketch; sketch keeps million-sample
                             sweeps in constant memory [default: exact]
    --profile-events         per-event-class cost table aggregated over
                             all cells (observational)

TRACE OPTIONS:
    --static <file>          static function config [default: one function]
    --runtime <file>         runtime config [default: 100 invocations]
    --provider <name|file>   as for run [default: aws-like]
    --seed <n>               deterministic seed [default: 0]
    --format <jsonl|csv>     export format [default: jsonl]
    --out <file>             write the export here instead of stdout
    --capacity <n>           span ring capacity [default: 1048576]
";

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_with_all_flags() {
        let cmd = parse_args(&strs(&[
            "run",
            "--static",
            "s.json",
            "--runtime",
            "r.json",
            "--provider",
            "google-like",
            "--seed",
            "9",
            "--breakdown",
            "--cdf",
            "--csv",
            "out.csv",
            "--svg",
            "out.svg",
            "--queue",
            "binary-heap",
            "--quantile-mode",
            "sketch",
            "--profile-events",
        ]))
        .unwrap();
        let Command::Run(opts) = cmd else { panic!("expected run") };
        assert_eq!(opts.static_path.as_deref(), Some("s.json"));
        assert_eq!(opts.runtime_path.as_deref(), Some("r.json"));
        assert_eq!(opts.workload, None);
        assert_eq!(opts.policy, None);
        assert_eq!(opts.provider, "google-like");
        assert_eq!(opts.seed, 9);
        assert!(opts.breakdown && opts.cdf);
        assert_eq!(opts.csv.as_deref(), Some("out.csv"));
        assert_eq!(opts.svg.as_deref(), Some("out.svg"));
        assert_eq!(opts.queue, QueueKind::BinaryHeap);
        assert_eq!(opts.quantile_mode, QuantileMode::Sketch);
        assert!(opts.profile_events);
    }

    #[test]
    fn run_defaults() {
        let cmd = parse_args(&strs(&["run", "--static", "s.json", "--runtime", "r.json"])).unwrap();
        let Command::Run(opts) = cmd else { panic!("expected run") };
        assert_eq!(opts.provider, "aws-like");
        assert_eq!(opts.seed, 0);
        assert!(!opts.breakdown && !opts.cdf);
        assert_eq!(opts.queue, QueueKind::Adaptive);
        assert_eq!(opts.quantile_mode, QuantileMode::Exact);
        assert!(!opts.profile_events);
    }

    #[test]
    fn bad_queue_or_quantile_mode_errors() {
        let base = ["run", "--static", "a", "--runtime", "b"];
        let with = |flag: &str, v: &str| {
            let mut args = base.to_vec();
            args.extend([flag, v]);
            parse_args(&strs(&args))
        };
        assert!(with("--queue", "fifo").is_err());
        assert!(with("--quantile-mode", "histogram").is_err());
        assert!(with("--queue", "heap").is_ok(), "binary-heap alias");
        assert!(with("--queue", "adaptive").is_ok(), "adaptive backend");
        assert!(parse_args(&strs(&["sweep", "--queue", "fifo"])).is_err());
        assert!(parse_args(&strs(&["sweep", "--quantile-mode", "histogram"])).is_err());
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse_args(&strs(&["run", "--static", "s.json"])).is_err());
        assert!(parse_args(&strs(&["run"])).is_err());
        assert!(parse_args(&strs(&["run", "--static"])).is_err());
    }

    #[test]
    fn workload_flag_makes_configs_optional() {
        let cmd = parse_args(&strs(&[
            "run",
            "--workload",
            "mmpp-burst",
            "--samples",
            "500",
            "--warmup",
            "20",
        ]))
        .unwrap();
        let Command::Run(opts) = cmd else { panic!("expected run") };
        assert_eq!(opts.workload.as_deref(), Some("mmpp-burst"));
        assert_eq!(opts.static_path, None);
        assert_eq!(opts.runtime_path, None);
        assert_eq!(opts.samples, 500);
        assert_eq!(opts.warmup, 20);
        assert!(parse_args(&strs(&["run", "--workload", "x", "--samples", "0"])).is_err());
    }

    #[test]
    fn sweep_workload_axis_parses_comma_separated() {
        let cmd = parse_args(&strs(&["sweep", "--workload", "poisson,mmpp-burst"])).unwrap();
        let Command::Sweep(opts) = cmd else { panic!("expected sweep") };
        assert_eq!(opts.workloads, ["poisson", "mmpp-burst"]);
        assert!(parse_args(&strs(&["sweep", "--workload", ""])).is_err());
    }

    #[test]
    fn run_policy_flag_parses() {
        let cmd =
            parse_args(&strs(&["run", "--workload", "poisson", "--policy", "hedge-p95"])).unwrap();
        let Command::Run(opts) = cmd else { panic!("expected run") };
        assert_eq!(opts.policy.as_deref(), Some("hedge-p95"));
        assert!(parse_args(&strs(&["run", "--workload", "poisson", "--policy"])).is_err());
    }

    #[test]
    fn sweep_policy_axis_parses_comma_separated() {
        let cmd = parse_args(&strs(&["sweep", "--policy", "none,hedge-p95,tied-2"])).unwrap();
        let Command::Sweep(opts) = cmd else { panic!("expected sweep") };
        assert_eq!(opts.policies, ["none", "hedge-p95", "tied-2"]);
        assert!(parse_args(&strs(&["sweep", "--policies", "none"])).is_ok(), "plural alias");
        assert!(parse_args(&strs(&["sweep", "--policy", ""])).is_err());
    }

    #[test]
    fn run_faults_flag_parses() {
        let cmd =
            parse_args(&strs(&["run", "--workload", "poisson", "--faults", "outage-10s"])).unwrap();
        let Command::Run(opts) = cmd else { panic!("expected run") };
        assert_eq!(opts.faults.as_deref(), Some("outage-10s"));
        assert!(parse_args(&strs(&["run", "--workload", "poisson", "--faults"])).is_err());
    }

    #[test]
    fn sweep_faults_axis_parses_comma_separated() {
        let cmd =
            parse_args(&strs(&["sweep", "--faults", "none,throttle-5pct,outage-10s"])).unwrap();
        let Command::Sweep(opts) = cmd else { panic!("expected sweep") };
        assert_eq!(opts.faults, ["none", "throttle-5pct", "outage-10s"]);
        assert!(parse_args(&strs(&["sweep", "--faults", ""])).is_err());
    }

    #[test]
    fn run_app_flag_parses_and_relaxes_configs() {
        let cmd = parse_args(&strs(&["run", "--app", "video", "--samples", "30"])).unwrap();
        let Command::Run(opts) = cmd else { panic!("expected run") };
        assert_eq!(opts.app.as_deref(), Some("video"));
        assert_eq!(opts.static_path, None);
        assert_eq!(opts.runtime_path, None);
        assert_eq!(opts.samples, 30);
        assert!(parse_args(&strs(&["run", "--app"])).is_err());
    }

    #[test]
    fn sweep_app_axis_parses_comma_separated() {
        let cmd = parse_args(&strs(&["sweep", "--app", "none,web-api,video"])).unwrap();
        let Command::Sweep(opts) = cmd else { panic!("expected sweep") };
        assert_eq!(opts.apps, ["none", "web-api", "video"]);
        assert!(parse_args(&strs(&["sweep", "--apps", "thumbnail"])).is_ok(), "plural alias");
        assert!(parse_args(&strs(&["sweep", "--app", ""])).is_err());
    }

    #[test]
    fn unknown_flags_and_commands_error() {
        assert!(parse_args(&strs(&["run", "--static", "a", "--runtime", "b", "--bogus"])).is_err());
        assert!(parse_args(&strs(&["frobnicate"])).is_err());
    }

    #[test]
    fn simple_commands() {
        assert_eq!(parse_args(&strs(&["providers"])).unwrap(), Command::Providers);
        assert_eq!(
            parse_args(&strs(&["dump-provider", "azure-like"])).unwrap(),
            Command::DumpProvider("azure-like".into())
        );
        assert_eq!(parse_args(&strs(&["sample-config"])).unwrap(), Command::SampleConfig);
        assert_eq!(parse_args(&strs(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_sweep_with_all_flags() {
        let cmd = parse_args(&strs(&[
            "sweep",
            "--static",
            "s.json",
            "--runtime",
            "r.json",
            "--providers",
            "aws-like,azure-like",
            "--seeds",
            "6",
            "--base-seed",
            "100",
            "--samples",
            "50",
            "--threads",
            "8",
            "--out",
            "report.csv",
            "--queue",
            "binary-heap",
            "--quantile-mode",
            "sketch",
            "--profile-events",
        ]))
        .unwrap();
        let Command::Sweep(opts) = cmd else { panic!("expected sweep") };
        assert_eq!(opts.static_path.as_deref(), Some("s.json"));
        assert_eq!(opts.runtime_path.as_deref(), Some("r.json"));
        assert_eq!(opts.providers, ["aws-like", "azure-like"]);
        assert_eq!(opts.seeds, 6);
        assert_eq!(opts.base_seed, 100);
        assert_eq!(opts.samples, 50);
        assert_eq!(opts.workloads, Vec::<String>::new());
        assert_eq!(opts.policies, Vec::<String>::new());
        assert_eq!(opts.faults, Vec::<String>::new());
        assert_eq!(opts.apps, Vec::<String>::new());
        assert_eq!(opts.threads, 8);
        assert_eq!(opts.out.as_deref(), Some("report.csv"));
        assert_eq!(opts.queue, QueueKind::BinaryHeap);
        assert_eq!(opts.quantile_mode, QuantileMode::Sketch);
        assert!(opts.profile_events);
    }

    #[test]
    fn sweep_defaults_and_errors() {
        let Command::Sweep(opts) = parse_args(&strs(&["sweep"])).unwrap() else {
            panic!("expected sweep")
        };
        assert_eq!(opts.providers, ["aws-like", "google-like", "azure-like"]);
        assert_eq!(opts.seeds, 4);
        assert_eq!(opts.base_seed, 0);
        assert_eq!(opts.samples, 100);
        assert_eq!(opts.threads, 0);
        assert_eq!(opts.out, None);
        assert_eq!(opts.queue, QueueKind::Adaptive);
        assert_eq!(opts.quantile_mode, QuantileMode::Exact);
        assert!(!opts.profile_events);
        assert!(parse_args(&strs(&["sweep", "--seeds", "0"])).is_err());
        assert!(parse_args(&strs(&["sweep", "--samples", "0"])).is_err());
        assert!(parse_args(&strs(&["sweep", "--providers", ""])).is_err());
        assert!(parse_args(&strs(&["sweep", "--bogus"])).is_err());
    }

    #[test]
    fn parses_trace_with_all_flags() {
        let cmd = parse_args(&strs(&[
            "trace",
            "--static",
            "s.json",
            "--runtime",
            "r.json",
            "--provider",
            "azure-like",
            "--seed",
            "4",
            "--format",
            "csv",
            "--out",
            "trace.csv",
            "--capacity",
            "512",
        ]))
        .unwrap();
        let Command::Trace(opts) = cmd else { panic!("expected trace") };
        assert_eq!(opts.static_path.as_deref(), Some("s.json"));
        assert_eq!(opts.runtime_path.as_deref(), Some("r.json"));
        assert_eq!(opts.provider, "azure-like");
        assert_eq!(opts.seed, 4);
        assert_eq!(opts.format, TraceFormat::Csv);
        assert_eq!(opts.out.as_deref(), Some("trace.csv"));
        assert_eq!(opts.capacity, 512);
    }

    #[test]
    fn trace_defaults_and_errors() {
        let Command::Trace(opts) = parse_args(&strs(&["trace"])).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(opts.static_path, None);
        assert_eq!(opts.provider, "aws-like");
        assert_eq!(opts.format, TraceFormat::Jsonl);
        assert_eq!(opts.out, None);
        assert_eq!(opts.capacity, 1 << 20);
        assert!(parse_args(&strs(&["trace", "--format", "xml"])).is_err());
        assert!(parse_args(&strs(&["trace", "--capacity", "0"])).is_err());
        assert!(parse_args(&strs(&["trace", "--bogus"])).is_err());
    }

    #[test]
    fn bad_seed_errors() {
        assert!(parse_args(&strs(&[
            "run",
            "--static",
            "a",
            "--runtime",
            "b",
            "--seed",
            "not-a-number"
        ]))
        .is_err());
    }
}
