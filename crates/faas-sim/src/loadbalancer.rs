//! The load balancer's burst dispatch stage.
//!
//! Requests that arrive simultaneously drain through a serial dispatch
//! server (one per provider region in this model). Per-request service
//! time is sampled from the provider's distribution and degrades as the
//! backlog grows — the mechanism behind the burst-size sensitivity of
//! §VI-D1, most pronounced on Azure (33× median at burst 500).

use simkit::ratelimit::SerialServer;
use simkit::rng::Rng;
use simkit::time::SimTime;

use crate::config::DispatchConfig;

/// Outcome of routing one request through the dispatch stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchOutcome {
    /// Time the request exits the dispatch stage.
    pub ready_at: SimTime,
    /// Time spent waiting behind earlier requests, ms.
    pub wait_ms: f64,
    /// This request's own service time, ms.
    pub service_ms: f64,
}

/// Serial burst-dispatch server with load-dependent degradation.
#[derive(Debug)]
pub struct DispatchServer {
    cfg: DispatchConfig,
    server: SerialServer,
    /// Exit times of dispatched-but-not-yet-exited requests (the backlog).
    pending_exits: std::collections::VecDeque<SimTime>,
}

impl DispatchServer {
    /// Creates a dispatch server from the provider configuration.
    pub fn new(cfg: DispatchConfig) -> DispatchServer {
        DispatchServer {
            cfg,
            server: SerialServer::new(),
            pending_exits: std::collections::VecDeque::new(),
        }
    }

    /// Routes a request arriving at `now`.
    pub fn dispatch(&mut self, now: SimTime, rng: &mut Rng) -> DispatchOutcome {
        while self.pending_exits.front().is_some_and(|&t| t <= now) {
            self.pending_exits.pop_front();
        }
        let backlog = self.pending_exits.len() as f64;
        let degradation = 1.0 + self.cfg.degradation_per_100_backlog * backlog / 100.0;
        let service_ms = self.cfg.service_ms.sample(rng) * degradation;
        let (start, end) = self.server.reserve(now, SimTime::from_millis(service_ms));
        self.pending_exits.push_back(end);
        DispatchOutcome { ready_at: end, wait_ms: (start - now).as_millis(), service_ms }
    }

    /// Whether this request should miss the idle-instance lookup and get a
    /// dedicated cold start (paper §VI-D1 tail behaviour).
    pub fn rolls_miss(&self, rng: &mut Rng) -> bool {
        self.cfg.miss_prob > 0.0 && rng.bernoulli(self.cfg.miss_prob)
    }

    /// Requests dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.server.served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::dist::Dist;

    fn cfg(service: f64, degradation: f64, miss: f64) -> DispatchConfig {
        DispatchConfig {
            service_ms: Dist::constant(service),
            degradation_per_100_backlog: degradation,
            miss_prob: miss,
        }
    }

    #[test]
    fn serial_drain_of_simultaneous_burst() {
        let mut d = DispatchServer::new(cfg(2.0, 0.0, 0.0));
        let mut rng = Rng::seed_from(1);
        let t0 = SimTime::ZERO;
        let a = d.dispatch(t0, &mut rng);
        let b = d.dispatch(t0, &mut rng);
        let c = d.dispatch(t0, &mut rng);
        assert_eq!(a.ready_at, SimTime::from_millis(2.0));
        assert_eq!(b.ready_at, SimTime::from_millis(4.0));
        assert_eq!(c.ready_at, SimTime::from_millis(6.0));
        assert_eq!(c.wait_ms, 4.0);
        assert_eq!(d.dispatched(), 3);
    }

    #[test]
    fn degradation_slows_large_backlogs() {
        let mut fast = DispatchServer::new(cfg(1.0, 0.0, 0.0));
        let mut slow = DispatchServer::new(cfg(1.0, 200.0, 0.0));
        let mut rng1 = Rng::seed_from(1);
        let mut rng2 = Rng::seed_from(1);
        let t0 = SimTime::ZERO;
        let mut last_fast = SimTime::ZERO;
        let mut last_slow = SimTime::ZERO;
        for _ in 0..200 {
            last_fast = fast.dispatch(t0, &mut rng1).ready_at;
            last_slow = slow.dispatch(t0, &mut rng2).ready_at;
        }
        assert_eq!(last_fast, SimTime::from_millis(200.0));
        assert!(
            last_slow > last_fast * 2,
            "degraded drain should be superlinear: {last_slow} vs {last_fast}"
        );
    }

    #[test]
    fn idle_server_has_no_wait() {
        let mut d = DispatchServer::new(cfg(1.0, 100.0, 0.0));
        let mut rng = Rng::seed_from(1);
        let out = d.dispatch(SimTime::from_secs(5.0), &mut rng);
        assert_eq!(out.wait_ms, 0.0);
        assert_eq!(out.service_ms, 1.0, "no degradation when idle");
    }

    #[test]
    fn miss_probability_zero_never_misses() {
        let d = DispatchServer::new(cfg(1.0, 0.0, 0.0));
        let mut rng = Rng::seed_from(1);
        assert!((0..1000).all(|_| !d.rolls_miss(&mut rng)));
    }

    #[test]
    fn miss_probability_one_always_misses() {
        let d = DispatchServer::new(cfg(1.0, 0.0, 1.0));
        let mut rng = Rng::seed_from(1);
        assert!((0..100).all(|_| d.rolls_miss(&mut rng)));
    }
}
