//! DAG workflow specifications: fan-out/fan-in generalisation of the
//! linear [`crate::spec::ChainSpec`].
//!
//! A [`DagSpec`] names its nodes and wires them with per-edge transfer
//! modes and payload-size distributions; fan-in nodes carry a
//! [`JoinSpec`] selecting all-of-n or k-of-n barrier semantics.
//! [`DagSpec::compile`] validates the graph (unique names, known edge
//! endpoints, a single root, reachability, acyclicity with a useful error
//! naming the offending nodes) and lowers it into a dense node-indexed
//! [`DagPlan`] that [`crate::cloud::CloudSim::deploy_dag`] consumes.
//!
//! Linear segments — a single out-edge into a node of in-degree one with
//! a constant payload (see [`PlanEdge::constant_payload`]) — are compiled
//! down to the legacy `ChainSpec` hot path at deployment, keeping linear
//! chains byte-identical as the degenerate single-path DAG.

use serde::{Deserialize, Serialize};
use simkit::dist::Dist;

use crate::types::{DeploymentMethod, Runtime, TransferMode};

/// Fan-in barrier semantics of a join node (in-degree ≥ 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JoinSpec {
    /// Fire once every inbound branch has arrived.
    All,
    /// Fire at the k-th arrival; later branches are stragglers whose
    /// producers resume immediately without waiting for the join.
    KOfN {
        /// Arrivals required to fire (`1 ≤ k ≤ in-degree`).
        k: u32,
    },
}

/// One named node of a [`DagSpec`]: the function deployed for this stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagNodeSpec {
    /// Node name, unique within the DAG.
    pub name: String,
    /// Language runtime.
    #[serde(default = "default_runtime")]
    pub runtime: Runtime,
    /// Packaging / deployment method.
    #[serde(default = "default_deployment")]
    pub deployment: DeploymentMethod,
    /// Instance memory size, MB.
    #[serde(default = "default_memory_mb")]
    pub memory_mb: u32,
    /// Extra image payload, decimal MB.
    #[serde(default)]
    pub extra_image_mb: f64,
    /// Execution-time model, ms.
    #[serde(default = "default_exec_ms")]
    pub exec_ms: Dist,
    /// Barrier semantics; only meaningful (and only allowed) on nodes
    /// with in-degree ≥ 2. Defaults to [`JoinSpec::All`] when absent.
    #[serde(default)]
    pub join: Option<JoinSpec>,
}

fn default_runtime() -> Runtime {
    Runtime::Python3
}

fn default_deployment() -> DeploymentMethod {
    DeploymentMethod::Zip
}

fn default_memory_mb() -> u32 {
    2048
}

fn default_exec_ms() -> Dist {
    Dist::constant(0.0)
}

impl DagNodeSpec {
    /// A node with paper-default settings (Python 3, ZIP, 2048 MB,
    /// immediate return).
    pub fn new<S: Into<String>>(name: S) -> DagNodeSpec {
        DagNodeSpec {
            name: name.into(),
            runtime: default_runtime(),
            deployment: default_deployment(),
            memory_mb: default_memory_mb(),
            extra_image_mb: 0.0,
            exec_ms: default_exec_ms(),
            join: None,
        }
    }

    /// Sets the execution-time distribution, ms.
    #[must_use]
    pub fn exec_ms(mut self, dist: Dist) -> Self {
        self.exec_ms = dist;
        self
    }

    /// Sets the instance memory, MB.
    #[must_use]
    pub fn memory_mb(mut self, mb: u32) -> Self {
        self.memory_mb = mb;
        self
    }

    /// Sets the language runtime.
    #[must_use]
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the packaging / deployment method.
    #[must_use]
    pub fn deployment(mut self, deployment: DeploymentMethod) -> Self {
        self.deployment = deployment;
        self
    }

    /// Sets the barrier semantics for a join node.
    #[must_use]
    pub fn join(mut self, join: JoinSpec) -> Self {
        self.join = Some(join);
        self
    }
}

/// One directed edge of a [`DagSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagEdgeSpec {
    /// Producer node name.
    pub from: String,
    /// Consumer node name.
    pub to: String,
    /// Payload transport.
    #[serde(default = "default_mode")]
    pub mode: TransferMode,
    /// Payload-size distribution, bytes (sampled per invocation, clamped
    /// to at least one byte).
    #[serde(default = "default_payload")]
    pub payload: Dist,
}

fn default_mode() -> TransferMode {
    TransferMode::Inline
}

fn default_payload() -> Dist {
    Dist::constant(1024.0)
}

/// A validated workflow: named nodes plus directed edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagSpec {
    /// Workflow name (reporting only).
    pub name: String,
    /// Stage nodes.
    pub nodes: Vec<DagNodeSpec>,
    /// Directed edges between nodes.
    #[serde(default)]
    pub edges: Vec<DagEdgeSpec>,
}

impl DagSpec {
    /// Starts an empty workflow named `name`.
    pub fn new<S: Into<String>>(name: S) -> DagSpec {
        DagSpec { name: name.into(), nodes: Vec::new(), edges: Vec::new() }
    }

    /// Adds a node (builder style).
    #[must_use]
    pub fn node(mut self, node: DagNodeSpec) -> Self {
        self.nodes.push(node);
        self
    }

    /// Adds an edge (builder style).
    #[must_use]
    pub fn edge<S: Into<String>>(
        mut self,
        from: S,
        to: S,
        mode: TransferMode,
        payload: Dist,
    ) -> Self {
        self.edges.push(DagEdgeSpec { from: from.into(), to: to.into(), mode, payload });
        self
    }

    /// Validates the workflow; see [`DagSpec::compile`] for the checks.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.compile().map(|_| ())
    }

    /// Validates and lowers the workflow into a dense [`DagPlan`].
    ///
    /// Checks, in order: non-empty name and node set; unique node names;
    /// per-node field validity; edges reference known nodes, no
    /// self-edges, no duplicate edges, valid payload distributions;
    /// exactly one root (in-degree 0); join specs only on fan-in nodes
    /// with k within `1..=in-degree`; acyclicity (cycles are reported
    /// with the names of the nodes involved); and reachability of every
    /// node from the root.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn compile(&self) -> Result<DagPlan, String> {
        if self.name.is_empty() {
            return Err("workflow name is empty".to_string());
        }
        if self.nodes.is_empty() {
            return Err(format!("{}: workflow has no nodes", self.name));
        }
        let mut index = std::collections::BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.name.is_empty() {
                return Err(format!("{}: node {i} has an empty name", self.name));
            }
            if index.insert(node.name.as_str(), i).is_some() {
                return Err(format!("{}: duplicate node name '{}'", self.name, node.name));
            }
            if node.memory_mb == 0 {
                return Err(format!("{}/{}: memory_mb must be positive", self.name, node.name));
            }
            if !node.extra_image_mb.is_finite() || node.extra_image_mb < 0.0 {
                return Err(format!(
                    "{}/{}: invalid extra_image_mb {}",
                    self.name, node.name, node.extra_image_mb
                ));
            }
            node.exec_ms
                .validate()
                .map_err(|e| format!("{}/{}: exec_ms: {e}", self.name, node.name))?;
        }

        let n = self.nodes.len();
        let mut out: Vec<Vec<PlanEdge>> = vec![Vec::new(); n];
        let mut in_degree = vec![0u32; n];
        let mut seen_edges = std::collections::BTreeSet::new();
        for edge in &self.edges {
            let Some(&from) = index.get(edge.from.as_str()) else {
                return Err(format!("{}: edge from unknown node '{}'", self.name, edge.from));
            };
            let Some(&to) = index.get(edge.to.as_str()) else {
                return Err(format!("{}: edge to unknown node '{}'", self.name, edge.to));
            };
            if from == to {
                return Err(format!("{}: self-edge on node '{}'", self.name, edge.from));
            }
            if !seen_edges.insert((from, to)) {
                return Err(format!(
                    "{}: duplicate edge '{}' -> '{}'",
                    self.name, edge.from, edge.to
                ));
            }
            edge.payload.validate().map_err(|e| {
                format!("{}: edge '{}' -> '{}': payload: {e}", self.name, edge.from, edge.to)
            })?;
            if let Dist::Constant { value } = edge.payload {
                if value < 1.0 {
                    return Err(format!(
                        "{}: edge '{}' -> '{}': payload must be at least one byte",
                        self.name, edge.from, edge.to
                    ));
                }
            }
            out[from].push(PlanEdge { to, mode: edge.mode, payload: edge.payload.clone() });
            in_degree[to] += 1;
        }

        let roots: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        match roots.as_slice() {
            [_] => {}
            [] => {
                return Err(format!(
                    "{}: no root node (every node has an inbound edge — the graph is cyclic)",
                    self.name
                ))
            }
            many => {
                let names: Vec<&str> = many.iter().map(|&i| self.nodes[i].name.as_str()).collect();
                return Err(format!(
                    "{}: multiple root nodes ({}); a workflow needs exactly one entry point",
                    self.name,
                    names.join(", ")
                ));
            }
        }
        let root = roots[0];

        // Join semantics: only fan-in nodes may carry a JoinSpec, and
        // k-of-n must be satisfiable.
        let mut join_k = vec![0u32; n];
        for (i, node) in self.nodes.iter().enumerate() {
            join_k[i] = match (node.join, in_degree[i]) {
                (Some(_), d) if d < 2 => {
                    return Err(format!(
                        "{}/{}: join semantics on a node with in-degree {d} (joins need ≥ 2 inbound edges)",
                        self.name, node.name
                    ));
                }
                (Some(JoinSpec::KOfN { k }), d) if k == 0 || k > d => {
                    return Err(format!(
                        "{}/{}: k-of-n join with k={k} outside 1..={d}",
                        self.name, node.name
                    ));
                }
                (Some(JoinSpec::KOfN { k }), _) => k,
                (Some(JoinSpec::All), d) | (None, d) => d,
            };
        }

        // Kahn topological sort; leftovers are exactly the nodes on (or
        // downstream of) a cycle — name the cyclic ones in the error.
        let mut remaining = in_degree.clone();
        let mut topo = Vec::with_capacity(n);
        let mut ready: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        ready.push_back(root);
        while let Some(i) = ready.pop_front() {
            topo.push(i);
            for e in &out[i] {
                remaining[e.to] -= 1;
                if remaining[e.to] == 0 {
                    ready.push_back(e.to);
                }
            }
        }
        if topo.len() != n {
            let mut stuck: Vec<&str> =
                (0..n).filter(|&i| remaining[i] > 0).map(|i| self.nodes[i].name.as_str()).collect();
            stuck.sort_unstable();
            return Err(format!(
                "{}: cycle detected — nodes {} can never run because each waits on the other(s); remove an edge to break the loop",
                self.name,
                stuck.join(", ")
            ));
        }

        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| PlanNode {
                name: node.name.clone(),
                runtime: node.runtime,
                deployment: node.deployment,
                memory_mb: node.memory_mb,
                extra_image_mb: node.extra_image_mb,
                exec_ms: node.exec_ms.clone(),
                out: std::mem::take(&mut out[i]),
                in_degree: in_degree[i],
                join_k: join_k[i],
            })
            .collect();
        Ok(DagPlan { name: self.name.clone(), nodes, root, topo })
    }
}

/// One compiled edge of a [`DagPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEdge {
    /// Target node index.
    pub to: usize,
    /// Payload transport.
    pub mode: TransferMode,
    /// Payload-size distribution, bytes.
    pub payload: Dist,
}

impl PlanEdge {
    /// The constant payload size, when the distribution is degenerate.
    pub fn constant_payload(&self) -> Option<u64> {
        match self.payload {
            Dist::Constant { value } => Some(value.round().max(1.0) as u64),
            _ => None,
        }
    }
}

/// One compiled node of a [`DagPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Node name (from the spec).
    pub name: String,
    /// Language runtime.
    pub runtime: Runtime,
    /// Packaging / deployment method.
    pub deployment: DeploymentMethod,
    /// Instance memory size, MB.
    pub memory_mb: u32,
    /// Extra image payload, decimal MB.
    pub extra_image_mb: f64,
    /// Execution-time model, ms.
    pub exec_ms: Dist,
    /// Out-edges, in spec order.
    pub out: Vec<PlanEdge>,
    /// Number of inbound edges.
    pub in_degree: u32,
    /// Arrivals required to fire the node's barrier: equals `in_degree`
    /// for all-of-n joins and plain nodes, `k` for k-of-n joins.
    pub join_k: u32,
}

impl PlanNode {
    /// Whether this node is a fan-in barrier.
    pub fn is_join(&self) -> bool {
        self.in_degree >= 2
    }
}

/// A validated, dense, node-indexed workflow ready for deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DagPlan {
    /// Workflow name.
    pub name: String,
    /// Nodes, indexed as in the source spec.
    pub nodes: Vec<PlanNode>,
    /// Index of the unique entry node (in-degree 0).
    pub root: usize,
    /// One topological order (root first).
    pub topo: Vec<usize>,
}

impl DagPlan {
    /// A linear-chain plan equivalent to the legacy `ChainSpec` shape:
    /// `length` nodes in a path, every hop carrying `payload_bytes` over
    /// `mode`. The degenerate DAG used by the byte-identity tests.
    pub fn linear(
        name: &str,
        length: usize,
        mode: TransferMode,
        payload_bytes: u64,
        exec_ms: Dist,
    ) -> DagPlan {
        assert!(length >= 1, "a linear workflow needs at least one node");
        let mut spec = DagSpec::new(name);
        for i in 0..length {
            spec = spec.node(DagNodeSpec::new(format!("{name}-hop{i}")).exec_ms(exec_ms.clone()));
        }
        for i in 0..length.saturating_sub(1) {
            spec = spec.edge(
                format!("{name}-hop{i}"),
                format!("{name}-hop{}", i + 1),
                mode,
                Dist::constant(payload_bytes as f64),
            );
        }
        spec.compile().expect("linear plan is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str) -> DagNodeSpec {
        DagNodeSpec::new(name)
    }

    fn edge(from: &str, to: &str) -> DagEdgeSpec {
        DagEdgeSpec {
            from: from.to_string(),
            to: to.to_string(),
            mode: TransferMode::Inline,
            payload: Dist::constant(1024.0),
        }
    }

    #[test]
    fn compiles_fan_out_fan_in() {
        let spec = DagSpec {
            name: "diamond".to_string(),
            nodes: vec![node("a"), node("b"), node("c"), node("d")],
            edges: vec![edge("a", "b"), edge("a", "c"), edge("b", "d"), edge("c", "d")],
        };
        let plan = spec.compile().unwrap();
        assert_eq!(plan.root, 0);
        assert_eq!(plan.topo[0], 0);
        assert_eq!(plan.nodes[0].out.len(), 2);
        assert_eq!(plan.nodes[3].in_degree, 2);
        assert_eq!(plan.nodes[3].join_k, 2, "default join is all-of-n");
        assert!(plan.nodes[3].is_join());
    }

    #[test]
    fn k_of_n_join_k_is_lowered() {
        let mut spec = DagSpec {
            name: "quorum".to_string(),
            nodes: vec![node("s"), node("w1"), node("w2"), node("w3"), node("g")],
            edges: vec![
                edge("s", "w1"),
                edge("s", "w2"),
                edge("s", "w3"),
                edge("w1", "g"),
                edge("w2", "g"),
                edge("w3", "g"),
            ],
        };
        spec.nodes[4].join = Some(JoinSpec::KOfN { k: 2 });
        let plan = spec.compile().unwrap();
        assert_eq!(plan.nodes[4].join_k, 2);
        assert_eq!(plan.nodes[4].in_degree, 3);
    }

    #[test]
    fn cycle_rejected_with_node_names() {
        let spec = DagSpec {
            name: "loopy".to_string(),
            nodes: vec![node("a"), node("b"), node("c")],
            edges: vec![edge("a", "b"), edge("b", "c"), edge("c", "b")],
        };
        let err = spec.compile().unwrap_err();
        assert!(err.contains("cycle detected"), "unhelpful error: {err}");
        assert!(err.contains('b') && err.contains('c'), "cycle nodes not named: {err}");
    }

    #[test]
    fn fully_cyclic_graph_reports_missing_root() {
        let spec = DagSpec {
            name: "ring".to_string(),
            nodes: vec![node("a"), node("b")],
            edges: vec![edge("a", "b"), edge("b", "a")],
        };
        let err = spec.compile().unwrap_err();
        assert!(err.contains("no root"), "unhelpful error: {err}");
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        // Two roots.
        let two_roots = DagSpec {
            name: "w".to_string(),
            nodes: vec![node("a"), node("b"), node("c")],
            edges: vec![edge("a", "c"), edge("b", "c")],
        };
        assert!(two_roots.compile().unwrap_err().contains("multiple root"));

        // Unknown edge endpoint.
        let dangling = DagSpec {
            name: "w".to_string(),
            nodes: vec![node("a")],
            edges: vec![edge("a", "ghost")],
        };
        assert!(dangling.compile().unwrap_err().contains("unknown node"));

        // Self-edge, duplicate edge.
        let selfy =
            DagSpec { name: "w".to_string(), nodes: vec![node("a")], edges: vec![edge("a", "a")] };
        assert!(selfy.compile().unwrap_err().contains("self-edge"));
        let dup = DagSpec {
            name: "w".to_string(),
            nodes: vec![node("a"), node("b")],
            edges: vec![edge("a", "b"), edge("a", "b")],
        };
        assert!(dup.compile().unwrap_err().contains("duplicate edge"));

        // Join on a linear node.
        let mut join_linear = DagSpec {
            name: "w".to_string(),
            nodes: vec![node("a"), node("b")],
            edges: vec![edge("a", "b")],
        };
        join_linear.nodes[1].join = Some(JoinSpec::All);
        assert!(join_linear.compile().unwrap_err().contains("in-degree 1"));

        // k out of range.
        let mut bad_k = DagSpec {
            name: "w".to_string(),
            nodes: vec![node("a"), node("b"), node("c"), node("d")],
            edges: vec![edge("a", "b"), edge("a", "c"), edge("b", "d"), edge("c", "d")],
        };
        bad_k.nodes[3].join = Some(JoinSpec::KOfN { k: 3 });
        assert!(bad_k.compile().unwrap_err().contains("outside"));

        // Duplicate node names.
        let dup_names =
            DagSpec { name: "w".to_string(), nodes: vec![node("a"), node("a")], edges: vec![] };
        assert!(dup_names.compile().unwrap_err().contains("duplicate node name"));
    }

    #[test]
    fn linear_helper_matches_chain_shape() {
        let plan = DagPlan::linear("f", 3, TransferMode::Storage, 4096, Dist::constant(5.0));
        assert_eq!(plan.nodes.len(), 3);
        assert_eq!(plan.root, 0);
        for (i, n) in plan.nodes.iter().enumerate() {
            assert_eq!(n.name, format!("f-hop{i}"));
            assert_eq!(n.out.len(), usize::from(i < 2));
            assert!(!n.is_join());
        }
        assert_eq!(plan.nodes[0].out[0].constant_payload(), Some(4096));
    }

    #[test]
    fn serde_round_trip() {
        let mut spec = DagSpec {
            name: "rt".to_string(),
            nodes: vec![node("a"), node("b"), node("c")],
            edges: vec![edge("a", "b"), edge("a", "c")],
        };
        spec.nodes[1].exec_ms = Dist::lognormal_median_p99(10.0, 50.0);
        let json = serde_json::to_string(&spec).unwrap();
        let back: DagSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn serde_defaults_fill_in() {
        let json = r#"{
            "name": "mini",
            "nodes": [
                {"name": "a"},
                {"name": "b"},
                {"name": "j", "join": {"kind": "k_of_n", "k": 2}}
            ],
            "edges": [
                {"from": "a", "to": "b"},
                {"from": "a", "to": "j"},
                {"from": "b", "to": "j"}
            ]
        }"#;
        let spec: DagSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.nodes[0].runtime, Runtime::Python3);
        assert_eq!(spec.nodes[0].memory_mb, 2048);
        assert_eq!(spec.edges[0].mode, TransferMode::Inline);
        let plan = spec.compile().unwrap();
        assert_eq!(plan.nodes[2].join_k, 2);
    }
}
