//! The client: provider-agnostic load generation and measurement.
//!
//! Mirrors STeLLAR's client (§IV): invokes the endpoints produced by the
//! deployer in round-robin order at the configured inter-arrival time,
//! optionally issuing `burst_size` simultaneous requests per round, and
//! collects per-request latency samples plus the intra-function transfer
//! timestamps.

use faas_sim::cloud::CloudSim;
use faas_sim::request::{Completion, TransferSample};
use simkit::rng::Rng;
use simkit::time::SimTime;
use stats::sketch::{LatencyAgg, QuantileMode};
use workload::arrival::ArrivalProcess;
use workload::spec::{ModeSpec, WorkloadSpec};
use workload::stats::{LoadRecorder, OfferedLoad};

use crate::config::{IatSpec, RuntimeConfig};
use crate::deployer::Deployment;

/// How the client measures a run: which quantile machinery to use and
/// whether to retain per-request sample vectors.
///
/// The default (`Exact` + `keep_samples`) is the legacy behaviour every
/// figure pipeline relies on: full completion vectors, exact percentiles.
/// Large runs switch to [`QuantileMode::Sketch`] without `keep_samples`,
/// which streams completions through a [`LatencyAgg`] in bounded slices —
/// peak latency storage is the sketch, not a `Vec<f64>` of every request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureSpec {
    /// Quantile machinery for summaries.
    pub quantile: QuantileMode,
    /// Whether to retain per-completion vectors (required by the CDF,
    /// breakdown and figure pipelines).
    pub keep_samples: bool,
}

impl Default for MeasureSpec {
    fn default() -> Self {
        MeasureSpec { quantile: QuantileMode::Exact, keep_samples: true }
    }
}

impl MeasureSpec {
    /// Exact percentiles over retained samples (the default).
    pub fn exact() -> MeasureSpec {
        MeasureSpec::default()
    }

    /// Streaming sketch quantiles, samples not retained — O(sketch)
    /// memory however many invocations run.
    pub fn sketch() -> MeasureSpec {
        MeasureSpec { quantile: QuantileMode::Sketch, keep_samples: false }
    }

    /// Overrides sample retention (e.g. sketch quantiles but keep vectors
    /// for a CDF plot).
    pub fn with_keep_samples(mut self, keep: bool) -> MeasureSpec {
        self.keep_samples = keep;
        self
    }

    /// Validates the combination: exact quantiles require the samples
    /// they are computed from.
    pub fn validate(&self) -> Result<(), String> {
        if self.quantile == QuantileMode::Exact && !self.keep_samples {
            return Err("exact quantiles require keep_samples (use sketch mode to drop samples)"
                .to_string());
        }
        Ok(())
    }
}

/// Everything the client measured in one run.
///
/// Sample vectors (`completions`, `warmup_completions`, `transfers`) are
/// populated only when the run's [`MeasureSpec`] keeps samples; the
/// aggregate fields are always populated and are the only O(1)-per-run
/// representation on streaming runs.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completions from measured rounds, in completion order (empty on
    /// streaming runs).
    pub completions: Vec<Completion>,
    /// Completions from warm-up rounds (excluded from statistics; empty on
    /// streaming runs).
    pub warmup_completions: Vec<Completion>,
    /// Cross-function transfer samples from measured rounds (empty on
    /// streaming runs).
    pub transfers: Vec<TransferSample>,
    /// Streaming aggregate over measured end-to-end latencies, ms.
    pub latency_agg: LatencyAgg,
    /// Streaming aggregate over measured transfer times, ms.
    pub transfer_agg: LatencyAgg,
    /// Measured completions observed (equals `completions.len()` when
    /// samples are kept).
    pub measured_count: u64,
    /// Warm-up completions observed.
    pub warmup_count: u64,
    /// Measured completions that waited on a cold start.
    pub cold_count: u64,
    /// Wall-clock (simulated) duration of the whole run.
    pub duration: SimTime,
    /// Realized offered-load summary. Populated by workload-spec runs
    /// ([`run_workload_spec`]); `None` on legacy IAT runs.
    pub offered: Option<OfferedLoad>,
    /// Tail-tolerance policy accounting. Populated only when the run's
    /// [`RuntimeConfig`](crate::config::RuntimeConfig) carried a policy;
    /// `None` on plain runs.
    pub policy: Option<policy::PolicyStats>,
    /// Fault-injection and degradation accounting. Populated only when
    /// the run's [`RuntimeConfig`](crate::config::RuntimeConfig) carried
    /// a (non-inert) fault spec; `None` on faults-off runs.
    pub faults: Option<faults::FaultStats>,
}

impl RunResult {
    /// End-to-end latencies of measured completions, ms. Empty on
    /// streaming runs — use [`RunResult::latency_agg`] there.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.completions.iter().map(Completion::latency_ms).collect()
    }

    /// Effective transfer times of measured transfer samples, ms. Empty on
    /// streaming runs — use [`RunResult::transfer_agg`] there.
    pub fn transfer_ms(&self) -> Vec<f64> {
        self.transfers.iter().map(TransferSample::transfer_ms).collect()
    }

    /// Fraction of measured completions that waited on a cold start.
    pub fn cold_fraction(&self) -> f64 {
        if self.measured_count == 0 {
            return 0.0;
        }
        self.cold_count as f64 / self.measured_count as f64
    }

    /// Goodput of the run: fraction of fault-terminal requests that
    /// completed successfully ([`faults::FaultStats::availability`]).
    /// 1.0 on faults-off runs.
    pub fn goodput(&self) -> f64 {
        self.faults.as_ref().map_or(1.0, faults::FaultStats::availability)
    }
}

/// Errors from a client run.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The runtime configuration failed validation.
    InvalidConfig(String),
    /// The deployment has no endpoints.
    EmptyDeployment,
    /// Not all requests completed within the simulation horizon.
    IncompleteRun {
        /// Completions received.
        received: usize,
        /// Completions expected.
        expected: usize,
        /// The completions that did arrive, for post-mortem debugging.
        completions: Vec<Completion>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::InvalidConfig(msg) => write!(f, "invalid runtime config: {msg}"),
            ClientError::EmptyDeployment => write!(f, "deployment has no endpoints"),
            ClientError::IncompleteRun { received, expected, .. } => {
                write!(f, "run incomplete: {received}/{expected} completions")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Samples the next inter-arrival gap.
fn sample_iat_ms(iat: &IatSpec, rng: &mut Rng) -> f64 {
    match iat {
        IatSpec::Fixed { ms } => *ms,
        IatSpec::Exponential { mean_ms } => -mean_ms * rng.next_f64_open().ln(),
        IatSpec::Uniform { lo_ms, hi_ms } => rng.range_f64(*lo_ms, *hi_ms),
    }
}

/// Drives the workload described by `cfg` against `deployment` on
/// `cloud`, starting at the cloud's current time.
///
/// Rounds are issued at the configured IAT; each round sends
/// `cfg.burst_size` simultaneous requests to one endpoint, cycling through
/// endpoints round-robin (§IV/§V). The first `cfg.warmup_rounds` rounds
/// are collected separately and excluded from statistics. Requests are
/// tagged with their round number.
///
/// # Errors
///
/// Returns [`ClientError`] for invalid configs, empty deployments, or if
/// requests fail to complete within a generous horizon (which would
/// indicate a simulator bug).
pub fn run_workload(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    seed: u64,
) -> Result<RunResult, ClientError> {
    run_workload_with(cloud, deployment, cfg, seed, &MeasureSpec::default())
}

/// [`run_workload`] with an explicit [`MeasureSpec`].
///
/// With `keep_samples` (the default) this is the legacy path: run to the
/// horizon, drain everything, partition, retain full vectors. Without it,
/// the simulation is advanced in bounded time slices and each slice's
/// completions are folded into the streaming aggregates and discarded, so
/// peak latency storage is one slice's completions plus the sketch — not
/// the whole run. Both paths process the identical event sequence (the
/// engine's `run_until` is prefix-stable), so a streaming run aggregates
/// exactly the samples the legacy run would have collected, in the same
/// order.
///
/// # Errors
///
/// Returns [`ClientError`] for invalid configs or specs, empty
/// deployments, or if requests fail to complete within a generous horizon
/// (which would indicate a simulator bug). On streaming runs the
/// [`ClientError::IncompleteRun`] post-mortem vector only holds
/// completions from the final slice.
pub fn run_workload_with(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    seed: u64,
    measure: &MeasureSpec,
) -> Result<RunResult, ClientError> {
    cfg.validate().map_err(ClientError::InvalidConfig)?;
    measure.validate().map_err(ClientError::InvalidConfig)?;
    if cfg.policy.is_some() {
        return Err(ClientError::InvalidConfig(
            "policies run on the workload-spec driver; attach a workload (or let \
             Experiment synthesize one from the IAT)"
                .to_string(),
        ));
    }
    if deployment.is_empty() {
        return Err(ClientError::EmptyDeployment);
    }
    let mut rng = Rng::seed_from(seed).fork("client-iat");
    let start = cloud.now();
    let total_rounds = cfg.warmup_rounds + cfg.measured_rounds();
    let expected = (total_rounds * cfg.burst_size) as usize;
    let warmup_tag = cfg.warmup_rounds as u64;
    let mut latency_agg = LatencyAgg::with_mode(measure.quantile);
    let mut transfer_agg = LatencyAgg::with_mode(measure.quantile);

    if !measure.keep_samples {
        // Sketch mode skips slab/completion pre-sizing, but the event
        // queue still wants the bulk-load hint: without it the adaptive
        // backend promoted mid-run at the pending threshold instead of
        // once, up front.
        cloud.reserve_event_hint(expected);
    }
    if measure.keep_samples {
        cloud.reserve_requests(expected);
        let mut t = start;
        let mut last_issue = start;
        for round in 0..total_rounds {
            let endpoint = &deployment.endpoints[round as usize % deployment.len()];
            for _ in 0..cfg.burst_size {
                cloud.submit(endpoint.function, round as u64, t);
            }
            last_issue = t;
            t += SimTime::from_millis(sample_iat_ms(&cfg.iat, &mut rng));
        }

        // Generous completion horizon: bursts can queue for minutes on
        // slow scale-out policies (Fig 9 observes ~39 s; chains and 1 GB
        // transfers take tens of seconds too).
        let mut horizon = last_issue + SimTime::from_secs(300.0);
        let mut completions = Vec::with_capacity(expected);
        let mut transfers = Vec::new();
        for _ in 0..20 {
            cloud.run_until(horizon);
            // Drain in place: the simulator appends into our buffers, so
            // the loop allocates nothing once the buffers reach steady
            // size.
            cloud.drain_completions_into(&mut completions);
            cloud.drain_transfers_into(&mut transfers);
            if completions.len() >= expected {
                break;
            }
            horizon += SimTime::from_secs(600.0);
        }
        if completions.len() < expected {
            return Err(ClientError::IncompleteRun {
                received: completions.len(),
                expected,
                completions,
            });
        }

        // Provider errors (fault injection) terminate their request but
        // are never latency samples; cloud-side `FaultStats` carries
        // their accounting.
        let (warmup, measured): (Vec<Completion>, Vec<Completion>) =
            completions.into_iter().filter(Completion::is_ok).partition(|c| c.tag < warmup_tag);
        let transfers: Vec<TransferSample> =
            transfers.into_iter().filter(|tr| tr.parent_tag >= warmup_tag).collect();
        let mut cold_count = 0u64;
        for c in &measured {
            if c.cold {
                cold_count += 1;
            }
            latency_agg.record(c.latency_ms());
        }
        for tr in &transfers {
            transfer_agg.record(tr.transfer_ms());
        }
        Ok(RunResult {
            measured_count: measured.len() as u64,
            warmup_count: warmup.len() as u64,
            cold_count,
            completions: measured,
            warmup_completions: warmup,
            transfers,
            latency_agg,
            transfer_agg,
            duration: cloud.now() - start,
            offered: None,
            policy: None,
            faults: None,
        })
    } else {
        // Streaming runs interleave arrival generation with simulation so
        // pending state stays O(slice + active requests), not O(run). The
        // gap sequence is pre-summed once from a clone of the client rng
        // (O(1) memory) to fix the same horizon and slice grid the
        // up-front path uses; each slice then submits only the rounds that
        // fall inside it. A submission window on the cloud replays the
        // up-front path's network-rng draw order and event tie-breaking,
        // so results are bit-identical to submitting everything at once.
        let mut gap_rng = rng.clone();
        let mut last_issue = start;
        {
            let mut t = start;
            for _ in 0..total_rounds {
                last_issue = t;
                t += SimTime::from_millis(sample_iat_ms(&cfg.iat, &mut gap_rng));
            }
        }
        let mut horizon = last_issue + SimTime::from_secs(300.0);
        // Slice width: ~256 slices across the nominal horizon, clamped to
        // [1 s, 60 s] of simulated time. Slicing only bounds how many
        // completions and pending submissions accumulate between drains;
        // it does not change what the simulation computes.
        let span = horizon.saturating_sub(start);
        let slice =
            SimTime::from_nanos((span.as_nanos() / 256).clamp(1_000_000_000, 60_000_000_000));
        cloud.open_submission_window(expected);
        let mut next_issue = start;
        let mut round = 0u32;
        let mut comp_buf: Vec<Completion> = Vec::new();
        let mut trans_buf: Vec<TransferSample> = Vec::new();
        let mut received = 0usize;
        let mut measured_count = 0u64;
        let mut warmup_count = 0u64;
        let mut cold_count = 0u64;
        'drive: for _ in 0..20 {
            while cloud.now() < horizon {
                let next = (cloud.now() + slice).min(horizon);
                while round < total_rounds && next_issue <= next {
                    let endpoint = &deployment.endpoints[round as usize % deployment.len()];
                    for _ in 0..cfg.burst_size {
                        cloud.submit(endpoint.function, round as u64, next_issue);
                    }
                    next_issue += SimTime::from_millis(sample_iat_ms(&cfg.iat, &mut rng));
                    round += 1;
                }
                if round == total_rounds {
                    cloud.close_submission_window();
                }
                cloud.run_until(next);
                cloud.drain_completions_into(&mut comp_buf);
                cloud.drain_transfers_into(&mut trans_buf);
                received += comp_buf.len();
                for c in comp_buf.drain(..) {
                    if !c.is_ok() {
                        continue;
                    }
                    if c.tag < warmup_tag {
                        warmup_count += 1;
                    } else {
                        measured_count += 1;
                        if c.cold {
                            cold_count += 1;
                        }
                        latency_agg.record(c.latency_ms());
                    }
                }
                for tr in trans_buf.drain(..) {
                    if tr.parent_tag >= warmup_tag {
                        transfer_agg.record(tr.transfer_ms());
                    }
                }
                if received >= expected {
                    break 'drive;
                }
            }
            horizon += SimTime::from_secs(600.0);
        }
        cloud.close_submission_window();
        if received < expected {
            return Err(ClientError::IncompleteRun { received, expected, completions: Vec::new() });
        }
        Ok(RunResult {
            completions: Vec::new(),
            warmup_completions: Vec::new(),
            transfers: Vec::new(),
            latency_agg,
            transfer_agg,
            measured_count,
            warmup_count,
            cold_count,
            duration: cloud.now() - start,
            offered: None,
            policy: None,
            faults: None,
        })
    }
}

/// Shared measurement sink for workload-spec runs: absorbs completions
/// and transfers either into retained vectors (`keep_samples`) or
/// directly into the streaming aggregates.
pub(crate) struct Collector {
    keep: bool,
    warmup_tag: u64,
    completions: Vec<Completion>,
    transfers: Vec<TransferSample>,
    comp_buf: Vec<Completion>,
    trans_buf: Vec<TransferSample>,
    latency_agg: LatencyAgg,
    transfer_agg: LatencyAgg,
    received: usize,
    measured_count: u64,
    warmup_count: u64,
    cold_count: u64,
}

impl Collector {
    pub(crate) fn new(measure: &MeasureSpec, warmup_tag: u64) -> Collector {
        Collector {
            keep: measure.keep_samples,
            warmup_tag,
            completions: Vec::new(),
            transfers: Vec::new(),
            comp_buf: Vec::new(),
            trans_buf: Vec::new(),
            latency_agg: LatencyAgg::with_mode(measure.quantile),
            transfer_agg: LatencyAgg::with_mode(measure.quantile),
            received: 0,
            measured_count: 0,
            warmup_count: 0,
            cold_count: 0,
        }
    }

    pub(crate) fn absorb(&mut self, c: Completion) {
        self.received += 1;
        if !c.is_ok() {
            // Provider error: counts toward run termination, never
            // toward samples or aggregates.
            return;
        }
        if self.keep {
            self.completions.push(c);
            return;
        }
        if c.tag < self.warmup_tag {
            self.warmup_count += 1;
        } else {
            self.measured_count += 1;
            if c.cold {
                self.cold_count += 1;
            }
            self.latency_agg.record(c.latency_ms());
        }
    }

    pub(crate) fn absorb_transfer(&mut self, tr: TransferSample) {
        if self.keep {
            self.transfers.push(tr);
        } else if tr.parent_tag >= self.warmup_tag {
            self.transfer_agg.record(tr.transfer_ms());
        }
    }

    /// Drains the cloud's completion/transfer buffers into this
    /// collector. Returns how many completions arrived.
    fn drain(&mut self, cloud: &mut CloudSim) -> usize {
        cloud.drain_completions_into(&mut self.comp_buf);
        cloud.drain_transfers_into(&mut self.trans_buf);
        let fresh = self.comp_buf.len();
        for c in self.comp_buf.drain(..) {
            self.received += 1;
            if !c.is_ok() {
                continue;
            }
            if self.keep {
                self.completions.push(c);
            } else if c.tag < self.warmup_tag {
                self.warmup_count += 1;
            } else {
                self.measured_count += 1;
                if c.cold {
                    self.cold_count += 1;
                }
                self.latency_agg.record(c.latency_ms());
            }
        }
        let trans_buf = std::mem::take(&mut self.trans_buf);
        for tr in trans_buf {
            self.absorb_transfer(tr);
        }
        fresh
    }

    pub(crate) fn finish(
        mut self,
        expected: usize,
        duration: SimTime,
        offered: OfferedLoad,
    ) -> Result<RunResult, ClientError> {
        if self.received < expected {
            return Err(ClientError::IncompleteRun {
                received: self.received,
                expected,
                completions: self.completions,
            });
        }
        if self.keep {
            let (warmup, measured): (Vec<Completion>, Vec<Completion>) =
                self.completions.into_iter().partition(|c| c.tag < self.warmup_tag);
            let transfers: Vec<TransferSample> =
                self.transfers.into_iter().filter(|tr| tr.parent_tag >= self.warmup_tag).collect();
            let mut cold_count = 0u64;
            for c in &measured {
                if c.cold {
                    cold_count += 1;
                }
                self.latency_agg.record(c.latency_ms());
            }
            for tr in &transfers {
                self.transfer_agg.record(tr.transfer_ms());
            }
            Ok(RunResult {
                measured_count: measured.len() as u64,
                warmup_count: warmup.len() as u64,
                cold_count,
                completions: measured,
                warmup_completions: warmup,
                transfers,
                latency_agg: self.latency_agg,
                transfer_agg: self.transfer_agg,
                duration,
                offered: Some(offered),
                policy: None,
                faults: None,
            })
        } else {
            Ok(RunResult {
                completions: Vec::new(),
                warmup_completions: Vec::new(),
                transfers: Vec::new(),
                latency_agg: self.latency_agg,
                transfer_agg: self.transfer_agg,
                measured_count: self.measured_count,
                warmup_count: self.warmup_count,
                cold_count: self.cold_count,
                duration,
                offered: Some(offered),
                policy: None,
                faults: None,
            })
        }
    }
}

/// Drives a [`WorkloadSpec`] against `deployment` on `cloud`.
///
/// This is the workload-subsystem counterpart of [`run_workload`]: the
/// arrival process comes from the spec rather than `cfg.iat`, and the
/// spec's mode selects between open-loop (arrivals submitted on the
/// process's schedule regardless of completions) and closed-loop (a fixed
/// number of virtual users, each issuing its next request one think-time
/// gap after its previous completion).
///
/// Shared semantics with the legacy driver: `cfg.warmup_rounds` initial
/// arrivals are warm-up, `cfg.samples` arrivals are measured, requests are
/// tagged with their arrival index, and the run starts at the cloud's
/// current time. Differences: the first arrival happens one gap after the
/// start (so trace replays land on their recorded timestamps), and
/// endpoint routing follows the process's source index when the process is
/// multi-source (e.g. [`workload::arrival::Superpose`]) and round-robin
/// otherwise. In open-loop mode each arrival issues `cfg.burst_size`
/// simultaneous requests; closed-loop mode requires `burst_size == 1`.
///
/// Arrivals are generated and submitted inside bounded time slices under a
/// submission window, so pending state stays O(slice + active requests)
/// however long the run. Gap draws come from a dedicated
/// `fork("workload-gaps")` stream of `seed`, making a given spec's
/// schedule reproducible across queue backends and thread counts.
///
/// The result's [`RunResult::offered`] summarizes the load actually
/// submitted. Finite processes (e.g. trace replay) may exhaust before
/// `warmup + samples` arrivals; the run then measures what the process
/// supplied.
///
/// # Errors
///
/// Returns [`ClientError`] for invalid configs or specs, empty
/// deployments, or if requests fail to complete within a generous horizon.
pub fn run_workload_spec(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    spec: &WorkloadSpec,
    seed: u64,
    measure: &MeasureSpec,
) -> Result<RunResult, ClientError> {
    cfg.validate().map_err(ClientError::InvalidConfig)?;
    measure.validate().map_err(ClientError::InvalidConfig)?;
    spec.validate().map_err(ClientError::InvalidConfig)?;
    if deployment.is_empty() {
        return Err(ClientError::EmptyDeployment);
    }
    let mut process = spec.build(seed);
    let mut rng = Rng::seed_from(seed).fork("workload-gaps");
    if let Some(pspec) = &cfg.policy {
        let mode = match spec.mode {
            ModeSpec::Open => crate::policy_driver::DriveMode::Open,
            ModeSpec::Closed { concurrency } => {
                crate::policy_driver::DriveMode::Closed { concurrency }
            }
        };
        return crate::policy_driver::drive_with_policy(
            cloud,
            deployment,
            cfg,
            process.as_mut(),
            &mut rng,
            measure,
            pspec,
            seed,
            mode,
        );
    }
    match spec.mode {
        ModeSpec::Open => open_loop(cloud, deployment, cfg, process.as_mut(), &mut rng, measure),
        ModeSpec::Closed { concurrency } => {
            if cfg.burst_size != 1 {
                return Err(ClientError::InvalidConfig(
                    "closed-loop workloads require burst_size 1".to_string(),
                ));
            }
            closed_loop(cloud, deployment, cfg, process.as_mut(), &mut rng, measure, concurrency)
        }
    }
}

/// Open-loop driver: arrivals follow the process's schedule, independent
/// of completions.
fn open_loop(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    process: &mut dyn ArrivalProcess,
    rng: &mut Rng,
    measure: &MeasureSpec,
) -> Result<RunResult, ClientError> {
    let start = cloud.now();
    let mut total_arrivals = u64::from(cfg.warmup_rounds + cfg.measured_rounds());
    if let Some(remaining) = process.remaining() {
        total_arrivals = total_arrivals.min(remaining);
    }
    let burst = u64::from(cfg.burst_size);
    let planned = (total_arrivals * burst) as usize;
    let multi_source = process.sources() > 1;
    if measure.keep_samples {
        cloud.reserve_requests(planned);
    } else {
        // Forward the bulk-load hint even without sample buffers so the
        // adaptive event queue can promote once, up front.
        cloud.reserve_event_hint(planned);
    }
    cloud.open_submission_window(planned);

    let mut collector = Collector::new(measure, u64::from(cfg.warmup_rounds));
    let mut recorder = LoadRecorder::default();
    let mut issued = 0u64;
    let mut t = start;
    let mut last_issue = start;
    // Bounded-slice submission: generate and submit up to a slice's worth
    // of arrivals, advance the simulation to the last issue time, drain,
    // repeat. The slice is time-based so a burst does not blow up pending
    // state beyond what the process itself offers in one slice.
    const SLICE: SimTime = SimTime::from_nanos(10_000_000_000); // 10 s
    let mut exhausted = false;
    while !exhausted && issued < total_arrivals {
        let slice_end = cloud.now().max(t) + SLICE;
        while issued < total_arrivals && t <= slice_end {
            let gap = process.next_gap_ms(rng);
            if !gap.is_finite() {
                exhausted = true;
                break;
            }
            t += SimTime::from_millis(gap);
            let source = if multi_source { process.source() } else { issued as usize };
            let endpoint = &deployment.endpoints[source % deployment.len()];
            for _ in 0..burst {
                cloud.submit(endpoint.function, issued, t);
            }
            recorder.record(t.as_millis());
            last_issue = t;
            issued += 1;
        }
        cloud.run_until(last_issue.max(cloud.now()));
        collector.drain(cloud);
    }
    cloud.close_submission_window();
    let expected = (issued * burst) as usize;

    // Drain the tail exactly like the legacy driver: a generous horizon
    // with bounded extensions, advancing in slices so completion buffers
    // stay small.
    let mut horizon = last_issue + SimTime::from_secs(300.0);
    'drive: for _ in 0..20 {
        while cloud.now() < horizon {
            let next = (cloud.now() + SLICE).min(horizon);
            cloud.run_until(next);
            collector.drain(cloud);
            if collector.received >= expected {
                break 'drive;
            }
        }
        horizon += SimTime::from_secs(600.0);
    }
    let duration = cloud.now() - start;
    collector.finish(expected, duration, recorder.finish())
}

/// Closed-loop driver: `concurrency` virtual users. Each user submits,
/// waits for its completion, thinks for one arrival-process gap, and
/// submits again. Outstanding requests never exceed `concurrency`.
fn closed_loop(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    process: &mut dyn ArrivalProcess,
    rng: &mut Rng,
    measure: &MeasureSpec,
    concurrency: u32,
) -> Result<RunResult, ClientError> {
    let start = cloud.now();
    let mut total = u64::from(cfg.warmup_rounds + cfg.measured_rounds());
    if let Some(remaining) = process.remaining() {
        total = total.min(remaining);
    }
    if measure.keep_samples {
        cloud.reserve_requests(total as usize);
    } else {
        // Same bulk-load hint as the open-loop driver: the adaptive
        // event queue should promote once, up front.
        cloud.reserve_event_hint(total as usize);
    }
    cloud.open_submission_window(total as usize);

    let mut collector = Collector::new(measure, u64::from(cfg.warmup_rounds));
    let mut recorder = LoadRecorder::default();
    // Submissions are decided in completion order, not time order, so
    // their instants go through a min-heap (bounded by `concurrency`) and
    // are recorded once the clock passes them — every later submission is
    // clamped to at least the current slice boundary, so a flushed prefix
    // is final.
    let mut record_heap: std::collections::BinaryHeap<std::cmp::Reverse<u64>> =
        std::collections::BinaryHeap::new();
    let mut issued = 0u64;
    let mut exhausted = false;

    // All users fire their first request at the start (a thundering herd,
    // which is what a freshly started closed-loop client does).
    let initial = u64::from(concurrency).min(total);
    for _ in 0..initial {
        let endpoint = &deployment.endpoints[issued as usize % deployment.len()];
        cloud.submit(endpoint.function, issued, start);
        record_heap.push(std::cmp::Reverse(start.as_nanos()));
        issued += 1;
    }

    // Advance in one-second slices; every drained completion frees a user,
    // who thinks for one gap and then submits the next request. If the
    // simulation makes no progress for a long stretch, bail out with an
    // incomplete-run error rather than spinning forever.
    const SLICE: SimTime = SimTime::from_nanos(1_000_000_000); // 1 s
    const STALL_LIMIT: u32 = 3_600;
    let mut stall = 0u32;
    while collector.received < issued as usize || (issued < total && !exhausted) {
        let next = cloud.now() + SLICE;
        cloud.run_until(next);
        cloud.drain_completions_into(&mut collector.comp_buf);
        cloud.drain_transfers_into(&mut collector.trans_buf);
        let progressed = !collector.comp_buf.is_empty();
        let comp_buf = std::mem::take(&mut collector.comp_buf);
        for c in comp_buf {
            if issued < total && !exhausted {
                let gap = process.next_gap_ms(rng);
                if gap.is_finite() {
                    let at = (c.completed_at + SimTime::from_millis(gap)).max(cloud.now());
                    let endpoint = &deployment.endpoints[issued as usize % deployment.len()];
                    cloud.submit(endpoint.function, issued, at);
                    record_heap.push(std::cmp::Reverse(at.as_nanos()));
                    issued += 1;
                } else {
                    exhausted = true;
                }
            }
            collector.absorb(c);
        }
        let trans_buf = std::mem::take(&mut collector.trans_buf);
        for tr in trans_buf {
            collector.absorb_transfer(tr);
        }
        let now_ns = cloud.now().as_nanos();
        while let Some(&std::cmp::Reverse(ns)) = record_heap.peek() {
            if ns > now_ns {
                break;
            }
            record_heap.pop();
            recorder.record(ns as f64 / 1e6);
        }
        if progressed {
            stall = 0;
        } else {
            stall += 1;
            if stall >= STALL_LIMIT {
                break;
            }
        }
    }
    while let Some(std::cmp::Reverse(ns)) = record_heap.pop() {
        recorder.record(ns as f64 / 1e6);
    }
    cloud.close_submission_window();
    let duration = cloud.now() - start;
    collector.finish(issued as usize, duration, recorder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChainConfig, StaticConfig, StaticFunction};
    use crate::deployer::deploy;
    use faas_sim::testutil::test_provider;
    use faas_sim::types::TransferMode;

    fn setup(static_cfg: &StaticConfig, runtime_cfg: &RuntimeConfig) -> (CloudSim, Deployment) {
        let mut cloud = CloudSim::new(test_provider(), 7);
        let d = deploy(&mut cloud, static_cfg, runtime_cfg).unwrap();
        (cloud, d)
    }

    #[test]
    fn collects_exactly_the_requested_samples() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 50);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 50);
        assert!(result.warmup_completions.is_empty());
        assert_eq!(result.latencies_ms().len(), 50);
    }

    #[test]
    fn warmup_rounds_are_partitioned_out() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 20);
        cfg.warmup_rounds = 5;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 20);
        assert_eq!(result.warmup_completions.len(), 5);
        // The cold start happened in warm-up; measured samples are warm.
        assert_eq!(result.cold_fraction(), 0.0);
    }

    #[test]
    fn bursts_issue_simultaneous_requests() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 10_000.0 }, 100);
        cfg.burst_size = 50;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 100);
        // Two rounds: tags 0 and 1, 50 requests each.
        let round0 = result.completions.iter().filter(|c| c.tag == 0).count();
        assert_eq!(round0, 50);
    }

    #[test]
    fn round_robin_spreads_rounds_over_endpoints() {
        let static_cfg =
            StaticConfig { functions: vec![StaticFunction::python_zip("f").with_replicas(4)] };
        let cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 100.0 }, 8);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        // 8 rounds over 4 endpoints: each function invoked exactly twice.
        for e in &d.endpoints {
            let count = result.completions.iter().filter(|c| c.function == e.function).count();
            assert_eq!(count, 2, "endpoint {}", e.name);
        }
    }

    #[test]
    fn chain_transfers_are_collected() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 10);
        cfg.warmup_rounds = 2;
        cfg.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Storage, payload_bytes: 1_000_000 });
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 10);
        assert_eq!(result.transfers.len(), 10, "one transfer per measured round");
        assert!(result.transfer_ms().iter().all(|&ms| ms > 0.0));
    }

    #[test]
    fn empty_deployment_is_an_error() {
        let mut cloud = CloudSim::new(test_provider(), 1);
        let cfg = RuntimeConfig::single(IatSpec::short(), 10);
        let d = Deployment { endpoints: vec![] };
        assert_eq!(
            run_workload(&mut cloud, &d, &cfg, 1).unwrap_err(),
            ClientError::EmptyDeployment
        );
    }

    #[test]
    fn poisson_iat_works() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 500.0 }, 30);
        cfg.warmup_rounds = 1;
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload(&mut cloud, &d, &cfg, 1).unwrap();
        assert_eq!(result.completions.len(), 30);
    }

    #[test]
    fn streaming_sketch_matches_legacy_run() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 50.0 }, 400);
        cfg.warmup_rounds = 10;
        let (mut cloud_a, d_a) = setup(&static_cfg, &cfg);
        let legacy = run_workload(&mut cloud_a, &d_a, &cfg, 9).unwrap();
        let (mut cloud_b, d_b) = setup(&static_cfg, &cfg);
        let streaming =
            run_workload_with(&mut cloud_b, &d_b, &cfg, 9, &MeasureSpec::sketch()).unwrap();

        assert!(streaming.completions.is_empty(), "streaming keeps no samples");
        assert_eq!(streaming.measured_count, legacy.completions.len() as u64);
        assert_eq!(streaming.warmup_count, legacy.warmup_completions.len() as u64);
        assert_eq!(streaming.cold_fraction(), legacy.cold_fraction());
        // Both paths aggregate the identical completion sequence, so the
        // moment sums agree bit for bit.
        let mut agg = streaming.latency_agg.clone();
        assert_eq!(agg.count(), 400);
        assert_eq!(agg.mean(), {
            let lat = legacy.latencies_ms();
            lat.iter().sum::<f64>() / lat.len() as f64
        });
        // Below the sketch threshold the quantiles are exact too.
        assert_eq!(agg.quantile(0.5), stats::percentile(&legacy.latencies_ms(), 0.5));
    }

    #[test]
    fn streaming_transfers_are_aggregated() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] };
        let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 10);
        cfg.warmup_rounds = 2;
        cfg.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Storage, payload_bytes: 1_000_000 });
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result = run_workload_with(&mut cloud, &d, &cfg, 1, &MeasureSpec::sketch()).unwrap();
        assert!(result.transfers.is_empty());
        assert_eq!(result.transfer_agg.count(), 10, "one transfer per measured round");
        let mut agg = result.transfer_agg.clone();
        assert!(agg.quantile(0.5) > 0.0);
    }

    #[test]
    fn exact_mode_without_samples_is_rejected() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::short(), 10);
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let spec = MeasureSpec::exact().with_keep_samples(false);
        let err = run_workload_with(&mut cloud, &d, &cfg, 1, &spec).unwrap_err();
        assert!(matches!(err, ClientError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let cfg = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 200.0 }, 25);
        let run = |seed: u64| {
            let (mut cloud, d) = setup(&static_cfg, &cfg);
            run_workload(&mut cloud, &d, &cfg, seed).unwrap().latencies_ms()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    fn spec_setup(samples: u32) -> (StaticConfig, RuntimeConfig) {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cfg = RuntimeConfig::single(IatSpec::short(), samples);
        cfg.warmup_rounds = 5;
        (static_cfg, cfg)
    }

    #[test]
    fn spec_open_loop_collects_requested_samples_and_offered_load() {
        let (static_cfg, cfg) = spec_setup(60);
        let spec =
            WorkloadSpec::from_json(r#"{"arrival": {"kind": "exponential", "mean_ms": 80.0}}"#)
                .unwrap();
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &spec, 11, &MeasureSpec::exact()).unwrap();
        assert_eq!(result.completions.len(), 60);
        assert_eq!(result.warmup_completions.len(), 5);
        let offered = result.offered.expect("spec runs report offered load");
        assert_eq!(offered.arrivals, 65);
        assert!(offered.mean_rate_per_s > 0.0);
    }

    #[test]
    fn spec_run_is_deterministic_and_seed_sensitive() {
        let (static_cfg, cfg) = spec_setup(40);
        let spec = WorkloadSpec::preset("mmpp-burst").unwrap();
        let run = |seed: u64| {
            let (mut cloud, d) = setup(&static_cfg, &cfg);
            run_workload_spec(&mut cloud, &d, &cfg, &spec, seed, &MeasureSpec::exact())
                .unwrap()
                .latencies_ms()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn spec_streaming_matches_keep_samples_run() {
        let (static_cfg, cfg) = spec_setup(200);
        let spec = WorkloadSpec::preset("mmpp-burst").unwrap();
        let (mut cloud_a, d_a) = setup(&static_cfg, &cfg);
        let exact =
            run_workload_spec(&mut cloud_a, &d_a, &cfg, &spec, 13, &MeasureSpec::exact()).unwrap();
        let (mut cloud_b, d_b) = setup(&static_cfg, &cfg);
        let streaming =
            run_workload_spec(&mut cloud_b, &d_b, &cfg, &spec, 13, &MeasureSpec::sketch()).unwrap();
        assert_eq!(streaming.measured_count, exact.completions.len() as u64);
        assert_eq!(streaming.warmup_count, exact.warmup_completions.len() as u64);
        let mut agg = streaming.latency_agg.clone();
        assert_eq!(agg.mean(), {
            let lat = exact.latencies_ms();
            lat.iter().sum::<f64>() / lat.len() as f64
        });
        assert_eq!(agg.quantile(0.5), stats::percentile(&exact.latencies_ms(), 0.5));
        assert_eq!(streaming.offered, exact.offered, "same schedule either way");
    }

    #[test]
    fn spec_closed_loop_bounds_outstanding_requests() {
        let (static_cfg, mut cfg) = spec_setup(50);
        cfg.warmup_rounds = 0;
        let spec = WorkloadSpec::from_json(
            r#"{"arrival": {"kind": "fixed", "ms": 20.0}, "mode": {"mode": "closed", "concurrency": 4}}"#,
        )
        .unwrap();
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &spec, 21, &MeasureSpec::exact()).unwrap();
        assert_eq!(result.completions.len(), 50);
        // Closed loop: never more than `concurrency` requests in flight.
        // Verify via issue/completion interleaving: sort events by time and
        // track the high-water mark of outstanding requests.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for c in &result.completions {
            events.push((c.issued_at.as_nanos(), 1));
            events.push((c.completed_at.as_nanos(), -1));
        }
        events.sort();
        let mut outstanding = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            outstanding += delta;
            peak = peak.max(outstanding);
        }
        assert!(peak <= 4, "outstanding peaked at {peak}");
        assert!(result.offered.unwrap().arrivals == 50);
    }

    #[test]
    fn spec_closed_loop_rejects_bursts() {
        let (static_cfg, mut cfg) = spec_setup(10);
        cfg.burst_size = 4;
        let spec = WorkloadSpec::from_json(
            r#"{"arrival": {"kind": "fixed", "ms": 20.0}, "mode": {"mode": "closed", "concurrency": 2}}"#,
        )
        .unwrap();
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let err =
            run_workload_spec(&mut cloud, &d, &cfg, &spec, 1, &MeasureSpec::exact()).unwrap_err();
        assert!(matches!(err, ClientError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn spec_trace_replay_exhaustion_measures_what_the_trace_supplied() {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        // Ask for far more samples than a short trace horizon can supply.
        let mut cfg = RuntimeConfig::single(IatSpec::short(), 100_000);
        cfg.warmup_rounds = 0;
        let spec = WorkloadSpec::from_json(
            r#"{"arrival": {"kind": "trace_replay", "functions": 3, "horizon_ms": 30000.0, "trace_window_ms": 60000.0}}"#,
        )
        .unwrap();
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &spec, 17, &MeasureSpec::exact()).unwrap();
        assert!(result.measured_count > 0, "trace produced arrivals");
        assert!(
            result.measured_count < 100_000,
            "finite trace cannot supply the full request count"
        );
        assert_eq!(result.offered.unwrap().arrivals, result.measured_count);
    }

    #[test]
    fn spec_superpose_routes_sources_to_endpoints() {
        let static_cfg =
            StaticConfig { functions: vec![StaticFunction::python_zip("f").with_replicas(2)] };
        let mut cfg = RuntimeConfig::single(IatSpec::short(), 80);
        cfg.warmup_rounds = 0;
        let spec = WorkloadSpec::from_json(
            r#"{"arrival": {"kind": "superpose", "parts": [
                {"arrival": {"kind": "fixed", "ms": 50.0}},
                {"arrival": {"kind": "exponential", "mean_ms": 50.0}}
            ]}}"#,
        )
        .unwrap();
        let (mut cloud, d) = setup(&static_cfg, &cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &spec, 19, &MeasureSpec::exact()).unwrap();
        assert_eq!(result.completions.len(), 80);
        // Both tenants' endpoints saw traffic.
        for e in &d.endpoints {
            let count = result.completions.iter().filter(|c| c.function == e.function).count();
            assert!(count > 0, "endpoint {} starved", e.name);
        }
    }
}
