//! # simkit — deterministic discrete-event simulation toolkit
//!
//! `simkit` is the foundation of the STeLLAR reproduction: a small,
//! dependency-light discrete-event simulation (DES) engine together with a
//! deterministic pseudo-random number generator and a library of probability
//! distributions used to model latency components of serverless clouds.
//!
//! The crate deliberately ships its own PRNG ([`rng::Rng`], xoshiro256++)
//! instead of depending on `rand`: simulation results must be bit-stable
//! across toolchain and dependency upgrades so that the calibration tests in
//! the `providers` crate keep their meaning.
//!
//! ## Quick tour
//!
//! ```
//! use simkit::time::SimTime;
//! use simkit::engine::{Model, Scheduler, Simulation};
//!
//! // A model that counts ticks re-scheduling itself every 10 ms.
//! struct Ticker { ticks: u32 }
//!
//! #[derive(Debug)]
//! struct Tick;
//!
//! impl Model for Ticker {
//!     type Event = Tick;
//!     fn handle(&mut self, now: SimTime, _e: Tick, sched: &mut Scheduler<Tick>) {
//!         self.ticks += 1;
//!         if self.ticks < 5 {
//!             sched.schedule_in(now, SimTime::from_millis(10.0), Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ticker { ticks: 0 });
//! sim.schedule_at(SimTime::ZERO, Tick);
//! sim.run();
//! assert_eq!(sim.model().ticks, 5);
//! assert_eq!(sim.now(), SimTime::from_millis(40.0));
//! ```

pub mod calqueue;
pub mod dist;
pub mod engine;
pub mod metrics;
pub mod profile;
pub mod queue;
pub mod ratelimit;
pub mod rng;
pub mod soa;
pub mod time;
pub mod trace;

pub use calqueue::CalendarQueue;
pub use dist::Dist;
pub use engine::{Model, QueueKind, Scheduler, Simulation};
pub use metrics::{MetricSample, Metrics};
pub use profile::{EventClass, EventProfile};
pub use rng::Rng;
pub use soa::{EventKey, KeyedHeap};
pub use time::SimTime;
pub use trace::{RingCollector, SpanRecord, TraceSink, Tracer};
