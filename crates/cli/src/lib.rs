//! # stellar-cli — the STeLLAR command-line front end
//!
//! Mirrors how the paper's tool is used in practice: the deployer and
//! client are driven by JSON configuration files from the command line
//! (§IV), producing latency statistics, CDFs, per-component breakdowns and
//! optional CSV/SVG exports.
//!
//! ```bash
//! stellar providers                  # list built-in provider profiles
//! stellar dump-provider aws-like     # print a profile as editable JSON
//! stellar sample-config              # print starter static/runtime JSON
//! stellar run --static fns.json --runtime load.json \
//!             --provider google-like --seed 7 --breakdown --cdf
//! ```

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, RunOptions};
pub use commands::{execute, CliError};
