//! One module per paper artifact; each exposes `measure(...)` returning a
//! structured result with a `report()` renderer.

pub mod ablation;
pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hedge;
pub mod keepalive;
pub mod metastable;
pub mod mmpp;
pub mod straggler;
pub mod table1;
