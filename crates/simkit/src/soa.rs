//! Structure-of-arrays storage for scheduled events.
//!
//! The event queues used to move whole `(time, seq, payload)` entries
//! through heap sifts and calendar-bucket scans. At 10^6 pending events the
//! comparisons themselves are cheap; what dominates is the memory traffic of
//! dragging payload bytes through every swap and scan. [`KeyedHeap`] splits
//! an entry into a dense array of 16-byte [`EventKey`]s — the only thing
//! ordering ever inspects — and a parallel payload array that is touched
//! only to swap in lockstep. Sifting therefore streams a contiguous key
//! array through cache while payloads move exactly as often as before, just
//! from a separate allocation.
//!
//! Ordering is the engine's dispatch contract: ascending `(time, seq)`,
//! i.e. earliest deadline first with FIFO tie-breaking on the monotone
//! sequence number. [`EventKey`]'s derived `Ord` is exactly that
//! lexicographic order, so a *min*-heap over keys needs no reversed
//! comparator (the previous `BinaryHeap<Entry>` inverted `Ord` to turn
//! `std`'s max-heap into a min-heap).

use crate::time::SimTime;

/// The 16-byte ordering key of a scheduled event: deadline, then FIFO rank.
///
/// Derived `Ord` is lexicographic `(at, seq)` — the engine's dispatch
/// order. `seq` is unique per scheduler, so two keys never compare equal
/// unless they are the same scheduled entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Simulated deadline of the event.
    pub at: SimTime,
    /// Scheduler-assigned FIFO rank, unique and monotone.
    pub seq: u64,
}

// Heap sifting and bucket scans budget one 16-byte load per candidate; a
// fatter key silently doubles hot-path memory traffic.
const _: () = assert!(std::mem::size_of::<EventKey>() == 16);

/// A binary min-heap over [`EventKey`]s with payloads in a parallel array.
///
/// `keys[i]` orders `payloads[i]`; every sift swap moves both in lockstep,
/// but comparisons read only the key array. Pop order is ascending
/// `(at, seq)` — identical to the `BinaryHeap<Entry>` it replaces.
#[derive(Debug, Clone)]
pub struct KeyedHeap<E> {
    keys: Vec<EventKey>,
    payloads: Vec<E>,
}

impl<E> Default for KeyedHeap<E> {
    fn default() -> Self {
        KeyedHeap::new()
    }
}

impl<E> KeyedHeap<E> {
    /// An empty heap; allocates nothing until the first push.
    pub fn new() -> Self {
        KeyedHeap { keys: Vec::new(), payloads: Vec::new() }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Pre-sizes both arrays for `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional);
        self.payloads.reserve(additional);
    }

    /// The minimum key, if any, without removing it.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.keys.first().copied()
    }

    /// Inserts an event.
    pub fn push(&mut self, key: EventKey, payload: E) {
        self.keys.push(key);
        self.payloads.push(payload);
        self.sift_up(self.keys.len() - 1);
    }

    /// Removes and returns the minimum-key event.
    ///
    /// Uses the bottom-up deletion strategy (as `std`'s `BinaryHeap` does):
    /// the root hole is walked down the min-child path all the way to a
    /// leaf — one comparison per level instead of two — and the displaced
    /// last element is then sifted *up* from there. The last element of a
    /// heap is almost always leaf-sized, so the upward correction is O(1)
    /// in practice while the classic swap-down pays two comparisons per
    /// level fighting an early exit that never fires. Pop order is
    /// unaffected: `(at, seq)` keys are unique, so every valid min-heap
    /// pops the identical sequence regardless of internal layout.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        if self.keys.is_empty() {
            return None;
        }
        let last = self.keys.len() - 1;
        self.keys.swap(0, last);
        self.payloads.swap(0, last);
        let key = self.keys.pop().expect("checked non-empty");
        let payload = self.payloads.pop().expect("keys and payloads in lockstep");
        if !self.keys.is_empty() {
            self.sift_down(0);
        }
        Some((key, payload))
    }

    /// Drains all events in *arbitrary* order (heap order, not sorted).
    ///
    /// Used when migrating the backlog to another queue that re-sorts on
    /// insert; avoids n log n pops for an O(n) handoff.
    pub fn drain(&mut self) -> impl Iterator<Item = (EventKey, E)> + '_ {
        self.keys.drain(..).zip(self.payloads.drain(..))
    }

    /// Hole-based sift: the element at `pos` is lifted out once, greater
    /// parents are *copied* (not swapped) down into the hole, and the
    /// element is written back exactly once at its final slot — half the
    /// memory traffic of swap-based sifting on a path of length d.
    ///
    /// SAFETY invariant shared by both sifts: between the `ptr::read` and
    /// the final `ptr::write` the hole slot is logically vacant but still
    /// inside the vector. Nothing in between can panic — `EventKey` is two
    /// integers and its `Ord` cannot unwind — so the value can neither
    /// leak nor double-drop.
    fn sift_up(&mut self, pos: usize) {
        let key = self.keys[pos];
        // SAFETY: `pos < len` (checked by the indexing above); all hole
        // indices are parents of `pos`, hence also in bounds; the hole is
        // filled exactly once by the trailing writes.
        unsafe {
            let payload = std::ptr::read(self.payloads.as_ptr().add(pos));
            let mut i = pos;
            while i > 0 {
                let parent = (i - 1) / 2;
                if *self.keys.get_unchecked(parent) <= key {
                    break;
                }
                std::ptr::copy_nonoverlapping(
                    self.keys.as_ptr().add(parent),
                    self.keys.as_mut_ptr().add(i),
                    1,
                );
                std::ptr::copy_nonoverlapping(
                    self.payloads.as_ptr().add(parent),
                    self.payloads.as_mut_ptr().add(i),
                    1,
                );
                i = parent;
            }
            *self.keys.get_unchecked_mut(i) = key;
            std::ptr::write(self.payloads.as_mut_ptr().add(i), payload);
        }
    }

    /// Bottom-up sift-down (Wegener's trick, also used by `std`'s
    /// `BinaryHeap`): walk the hole down the min-child path all the way to
    /// a leaf — one comparison per level instead of two — then sift the
    /// lifted element back *up* from the leaf. `pop` refills the root with
    /// the array's last element, which is almost always leaf-sized, so the
    /// upward correction terminates immediately in practice.
    fn sift_down(&mut self, pos: usize) {
        let n = self.keys.len();
        let key = self.keys[pos];
        // SAFETY: `pos < n` (checked by the indexing above); `left`,
        // `right` and `parent` are guarded against `n` / `pos` before
        // every unchecked access; the hole moves along the traversed path
        // and is filled exactly once by the trailing writes.
        unsafe {
            let payload = std::ptr::read(self.payloads.as_ptr().add(pos));
            let mut i = pos;
            loop {
                let left = 2 * i + 1;
                if left >= n {
                    break;
                }
                let right = left + 1;
                let child = if right < n
                    && self.keys.get_unchecked(right) < self.keys.get_unchecked(left)
                {
                    right
                } else {
                    left
                };
                std::ptr::copy_nonoverlapping(
                    self.keys.as_ptr().add(child),
                    self.keys.as_mut_ptr().add(i),
                    1,
                );
                std::ptr::copy_nonoverlapping(
                    self.payloads.as_ptr().add(child),
                    self.payloads.as_mut_ptr().add(i),
                    1,
                );
                i = child;
            }
            while i > pos {
                let parent = (i - 1) / 2;
                if *self.keys.get_unchecked(parent) <= key {
                    break;
                }
                std::ptr::copy_nonoverlapping(
                    self.keys.as_ptr().add(parent),
                    self.keys.as_mut_ptr().add(i),
                    1,
                );
                std::ptr::copy_nonoverlapping(
                    self.payloads.as_ptr().add(parent),
                    self.payloads.as_mut_ptr().add(i),
                    1,
                );
                i = parent;
            }
            *self.keys.get_unchecked_mut(i) = key;
            std::ptr::write(self.payloads.as_mut_ptr().add(i), payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ns: u64, seq: u64) -> EventKey {
        EventKey { at: SimTime::from_nanos(ns), seq }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut h = KeyedHeap::new();
        h.push(key(30, 2), "d");
        h.push(key(10, 0), "a");
        h.push(key(10, 1), "b");
        h.push(key(20, 3), "c");
        let order: Vec<&str> = std::iter::from_fn(|| h.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
        assert!(h.is_empty());
    }

    #[test]
    fn simultaneous_keys_break_ties_by_seq() {
        let mut h = KeyedHeap::new();
        for seq in (0..64).rev() {
            h.push(key(5, seq), seq);
        }
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|(_, p)| p)).collect();
        let expected: Vec<u64> = (0..64).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn keys_and_payloads_stay_in_lockstep() {
        let mut h = KeyedHeap::new();
        // Pseudo-random interleaving of pushes and pops; each payload
        // records the key it was pushed with so a desync is detectable.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut seq = 0u64;
        let mut pushed = 0usize;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if !state.is_multiple_of(3) || pushed == 0 {
                let at = state >> 32;
                h.push(key(at, seq), (at, seq));
                seq += 1;
                pushed += 1;
            } else {
                let before = h.peek_key().expect("non-empty");
                let (k, (at, s)) = h.pop().expect("non-empty");
                assert_eq!(k, before, "pop disagrees with peek");
                assert_eq!((k.at.as_nanos(), k.seq), (at, s), "payload desynced from key");
                // Everything still queued must be >= what just popped.
                if let Some(next) = h.peek_key() {
                    assert!(next >= k, "heap property violated");
                }
                pushed -= 1;
            }
        }
        assert_eq!(h.len(), pushed);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut h = KeyedHeap::new();
        assert_eq!(h.peek_key(), None);
        h.push(key(7, 1), ());
        h.push(key(3, 0), ());
        assert_eq!(h.peek_key(), Some(key(3, 0)));
        let (k, ()) = h.pop().expect("non-empty");
        assert_eq!(k, key(3, 0));
        assert_eq!(h.peek_key(), Some(key(7, 1)));
    }

    #[test]
    fn drain_hands_back_every_entry() {
        let mut h = KeyedHeap::new();
        for seq in 0..100 {
            h.push(key(seq * 17 % 29, seq), seq);
        }
        let mut drained: Vec<u64> = h.drain().map(|(_, p)| p).collect();
        drained.sort_unstable();
        let expected: Vec<u64> = (0..100).collect();
        assert_eq!(drained, expected);
        assert!(h.is_empty());
        // The heap is reusable after a drain.
        h.push(key(1, 100), 100);
        assert_eq!(h.pop().map(|(_, p)| p), Some(100));
    }
}
