//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal serialisation framework under the `serde` name. Instead of
//! serde's visitor-based, serialiser-agnostic architecture, types convert
//! to and from a self-describing [`Value`] tree; `serde_json` (also
//! vendored) renders that tree as JSON text. The derive macros re-exported
//! here support the attribute subset this workspace uses:
//!
//! * `#[serde(default)]` and `#[serde(default = "path")]` on fields
//! * `#[serde(rename_all = "snake_case")]` on enums
//! * `#[serde(tag = "...")]` (internally tagged enums)
//! * `#[serde(transparent)]` on newtype structs
//!
//! Unit-only enums serialise as strings, data-carrying variants as
//! externally tagged one-entry maps (or tag-first maps when `tag` is
//! given), newtype structs as their inner value — all matching real
//! serde's JSON encodings, so configuration files stay compatible.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing value tree: the interchange format between typed data
/// and concrete encodings such as JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered key/value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| lookup(m, key))
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialisation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing-field error.
    pub fn missing(field: &str) -> DeError {
        DeError(format!("missing field `{field}`"))
    }

    /// Unknown-variant error.
    pub fn unknown_variant(name: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{name}` of {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serialises `self` to a value tree.
    fn serialize(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserialises from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `v` does not match the expected shape.
    fn deserialize(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent, if the type has an
    /// implicit default (only `Option<T>`, which defaults to `None`,
    /// mirroring serde's behaviour).
    fn if_missing() -> Option<Self> {
        None
    }
}

/// Map-entry lookup preserving first-match semantics.
pub fn lookup<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Extracts and deserialises struct field `name` from `entries`
/// (derive-internal).
///
/// # Errors
///
/// Returns [`DeError`] if the field is absent (and the type has no implicit
/// default) or fails to deserialise.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match lookup(entries, name) {
        Some(v) => T::deserialize(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::if_missing().ok_or_else(|| DeError::missing(name)),
    }
}

/// Like [`field`], but substitutes `default()` when the field is absent
/// (derive-internal, for `#[serde(default)]`).
///
/// # Errors
///
/// Returns [`DeError`] if a present field fails to deserialise.
pub fn field_or<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    default: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match lookup(entries, name) {
        Some(v) => T::deserialize(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Ok(default()),
    }
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                        <$t>::try_from(*x as u64)
                            .map_err(|_| DeError(format!("{x} out of range")))
                    }
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::F64(x) if x.fract() == 0.0 => Ok(*x as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn if_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output, as real serde_json's BTreeMap
        // backing does.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(keys.into_iter().map(|k| (k.clone(), self[k].serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::deserialize(val)?))).collect()
            }
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::deserialize(val)?))).collect()
            }
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = stringify!($t);
                            $t::deserialize(
                                it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                            )?
                        },)+))
                    }
                    other => Err(DeError::expected("sequence", other)),
                }
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_is_implicitly_optional() {
        let entries = vec![("a".to_string(), Value::U64(1))];
        let missing: Option<u64> = field(&entries, "b").unwrap();
        assert_eq!(missing, None);
        let present: Option<u64> = field(&entries, "a").unwrap();
        assert_eq!(present, Some(1));
        let required: Result<u64, _> = field(&entries, "b");
        assert!(required.is_err());
    }

    #[test]
    fn numbers_cross_deserialise() {
        assert_eq!(u32::deserialize(&Value::U64(7)).unwrap(), 7);
        assert_eq!(f64::deserialize(&Value::U64(7)).unwrap(), 7.0);
        assert_eq!(u64::deserialize(&Value::F64(7.0)).unwrap(), 7);
        assert!(u64::deserialize(&Value::F64(7.5)).is_err());
        assert!(u32::deserialize(&Value::I64(-1)).is_err());
    }

    #[test]
    fn hashmap_serialises_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.serialize();
        let entries = v.as_map().unwrap();
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }
}
