//! Simulated time.
//!
//! [`SimTime`] is a nanosecond-resolution instant/duration newtype. The
//! simulator never consults the wall clock; all timestamps are `SimTime`s
//! produced by the event engine. A single type is used for both instants and
//! durations (like `f64` seconds in many DES frameworks) because the
//! arithmetic never mixes units: instants differ to durations, durations add
//! to instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A simulated instant or duration with nanosecond resolution.
///
/// `SimTime` is ordered, hashable and cheap to copy. Construct one from a
/// floating-point number of seconds/milliseconds/microseconds, or from raw
/// nanoseconds.
///
/// # Examples
///
/// ```
/// use simkit::time::SimTime;
/// let a = SimTime::from_millis(1.5);
/// let b = SimTime::from_micros(500.0);
/// assert_eq!(a + b, SimTime::from_millis(2.0));
/// assert_eq!((a - b).as_millis(), 1.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation epoch) / zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from floating-point seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}s");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Creates a time from floating-point milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "invalid time: {ms}ms");
        SimTime((ms * 1e6).round() as u64)
    }

    /// Creates a time from floating-point microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid time: {us}us");
        SimTime((us * 1e3).round() as u64)
    }

    /// Creates a time from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60 * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as floating-point seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as floating-point milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as floating-point microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }

    /// Returns the larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Whether this is the zero time.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        assert!(rhs.is_finite() && rhs >= 0.0, "invalid factor: {rhs}");
        SimTime((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert_eq!(t.as_millis(), 1250.0);
        assert_eq!(t.as_micros(), 1_250_000.0);
        assert_eq!(t.as_secs(), 1.25);
    }

    #[test]
    fn from_mins_matches_secs() {
        assert_eq!(SimTime::from_mins(15), SimTime::from_secs(900.0));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10.0);
        let b = SimTime::from_millis(4.0);
        assert_eq!((a + b).as_millis(), 14.0);
        assert_eq!((a - b).as_millis(), 6.0);
        assert_eq!((a * 3).as_millis(), 30.0);
        assert_eq!((a * 0.5).as_millis(), 5.0);
        assert_eq!((a / 2).as_millis(), 5.0);
    }

    #[test]
    fn saturating_and_checked_sub() {
        let a = SimTime::from_millis(1.0);
        let b = SimTime::from_millis(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(SimTime::from_millis(1.0)));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_micros(1.0);
        let b = SimTime::from_millis(1.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5.0).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5.0).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5.0).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1.0, 2.0, 3.0].iter().map(|&s| SimTime::from_secs(s)).sum();
        assert_eq!(total, SimTime::from_secs(6.0));
    }

    #[test]
    fn serde_transparent() {
        let t = SimTime::from_nanos(42);
        let json = serde_json_str(&t);
        assert_eq!(json, "42");
    }

    // Minimal JSON encoding via serde's serializer-agnostic API is overkill
    // here; assert the transparent repr through the Debug of the raw value.
    fn serde_json_str(t: &SimTime) -> String {
        format!("{}", t.as_nanos())
    }
}
