//! Property-based tests of the framework layer: config round-trips and
//! client scheduling invariants.

use faas_sim::testutil::test_provider;
use faas_sim::types::{DeploymentMethod, Runtime, TransferMode};
use proptest::prelude::*;
use stellar_core::client::run_workload;
use stellar_core::config::{ChainConfig, IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::deployer::deploy;

fn runtime_strategy() -> impl Strategy<Value = Runtime> {
    prop_oneof![Just(Runtime::Python3), Just(Runtime::Go)]
}

fn deployment_strategy() -> impl Strategy<Value = DeploymentMethod> {
    prop_oneof![Just(DeploymentMethod::Zip), Just(DeploymentMethod::Container)]
}

fn iat_strategy() -> impl Strategy<Value = IatSpec> {
    prop_oneof![
        (1.0f64..1e6).prop_map(|ms| IatSpec::Fixed { ms }),
        (1.0f64..1e6).prop_map(|mean_ms| IatSpec::Exponential { mean_ms }),
        (1.0f64..1e5, 1.0f64..1e5)
            .prop_map(|(a, b)| IatSpec::Uniform { lo_ms: a.min(b), hi_ms: a.max(b) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static configs round-trip through JSON for arbitrary field values.
    #[test]
    fn static_config_json_round_trip(
        name in "[a-z][a-z0-9-]{0,20}",
        runtime in runtime_strategy(),
        deployment in deployment_strategy(),
        memory_mb in 1u32..10_000,
        extra_mb in 0.0f64..1000.0,
        replicas in 1u32..500,
    ) {
        let cfg = StaticConfig {
            functions: vec![StaticFunction {
                name, runtime, deployment, memory_mb,
                extra_image_mb: extra_mb, replicas,
            }],
        };
        let parsed = StaticConfig::from_json(&cfg.to_json()).expect("round trip");
        prop_assert_eq!(cfg, parsed);
    }

    /// Runtime configs round-trip through JSON and preserve validity.
    #[test]
    fn runtime_config_json_round_trip(
        iat in iat_strategy(),
        burst in 1u32..600,
        samples in 1u32..10_000,
        warmup in 0u32..20,
        exec in 0.0f64..60_000.0,
        chain_payload in prop::option::of(1u64..1_000_000_000u64),
    ) {
        let cfg = RuntimeConfig {
            iat,
            burst_size: burst,
            samples,
            warmup_rounds: warmup,
            exec_ms: exec,
            workload: None,
            policy: None,
            faults: None,
            chain: chain_payload.map(|payload_bytes| ChainConfig {
                length: 2,
                mode: TransferMode::Storage,
                payload_bytes,
            }),
        };
        prop_assert!(cfg.validate().is_ok());
        let parsed = RuntimeConfig::from_json(&cfg.to_json()).expect("round trip");
        prop_assert_eq!(cfg, parsed);
    }

    /// measured_rounds() × burst_size always covers the requested samples
    /// without overshooting by more than one round.
    #[test]
    fn measured_rounds_cover_samples(burst in 1u32..1000, samples in 1u32..100_000) {
        let cfg = RuntimeConfig {
            iat: IatSpec::short(),
            burst_size: burst,
            samples,
            warmup_rounds: 0,
            exec_ms: 0.0,
            chain: None,
            workload: None,
            policy: None,
            faults: None,
        };
        let produced = cfg.measured_rounds() * burst;
        prop_assert!(produced >= samples);
        prop_assert!(produced < samples + burst);
    }

    /// The client collects exactly the requested number of measured
    /// samples for arbitrary (small) workload shapes, and warm-up samples
    /// never leak into the measurement.
    #[test]
    fn client_sample_accounting(
        seed in any::<u64>(),
        burst in 1u32..8,
        samples in 1u32..40,
        warmup in 0u32..4,
        replicas in 1u32..5,
    ) {
        let static_cfg = StaticConfig {
            functions: vec![StaticFunction::python_zip("p").with_replicas(replicas)],
        };
        let runtime_cfg = RuntimeConfig {
            iat: IatSpec::Fixed { ms: 500.0 },
            burst_size: burst,
            samples,
            warmup_rounds: warmup,
            exec_ms: 0.0,
            chain: None,
            workload: None,
            policy: None,
            faults: None,
        };
        let mut cloud = faas_sim::cloud::CloudSim::new(test_provider(), seed);
        let deployment = deploy(&mut cloud, &static_cfg, &runtime_cfg).expect("deploy");
        let result = run_workload(&mut cloud, &deployment, &runtime_cfg, seed).expect("run");
        let expected = runtime_cfg.measured_rounds() * burst;
        prop_assert_eq!(result.completions.len() as u32, expected);
        prop_assert_eq!(result.warmup_completions.len() as u32, warmup * burst);
        for c in &result.completions {
            prop_assert!(c.tag >= u64::from(warmup));
        }
        for c in &result.warmup_completions {
            prop_assert!(c.tag < u64::from(warmup));
        }
    }
}
