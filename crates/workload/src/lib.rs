//! # stellar-workload — workload models for the STeLLAR reproduction
//!
//! The paper's client (§IV) drives functions at a fixed inter-arrival
//! time with optional bursts. This crate generalizes that into a workload
//! subsystem: pluggable, deterministic [`arrival::ArrivalProcess`]
//! implementations (fixed, Poisson, Gamma/Weibull, MMPP on-off bursts,
//! diurnal cycles, Azure-trace replay, and multi-tenant combinators), a
//! serde-backed [`spec::WorkloadSpec`] wired through config files and the
//! CLI, and an O(1) [`stats::LoadRecorder`] that characterizes the load a
//! run actually offered (rate, IAT CV, peak-to-mean, Fano factor).
//!
//! ## Quick start
//!
//! ```
//! use simkit::rng::Rng;
//! use workload::spec::WorkloadSpec;
//!
//! let spec = WorkloadSpec::preset("mmpp-burst").unwrap();
//! let mut process = spec.build(42);
//! let mut rng = Rng::seed_from(42).fork("gaps");
//! let mut t = 0.0;
//! let mut recorder = workload::stats::LoadRecorder::default();
//! for _ in 0..1000 {
//!     recorder.record(t);
//!     t += process.next_gap_ms(&mut rng);
//! }
//! let load = recorder.finish();
//! assert!(load.iat_cv > 1.0, "MMPP bursts are overdispersed");
//! ```

pub mod arrival;
pub mod spec;
pub mod stats;

pub use arrival::{ArrivalProcess, EXHAUSTED};
pub use spec::{ArrivalPart, ArrivalSpec, ModeSpec, WorkloadSpec};
pub use stats::{LoadRecorder, OfferedLoad};
