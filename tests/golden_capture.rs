//! Golden regression pins for the streaming client path.
//!
//! The bit-exact constants below were captured from the pre-refactor
//! streaming path (submit everything up front, then drain in slices).
//! The current path interleaves just-in-time submission with simulation
//! under a submission window; these tests pin that the refactor — and any
//! future change to the client, cloud, or engine — reproduces the legacy
//! output exactly: same counts, same simulated duration, same latency
//! aggregate bits.

use stellar_core::client::{run_workload_spec, run_workload_with, MeasureSpec};
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::deployer::deploy;
use workload::spec::WorkloadSpec;

struct Golden {
    label: &'static str,
    iat: IatSpec,
    samples: u32,
    warmup: u32,
    burst: u32,
    measured: u64,
    warmup_count: u64,
    cold: u64,
    dur_ns: u64,
    mean_bits: u64,
    p50_bits: u64,
    p99_bits: u64,
}

const CLOUD_SEED: u64 = 7;
const CLIENT_SEED: u64 = 9;

#[test]
fn streaming_path_matches_pre_refactor_golden() {
    let goldens = [
        Golden {
            label: "fixed",
            iat: IatSpec::Fixed { ms: 250.0 },
            samples: 500,
            warmup: 20,
            burst: 1,
            measured: 500,
            warmup_count: 20,
            cold: 0,
            dur_ns: 130_939_453_086,
            mean_bits: 0x4044_4000_0000_0000,
            p50_bits: 0x4044_4000_0000_0000,
            p99_bits: 0x4044_4000_0000_0000,
        },
        Golden {
            label: "fixed-burst",
            iat: IatSpec::Fixed { ms: 2_000.0 },
            samples: 300,
            warmup: 10,
            burst: 10,
            measured: 300,
            warmup_count: 100,
            cold: 0,
            dur_ns: 78_257_812_500,
            mean_bits: 0x4045_6000_0000_0000,
            p50_bits: 0x4045_6000_0000_0000,
            p99_bits: 0x4046_8000_0000_0000,
        },
        Golden {
            label: "expo",
            iat: IatSpec::Exponential { mean_ms: 50.0 },
            samples: 400,
            warmup: 10,
            burst: 1,
            measured: 400,
            warmup_count: 10,
            cold: 0,
            dur_ns: 19_989_191_616,
            mean_bits: 0x4044_4098_8df0_c3f8,
            p50_bits: 0x4044_4000_0000_0000,
            p99_bits: 0x4044_5edd_c126_5077,
        },
    ];
    for g in goldens {
        let mut cfg = RuntimeConfig::single(g.iat.clone(), g.samples);
        cfg.warmup_rounds = g.warmup;
        cfg.burst_size = g.burst;
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cloud =
            faas_sim::cloud::CloudSim::new(faas_sim::testutil::test_provider(), CLOUD_SEED);
        let d = deploy(&mut cloud, &static_cfg, &cfg).unwrap();
        let r =
            run_workload_with(&mut cloud, &d, &cfg, CLIENT_SEED, &MeasureSpec::sketch()).unwrap();
        let mut agg = r.latency_agg.clone();
        assert_eq!(r.measured_count, g.measured, "{}: measured", g.label);
        assert_eq!(r.warmup_count, g.warmup_count, "{}: warmup", g.label);
        assert_eq!(r.cold_count, g.cold, "{}: cold", g.label);
        assert_eq!(r.duration.as_nanos(), g.dur_ns, "{}: duration drifted", g.label);
        assert_eq!(agg.mean().to_bits(), g.mean_bits, "{}: mean bits drifted", g.label);
        assert_eq!(agg.quantile(0.5).to_bits(), g.p50_bits, "{}: p50 bits drifted", g.label);
        assert_eq!(agg.quantile(0.99).to_bits(), g.p99_bits, "{}: p99 bits drifted", g.label);
    }
}

/// One-line digest of a run: counts, duration, and latency-aggregate bits.
/// String equality makes the pin bit-exact while a failure shows every
/// drifted field at once.
fn digest(r: &stellar_core::client::RunResult) -> String {
    let mut agg = r.latency_agg.clone();
    format!(
        "measured={} warmup={} cold={} dur_ns={} mean={:#018x} p50={:#018x} p99={:#018x}",
        r.measured_count,
        r.warmup_count,
        r.cold_count,
        r.duration.as_nanos(),
        agg.mean().to_bits(),
        agg.quantile(0.5).to_bits(),
        agg.quantile(0.99).to_bits(),
    )
}

/// The workload-spec driver with *no policy configured* must stay
/// byte-identical to its pre-policy-layer output (captured from the tree
/// at the commit introducing `stellar-policy`): attaching the policy
/// machinery may not move a single RNG draw or event on the default path.
#[test]
fn spec_driver_no_policy_matches_golden() {
    let cases: [(&str, &str, u32, u32, &str); 2] = [
        (
            "open-mmpp",
            "mmpp-burst",
            300,
            10,
            "measured=300 warmup=10 cold=17 dur_ns=14421019867 mean=0x404b1162f33829cb p50=0x4044400000000000 p99=0x4071880000000000",
        ),
        (
            "closed-loop",
            "closed-loop",
            300,
            10,
            "measured=300 warmup=10 cold=6 dur_ns=20000000000 mean=0x40487369d0369d03 p50=0x4046000000000000 p99=0x4071e8147ae147ae",
        ),
    ];
    for (label, preset, samples, warmup, golden) in cases {
        let mut cfg = RuntimeConfig::single(IatSpec::short(), samples);
        cfg.warmup_rounds = warmup;
        let spec = WorkloadSpec::preset(preset).unwrap();
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cloud =
            faas_sim::cloud::CloudSim::new(faas_sim::testutil::test_provider(), CLOUD_SEED);
        let d = deploy(&mut cloud, &static_cfg, &cfg).unwrap();
        let r = run_workload_spec(&mut cloud, &d, &cfg, &spec, CLIENT_SEED, &MeasureSpec::sketch())
            .unwrap();
        assert_eq!(digest(&r), golden, "{label}: no-policy spec driver drifted");
    }
}
