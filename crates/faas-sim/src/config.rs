//! Provider configuration: every knob of the simulated serverless cloud.
//!
//! A [`ProviderConfig`] fully describes one provider's infrastructure
//! behaviour — network propagation, warm-path overheads, burst dispatch,
//! autoscaling policy, cold-start stages, per-runtime models, image and
//! payload storage services, keep-alive policy and limits. The `providers`
//! crate ships calibrated configurations for the three clouds the paper
//! studies; this module only defines the schema and its validation.
//!
//! All latency distributions are in **milliseconds**; all bandwidths in
//! **decimal megabytes per second (MB/s)**; all sizes in **bytes** unless a
//! field name says otherwise.

use serde::{Deserialize, Serialize};
use simkit::dist::Dist;

use crate::types::Runtime;

/// Complete description of one simulated provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderConfig {
    /// Human-readable provider name (e.g. "aws-like").
    pub name: String,
    /// Client↔datacenter network model.
    pub network: NetworkConfig,
    /// Warm invocation path overheads.
    pub warm_path: WarmPathConfig,
    /// Load-balancer burst dispatch behaviour.
    pub dispatch: DispatchConfig,
    /// Autoscaling policy and instance-spawn throughput.
    pub scaling: ScalingConfig,
    /// Cold-start stage latencies.
    pub cold_start: ColdStartConfig,
    /// Per-language-runtime models.
    pub runtimes: RuntimeTable,
    /// Function image storage service.
    pub image_store: ImageStoreConfig,
    /// Payload (cross-function data) storage service.
    pub payload_store: PayloadStoreConfig,
    /// Idle instance keep-alive policy.
    pub keepalive: KeepAliveConfig,
    /// Hard limits and resource knobs.
    pub limits: LimitsConfig,
}

/// Client↔datacenter network model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way propagation delay between the benchmarking client and the
    /// provider's datacenter, in ms (paper §V measured 26/14/32 ms RTT
    /// contributions for AWS/Google/Azure).
    pub prop_delay_ms: Dist,
    /// Effective bandwidth for inline payloads carried inside invocation
    /// requests, MB/s (paper §VI-C1 measures 264/152 Mb/s ≈ 33/19 MB/s).
    pub inline_bandwidth_mbps: Dist,
    /// Maximum inline payload size in bytes (6 MB AWS, 10 MB Google).
    pub max_inline_payload: u64,
}

/// Warm invocation path overhead and its decomposition.
///
/// A single end-to-end warm overhead is sampled per request (calibrated to
/// the provider's measured warm median/p99) and split across the pipeline
/// stages by the fixed [`PathShares`], preserving a meaningful
/// per-component breakdown while keeping end-to-end calibration exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmPathConfig {
    /// Intra-datacenter warm overhead distribution, ms (excludes
    /// propagation).
    pub overhead_ms: Dist,
    /// Stage shares of the sampled overhead; must sum to 1.
    pub shares: PathShares,
}

/// Fractions of the warm overhead attributed to each pipeline stage
/// (Fig 1 steps ①, ②, ⑥, ⑦ and the response leg).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathShares {
    /// Front-end authentication (step ①).
    pub frontend: f64,
    /// Load-balancer routing decision (step ②).
    pub routing: f64,
    /// Steering through the instance manager (steps ⑥–⑦).
    pub steer: f64,
    /// In-instance request handling around user code (step ⑧).
    pub handling: f64,
    /// Response path back out of the datacenter.
    pub response: f64,
}

impl PathShares {
    /// A reasonable default split.
    pub fn balanced() -> PathShares {
        PathShares { frontend: 0.20, routing: 0.15, steer: 0.15, handling: 0.30, response: 0.20 }
    }

    fn sum(&self) -> f64 {
        self.frontend + self.routing + self.steer + self.handling + self.response
    }
}

/// Load-balancer burst dispatch behaviour (paper §VI-D).
///
/// Simultaneous requests drain through a serial dispatch server; per-request
/// service time degrades as the backlog grows (observed most strongly on
/// Azure). With probability `miss_prob` the balancer fails to locate an idle
/// instance and spawns a fresh one for the request — the source of occasional
/// cold-latency samples inside otherwise-warm bursts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchConfig {
    /// Per-request dispatch service time, ms.
    pub service_ms: Dist,
    /// Multiplicative degradation: effective service time is
    /// `service * (1 + degradation_per_100_backlog * backlog/100)`.
    pub degradation_per_100_backlog: f64,
    /// Probability that a request misses the idle-instance lookup and
    /// triggers a dedicated cold start.
    pub miss_prob: f64,
}

/// Autoscaling policy choices observed across providers (paper §VI-D3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum ScalePolicy {
    /// Spawn one instance per queued request; requests never share an
    /// instance (AWS Lambda's documented behaviour).
    PerRequest,
    /// Size the fleet to keep about `target` outstanding requests per
    /// instance (Knative-style; matches Google's ≤4-deep queuing).
    TargetConcurrency {
        /// Desired outstanding requests per instance.
        target: f64,
    },
    /// A scale controller adds `step` instances every `interval_ms` while a
    /// backlog exists (matches Azure's slow scale-out and deep queuing).
    Periodic {
        /// Controller period in ms.
        interval_ms: f64,
        /// Instances added per period.
        step: u32,
    },
    /// Queue at a warm instance only while the expected queueing delay
    /// stays below the expected cold-start delay, otherwise spawn. This is
    /// the optimisation the paper's Obs 7 points at: balancing request
    /// completion time against the number of active instances. Not
    /// observed in any production cloud; provided as an extension.
    CostAware {
        /// Expected cold-start delay used in the trade-off, ms.
        cold_estimate_ms: f64,
    },
}

/// Autoscaling configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingConfig {
    /// Which scale-out policy the provider uses.
    pub policy: ScalePolicy,
    /// Cluster-scheduler placement decision latency, ms (Fig 1 steps ③–④).
    pub decision_ms: Dist,
    /// Sustained instance spawn throughput, instances/second.
    pub spawn_rate_per_sec: f64,
    /// Spawn burst capacity (token bucket burst size), instances.
    pub spawn_burst: f64,
    /// Pending-spawn backlog that flips the scheduler into boosted batch
    /// provisioning; 0 disables (models Google's burst-500 improvement,
    /// §VI-D2).
    pub adaptive_spawn_threshold: u32,
    /// Spawn-rate multiplier while boosted (≥ 1).
    pub adaptive_spawn_mult: f64,
}

/// Cold-start stage latencies other than image fetch and runtime init
/// (paper §III, §VI-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdStartConfig {
    /// Sandbox (microVM / container) boot time, ms.
    pub sandbox_boot_ms: Dist,
    /// User handler initialisation after runtime init, ms.
    pub handler_init_ms: Dist,
    /// Whether image fetch overlaps sandbox boot (`max` instead of sum) —
    /// models Google's image-size insensitivity (§VI-B2).
    pub fetch_overlaps_boot: bool,
    /// Probability that a boot fails at completion and must be retried on
    /// a fresh instance (failure injection; must be < 1).
    #[serde(default)]
    pub boot_failure_prob: f64,
}

/// Per-runtime cold-start model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeModel {
    /// Language runtime initialisation, ms.
    pub init_ms: Dist,
    /// Size of the base image without user payload, decimal MB.
    pub base_image_mb: f64,
    /// Lazy chunk-load model applied when deployed as a container; `None`
    /// means a container image loads exactly like a ZIP (single read).
    pub container_chunks: Option<ChunkModel>,
}

/// Container splinter-loading model (§VI-B3): `count` extra on-demand chunk
/// fetches against image storage during startup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkModel {
    /// Minimum number of chunk fetches.
    pub count_lo: u32,
    /// Maximum number of chunk fetches (inclusive).
    pub count_hi: u32,
    /// Latency of a single chunk fetch, ms.
    pub chunk_latency_ms: Dist,
}

/// The two runtimes the paper evaluates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeTable {
    /// Model for Python 3.
    pub python3: RuntimeModel,
    /// Model for Go.
    pub go: RuntimeModel,
}

impl RuntimeTable {
    /// Looks up the model for `runtime`.
    pub fn model(&self, runtime: Runtime) -> &RuntimeModel {
        match runtime {
            Runtime::Python3 => &self.python3,
            Runtime::Go => &self.go,
        }
    }
}

/// Function image storage service (cost-optimised, §III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageStoreConfig {
    /// Per-fetch base latency, ms.
    pub base_latency_ms: Dist,
    /// Fetch bandwidth, MB/s.
    pub bandwidth_mbps: Dist,
    /// Caching / load-adaptation behaviour.
    pub cache: ImageCacheConfig,
}

/// Image-store caching model.
///
/// * **Warm cache** — a fetch completed within `warm_ttl_s` leaves the image
///   cached: later fetches see `warm_latency_mult`×base latency and
///   `warm_bandwidth_mult`×bandwidth. Explains AWS bursts getting *faster*
///   with long IAT (§VI-D2).
/// * **Load adaptation** — when at least `adaptive_threshold` fetches of the
///   image are in flight, bandwidth is boosted by `adaptive_bandwidth_mult`
///   (Google's burst-500 improvement, §VI-D2).
/// * **Contention** — effective bandwidth divides by
///   `1 + inflight / contention_parallelism` when `contention_parallelism`
///   is positive (shared storage frontends).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageCacheConfig {
    /// Whether the warm-cache path exists.
    pub enabled: bool,
    /// Fetches required within the TTL window before the cache admits the
    /// image (popularity threshold). Individual long-IAT cold starts never
    /// warm it; concurrent burst fetches do (§VI-D2).
    pub warm_min_recent: u32,
    /// How long a completed fetch keeps the image warm, seconds.
    pub warm_ttl_s: f64,
    /// Base-latency multiplier when warm (≤ 1).
    pub warm_latency_mult: f64,
    /// Bandwidth multiplier when warm (≥ 1).
    pub warm_bandwidth_mult: f64,
    /// In-flight fetch count that triggers load adaptation; 0 disables.
    pub adaptive_threshold: u32,
    /// Bandwidth multiplier under load adaptation (≥ 1).
    pub adaptive_bandwidth_mult: f64,
    /// Parallelism before contention kicks in; 0 disables contention.
    pub contention_parallelism: f64,
}

impl ImageCacheConfig {
    /// No caching, no adaptation, no contention.
    pub fn none() -> ImageCacheConfig {
        ImageCacheConfig {
            enabled: false,
            warm_min_recent: 1,
            warm_ttl_s: 0.0,
            warm_latency_mult: 1.0,
            warm_bandwidth_mult: 1.0,
            adaptive_threshold: 0,
            adaptive_bandwidth_mult: 1.0,
            contention_parallelism: 0.0,
        }
    }
}

/// Payload storage service used for storage-based transfers (§VI-C2).
///
/// Per-operation latency is `base + size/bandwidth`, where the base latency
/// distribution should carry the cost-optimised slow mode that produces the
/// paper's TMRs of 10–37 for storage transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PayloadStoreConfig {
    /// PUT base latency, ms.
    pub put_base_ms: Dist,
    /// GET base latency, ms.
    pub get_base_ms: Dist,
    /// Transfer bandwidth, MB/s.
    pub bandwidth_mbps: Dist,
}

/// Idle-instance keep-alive policy (§V footnote 5: AWS reaps after a fixed
/// 10 min; others are stochastic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeepAliveConfig {
    /// Idle lifetime sampled per idle period, ms.
    pub idle_timeout_ms: Dist,
}

/// Limits and resource knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LimitsConfig {
    /// Maximum concurrently existing instances per function.
    pub max_instances_per_function: u32,
    /// Memory size at which an instance gets a full CPU core; smaller
    /// memories are CPU-throttled linearly (§V).
    pub full_speed_memory_mb: u32,
}

impl ProviderConfig {
    /// Validates every distribution and structural invariant.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = |field: &str, e: String| format!("{}: {field}: {e}", self.name);
        self.network.prop_delay_ms.validate().map_err(|e| ctx("prop_delay_ms", e))?;
        self.network
            .inline_bandwidth_mbps
            .validate()
            .map_err(|e| ctx("inline_bandwidth_mbps", e))?;
        if self.network.max_inline_payload == 0 {
            return Err(ctx("max_inline_payload", "must be positive".into()));
        }
        self.warm_path.overhead_ms.validate().map_err(|e| ctx("warm overhead_ms", e))?;
        let share_sum = self.warm_path.shares.sum();
        if (share_sum - 1.0).abs() > 1e-6 {
            return Err(ctx("warm_path.shares", format!("sum to {share_sum}, expected 1.0")));
        }
        self.dispatch.service_ms.validate().map_err(|e| ctx("dispatch service_ms", e))?;
        if self.dispatch.degradation_per_100_backlog < 0.0 {
            return Err(ctx("dispatch.degradation", "must be non-negative".into()));
        }
        if !(0.0..=1.0).contains(&self.dispatch.miss_prob) {
            return Err(ctx("dispatch.miss_prob", "must be a probability".into()));
        }
        self.scaling.decision_ms.validate().map_err(|e| ctx("scaling decision_ms", e))?;
        if self.scaling.spawn_rate_per_sec <= 0.0 || self.scaling.spawn_burst <= 0.0 {
            return Err(ctx("scaling", "spawn rate and burst must be positive".into()));
        }
        if self.scaling.adaptive_spawn_mult < 1.0 {
            return Err(ctx("scaling.adaptive_spawn_mult", "must be >= 1".into()));
        }
        match &self.scaling.policy {
            ScalePolicy::PerRequest => {}
            ScalePolicy::TargetConcurrency { target } => {
                if *target < 1.0 {
                    return Err(ctx("scaling.policy", "target must be >= 1".into()));
                }
            }
            ScalePolicy::Periodic { interval_ms, step } => {
                if *interval_ms <= 0.0 || *step == 0 {
                    return Err(ctx(
                        "scaling.policy",
                        "periodic needs positive interval and step".into(),
                    ));
                }
            }
            ScalePolicy::CostAware { cold_estimate_ms } => {
                if *cold_estimate_ms <= 0.0 || cold_estimate_ms.is_nan() {
                    return Err(ctx(
                        "scaling.policy",
                        "cost-aware needs a positive cold estimate".into(),
                    ));
                }
            }
        }
        self.cold_start.sandbox_boot_ms.validate().map_err(|e| ctx("sandbox_boot_ms", e))?;
        self.cold_start.handler_init_ms.validate().map_err(|e| ctx("handler_init_ms", e))?;
        if !(0.0..=1.0).contains(&self.cold_start.boot_failure_prob) {
            return Err(ctx("cold_start.boot_failure_prob", "must be in [0, 1]".into()));
        }
        for (label, model) in [("python3", &self.runtimes.python3), ("go", &self.runtimes.go)] {
            model.init_ms.validate().map_err(|e| ctx(&format!("{label}.init_ms"), e))?;
            if model.base_image_mb < 0.0 {
                return Err(ctx(&format!("{label}.base_image_mb"), "negative".into()));
            }
            if let Some(chunks) = &model.container_chunks {
                if chunks.count_lo > chunks.count_hi {
                    return Err(ctx(&format!("{label}.container_chunks"), "lo > hi".into()));
                }
                chunks
                    .chunk_latency_ms
                    .validate()
                    .map_err(|e| ctx(&format!("{label}.chunk_latency_ms"), e))?;
            }
        }
        self.image_store.base_latency_ms.validate().map_err(|e| ctx("image base_latency", e))?;
        self.image_store.bandwidth_mbps.validate().map_err(|e| ctx("image bandwidth", e))?;
        let cache = &self.image_store.cache;
        if cache.warm_latency_mult < 0.0
            || cache.warm_bandwidth_mult < 1.0
            || cache.adaptive_bandwidth_mult < 1.0
            || cache.contention_parallelism < 0.0
            || cache.warm_ttl_s < 0.0
        {
            return Err(ctx("image cache", "multiplier/ttl out of range".into()));
        }
        self.payload_store.put_base_ms.validate().map_err(|e| ctx("payload put_base", e))?;
        self.payload_store.get_base_ms.validate().map_err(|e| ctx("payload get_base", e))?;
        self.payload_store.bandwidth_mbps.validate().map_err(|e| ctx("payload bandwidth", e))?;
        self.keepalive.idle_timeout_ms.validate().map_err(|e| ctx("keepalive", e))?;
        if self.limits.max_instances_per_function == 0 {
            return Err(ctx("limits.max_instances_per_function", "must be positive".into()));
        }
        if self.limits.full_speed_memory_mb == 0 {
            return Err(ctx("limits.full_speed_memory_mb", "must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_provider;

    #[test]
    fn test_provider_validates() {
        test_provider().validate().unwrap();
    }

    #[test]
    fn bad_shares_rejected() {
        let mut cfg = test_provider();
        cfg.warm_path.shares.frontend = 0.9;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("shares"), "{err}");
    }

    #[test]
    fn bad_miss_prob_rejected() {
        let mut cfg = test_provider();
        cfg.dispatch.miss_prob = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_policy_rejected() {
        let mut cfg = test_provider();
        cfg.scaling.policy = ScalePolicy::TargetConcurrency { target: 0.2 };
        assert!(cfg.validate().is_err());
        cfg.scaling.policy = ScalePolicy::Periodic { interval_ms: 0.0, step: 1 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn boot_failure_prob_range_is_inclusive() {
        let mut cfg = test_provider();
        cfg.cold_start.boot_failure_prob = 1.0; // always-fail is a legal setting
        cfg.validate().unwrap();
        cfg.cold_start.boot_failure_prob = 0.0;
        cfg.validate().unwrap();
        cfg.cold_start.boot_failure_prob = 1.0001;
        assert!(cfg.validate().is_err());
        cfg.cold_start.boot_failure_prob = -0.0001;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn chunk_model_bounds_checked() {
        let mut cfg = test_provider();
        cfg.runtimes.python3.container_chunks =
            Some(ChunkModel { count_lo: 5, count_hi: 2, chunk_latency_ms: Dist::constant(1.0) });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_limits_rejected() {
        let mut cfg = test_provider();
        cfg.limits.max_instances_per_function = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn runtime_table_lookup() {
        let cfg = test_provider();
        assert_eq!(cfg.runtimes.model(Runtime::Go).base_image_mb, cfg.runtimes.go.base_image_mb);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = test_provider();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ProviderConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn cache_none_is_inert() {
        let c = ImageCacheConfig::none();
        assert!(!c.enabled);
        assert_eq!(c.adaptive_threshold, 0);
        assert_eq!(c.contention_parallelism, 0.0);
    }
}
