//! A calendar-queue event scheduler with amortized O(1) operations.
//!
//! The engine's binary-heap backend costs O(log n) per
//! `schedule`/`pop`, which at millions of pending events (a full
//! client-submission schedule, say) turns the event queue itself into the
//! simulation bottleneck. [`CalendarQueue`] is the classic alternative
//! (Brown, CACM 1988): a bucketed timer wheel where each bucket ("day")
//! covers a fixed span of simulated time and one wheel revolution covers
//! `buckets × width` ("a year"). Events within the current revolution go
//! into their day's bucket; events beyond it wait in an *overflow heap*
//! and migrate into the wheel as the current day advances.
//!
//! With the bucket width matched to the observed inter-event spacing each
//! bucket holds O(1) events, so `schedule` is O(1) and `pop` is amortized
//! O(1): a pop scans one small bucket, occasionally advancing over empty
//! days. The queue *lazily resizes* — bucket count tracks the queue
//! length (doubling/halving thresholds) and the width is re-derived from
//! an exponentially weighted average of the gaps between consecutively
//! popped events, so the wheel adapts to whatever event density the
//! workload produces.
//!
//! # Ordering contract
//!
//! `pop` returns events in exactly the engine's dispatch order: ascending
//! `(time, seq)`. Equal-time events therefore come out in insertion (FIFO)
//! order, making the calendar backend a drop-in replacement for the binary
//! heap — every simulation produces bit-identical results on either.
//!
//! # Worst cases
//!
//! Pathological spacing (all events at one instant, or spacing that
//! changes by orders of magnitude without a resize trigger) degrades a pop
//! to O(bucket size) or a bounded hunt over empty days; a direct-search
//! fallback plus a forced rebuild keeps even those cases from going
//! quadratic. Both directions of width mismatch self-correct: a width too
//! *small* shows up as empty-day hunts (miss counter → rebuild), a width
//! too *large* as overcrowded days every pop re-scans (scan-work budget →
//! rebuild, once the pop-gap EWMA disagrees with the width). [`CalendarQueue::peek_time`] is O(buckets) — it is intended
//! for occasional inspection, not per-event polling (the engine's run loop
//! does not use it).

use crate::soa::{EventKey, KeyedHeap};
use crate::time::SimTime;

/// Smallest wheel size; also the initial size.
const MIN_BUCKETS: usize = 16;
/// Largest wheel size (2^18 buckets ≈ 6 MB of bucket headers); beyond
/// this, buckets simply hold more events each.
const MAX_BUCKETS: usize = 1 << 18;
/// Consecutive empty days scanned before `pop` gives up hunting and
/// direct-searches the wheel for the next occupied day.
const HUNT_LIMIT: u64 = 64;
/// How many wheel revolutions ahead of the current day an event may be
/// stored in the wheel before spilling to the overflow heap. Rebuilds size
/// the wheel for the *total* pending count (overflow included), so events
/// spread over several revolutions still average O(1) per bucket — the pop
/// scan already day-filters them — while every event admitted here is
/// spared the two O(log n) heap passes (push, then migrate-pop) that
/// overflow residency costs. A bulk-loaded schedule spanning many seconds
/// is the motivating case: with a single-revolution horizon most of it
/// double-handles through the heap and the wheel's O(1) regime never kicks
/// in.
const FUTURE_REVOLUTIONS: u64 = 8;
/// Direct-search fallbacks tolerated before forcing a rebuild with a
/// fresh width estimate.
const MISS_LIMIT: u32 = 8;

/// One wheel day, stored structure-of-arrays: the pop scan that hunts for
/// the earliest in-day event reads only the dense 16-byte key array;
/// payloads sit in a parallel array touched once per removal.
struct Bucket<E> {
    keys: Vec<EventKey>,
    events: Vec<E>,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket { keys: Vec::new(), events: Vec::new() }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn push(&mut self, key: EventKey, event: E) {
        self.keys.push(key);
        self.events.push(event);
    }

    fn swap_remove(&mut self, i: usize) -> (EventKey, E) {
        (self.keys.swap_remove(i), self.events.swap_remove(i))
    }
}

/// Cumulative self-correction counters of a [`CalendarQueue`].
///
/// Unlike the queue's internal `misses`/`scan_work` fields these are never
/// reset by a rebuild, so they describe the whole lifetime of the queue: a
/// well-matched wheel shows a small, bounded `rebuilds` count (growth
/// doublings plus the occasional correction) however many events pass
/// through — the observable signature of the amortized-O(1) regime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CalQueueStats {
    /// Total wheel rebuilds (growth, shrink, and corrective).
    pub rebuilds: u64,
    /// Empty-day hunts that gave up and direct-searched the wheel
    /// (signature of a bucket width that is too small).
    pub hunt_fallbacks: u64,
    /// Rebuilds forced by the scan-work budget (signature of a bucket
    /// width that is too large: overcrowded days re-scanned by every pop).
    pub overcrowd_rebuilds: u64,
}

/// A bucketed timer wheel with an overflow heap; see the module docs.
pub struct CalendarQueue<E> {
    /// The wheel: bucket `b` holds events whose day is ≡ `b` (mod buckets).
    buckets: Vec<Bucket<E>>,
    /// Span of simulated time covered by one bucket, ns. Always a power of
    /// two (= `1 << width_shift`): the width only tunes performance, never
    /// pop order, and rounding it up lets `day_of` — executed for every
    /// key a pop scans — be a shift instead of a 64-bit division.
    width_ns: u64,
    /// `log2(width_ns)`, the hot-path form of the width.
    width_shift: u32,
    /// The day currently being searched; all wheel events normally live in
    /// days `[day, day + buckets)`.
    day: u64,
    /// Events resident in the wheel.
    wheel_len: usize,
    /// Events beyond the current wheel revolution (SoA min-heap).
    overflow: KeyedHeap<E>,
    /// Total pending events (wheel + overflow).
    len: usize,
    /// EWMA of the gap between consecutively popped events, ns (0 until
    /// two pops with a non-zero gap have happened).
    gap_ewma_ns: f64,
    last_pop_ns: u64,
    popped_any: bool,
    /// Direct-search fallbacks since the last rebuild.
    misses: u32,
    /// Bucket entries examined by pops since the last rebuild (or the last
    /// overcrowding check); paired with `pops_since_rebuild` to detect a
    /// width that is too *large* — overcrowded days that every pop
    /// re-scans — which, unlike a too-small width, never produces empty-day
    /// hunts and so would otherwise go unnoticed.
    scan_work: u64,
    /// Successful pops since the last rebuild (or overcrowding check).
    pops_since_rebuild: u64,
    /// Capacity hint from [`CalendarQueue::reserve`]: lets one rebuild jump
    /// straight to the final wheel size instead of doubling repeatedly.
    capacity_hint: usize,
    /// Lifetime self-correction counters (never reset by rebuilds).
    stats: CalQueueStats,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with a 1 ms initial bucket width (re-derived at the
    /// first resize). The wheel itself is allocated lazily on the first
    /// `schedule`, so constructing a queue that never sees an event — every
    /// sweep cell's scheduler, every short toy run — costs no bucket
    /// allocations at all.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: Vec::new(),
            width_ns: 1 << 20, // ~1 ms: a sane default for a latency simulator
            width_shift: 20,
            day: 0,
            wheel_len: 0,
            overflow: KeyedHeap::new(),
            len: 0,
            gap_ewma_ns: 0.0,
            last_pop_ns: 0,
            popped_any: false,
            misses: 0,
            scan_work: 0,
            pops_since_rebuild: 0,
            capacity_hint: 0,
            stats: CalQueueStats::default(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Lifetime self-correction counters (see [`CalQueueStats`]).
    pub fn stats(&self) -> CalQueueStats {
        self.stats
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records that `additional` more events are coming, so the next
    /// rebuild sizes the wheel for the full workload at once.
    pub fn reserve(&mut self, additional: usize) {
        self.capacity_hint = self.capacity_hint.max(self.len + additional);
        self.overflow.reserve(additional.min(1 << 16));
    }

    /// Allocates the minimum wheel on first use (see [`CalendarQueue::new`]).
    fn ensure_wheel(&mut self) {
        if self.buckets.is_empty() {
            self.buckets = (0..MIN_BUCKETS).map(|_| Bucket::new()).collect();
        }
    }

    fn day_of(&self, at_ns: u64) -> u64 {
        at_ns >> self.width_shift
    }

    /// Installs `width` rounded up to a power of two (capped so the shift
    /// stays valid), keeping `width_ns` and `width_shift` in sync.
    fn set_width(&mut self, width: u64) {
        let w = width.max(1).checked_next_power_of_two().unwrap_or(1 << 63);
        self.width_ns = w;
        self.width_shift = w.trailing_zeros();
    }

    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    fn horizon_day(&self) -> u64 {
        self.day.saturating_add(self.buckets.len() as u64 * FUTURE_REVOLUTIONS)
    }

    /// Schedules `event` at `(at, seq)`. `seq` must be the engine's
    /// monotone tie-break counter; the queue imposes no constraint of its
    /// own on `at` (the engine's not-in-the-past check happens upstream).
    pub fn schedule(&mut self, at: SimTime, seq: u64, event: E) {
        self.ensure_wheel();
        let key = EventKey { at, seq };
        if self.len == 0 {
            // Empty queue: re-anchor the wheel on the new event.
            self.day = self.day_of(key.at.as_nanos());
        }
        self.insert(key, event);
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            let target = self.len.max(self.capacity_hint);
            self.rebuild(target);
        }
    }

    /// Inserts without resize checks (shared by `schedule` and `rebuild`).
    fn insert(&mut self, key: EventKey, event: E) {
        let d = self.day_of(key.at.as_nanos());
        self.len += 1;
        if d >= self.horizon_day() {
            self.overflow.push(key, event);
        } else {
            if d < self.day {
                // A push-back below the search day (run_until restoring an
                // event it popped past the horizon): rewind. Wheel events
                // beyond the rewound revolution are caught by the per-day
                // filter and the direct-search fallback in `pop`.
                self.day = d;
            }
            let b = (d & self.mask() as u64) as usize;
            self.buckets[b].push(key, event);
            self.wheel_len += 1;
        }
    }

    /// Removes and returns the earliest `(time, seq, event)`, or `None`
    /// when empty.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            self.jump_to_overflow();
        }
        let mut empty_scanned = 0u64;
        loop {
            let b = (self.day & self.mask() as u64) as usize;
            // The scan touches only the key array; payloads stay cold
            // until the single swap_remove on a hit.
            let mut best: Option<(usize, EventKey)> = None;
            let keys = &self.buckets[b].keys;
            for (i, &k) in keys.iter().enumerate() {
                if self.day_of(k.at.as_nanos()) == self.day && best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
            if let Some((i, _)) = best {
                self.scan_work += self.buckets[b].len() as u64;
                let (key, event) = self.buckets[b].swap_remove(i);
                self.wheel_len -= 1;
                self.len -= 1;
                self.note_pop(key.at.as_nanos());
                self.pops_since_rebuild += 1;
                if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
                    // Shrinking is proof the reserve() hint overstated the
                    // *concurrent* pending set (a streaming client submits
                    // its bulk load in slices); drop it so later growth
                    // rebuilds size the wheel to reality, not the hint.
                    self.capacity_hint = 0;
                    self.rebuild(self.len);
                } else {
                    self.check_overcrowding();
                }
                return Some((key.at, key.seq, event));
            }
            // Day empty: advance, letting newly in-range overflow events in.
            self.day += 1;
            empty_scanned += 1;
            self.migrate_overflow();
            if self.wheel_len == 0 {
                debug_assert!(!self.overflow.is_empty(), "len>0 but both stores empty");
                self.jump_to_overflow();
                empty_scanned = 0;
                continue;
            }
            if empty_scanned > HUNT_LIMIT {
                // Sparse wheel: stop hunting day by day and jump straight
                // to the next occupied day — which may live in the
                // overflow heap, not the wheel.
                let wheel_min = self
                    .buckets
                    .iter()
                    .flat_map(|bucket| &bucket.keys)
                    .map(|k| self.day_of(k.at.as_nanos()))
                    .min()
                    .expect("wheel_len > 0 but no slot found");
                let over_min = self.overflow.peek_key().map(|k| self.day_of(k.at.as_nanos()));
                self.day = over_min.map_or(wheel_min, |o| wheel_min.min(o));
                self.migrate_overflow();
                empty_scanned = 0;
                self.misses += 1;
                self.stats.hunt_fallbacks += 1;
                if self.misses >= MISS_LIMIT {
                    // The width is badly matched to the observed spacing;
                    // rebuild with a fresh estimate.
                    self.rebuild(self.len);
                }
            }
        }
    }

    /// Timestamp of the earliest pending event, if any.
    ///
    /// O(buckets + pending) — meant for occasional inspection, not
    /// per-event polling.
    pub fn peek_time(&self) -> Option<SimTime> {
        let wheel = self.buckets.iter().flat_map(|b| &b.keys).map(|k| k.at.as_nanos()).min();
        let over = self.overflow.peek_key().map(|k| k.at.as_nanos());
        match (wheel, over) {
            (Some(a), Some(b)) => Some(SimTime::from_nanos(a.min(b))),
            (Some(a), None) | (None, Some(a)) => Some(SimTime::from_nanos(a)),
            (None, None) => None,
        }
    }

    /// Points the wheel at the earliest overflow event and pulls the newly
    /// in-range overflow events in.
    fn jump_to_overflow(&mut self) {
        if let Some(k) = self.overflow.peek_key() {
            self.day = self.day_of(k.at.as_nanos());
            self.migrate_overflow();
        }
    }

    /// Moves overflow events that now fall inside the wheel revolution.
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon_day();
        while let Some(k) = self.overflow.peek_key() {
            if self.day_of(k.at.as_nanos()) >= horizon {
                break;
            }
            let (key, event) = self.overflow.pop().expect("peeked entry vanished");
            let d = self.day_of(key.at.as_nanos());
            let b = (d & self.mask() as u64) as usize;
            self.buckets[b].push(key, event);
            self.wheel_len += 1;
        }
    }

    /// Forces a rebuild when pops average too much bucket scanning AND the
    /// observed inter-pop spacing says a fresh width would actually spread
    /// the load (simultaneous events, which no width can separate, leave
    /// the EWMA untouched and are deliberately not "fixed" here: repeated
    /// O(len) rebuilds would be strictly worse than the bucket scans).
    fn check_overcrowding(&mut self) {
        const SCAN_BUDGET_PER_POP: u64 = 16;
        if self.scan_work <= SCAN_BUDGET_PER_POP * self.pops_since_rebuild + 64 {
            return;
        }
        self.scan_work = 0;
        self.pops_since_rebuild = 0;
        if self.gap_ewma_ns >= 1.0 {
            let fresh = (self.gap_ewma_ns * 2.0).min(u64::MAX as f64) as u64;
            let mismatched = fresh < self.width_ns / 4 || fresh / 4 > self.width_ns;
            if mismatched {
                self.stats.overcrowd_rebuilds += 1;
                self.rebuild(self.len);
            }
        }
    }

    fn note_pop(&mut self, at_ns: u64) {
        if self.popped_any {
            let gap = at_ns.saturating_sub(self.last_pop_ns);
            // Zero gaps (simultaneous events) carry no spacing signal and
            // would drive the width to nothing; skip them.
            if gap > 0 {
                self.gap_ewma_ns = if self.gap_ewma_ns == 0.0 {
                    gap as f64
                } else {
                    0.875 * self.gap_ewma_ns + 0.125 * gap as f64
                };
            }
        }
        self.last_pop_ns = at_ns;
        self.popped_any = true;
    }

    /// Rebuilds the wheel sized for `target_len` events, re-deriving the
    /// bucket width from the observed inter-pop spacing (or, before any
    /// pops, from the span of the pending events).
    fn rebuild(&mut self, target_len: usize) {
        self.stats.rebuilds += 1;
        let new_n = target_len.max(1).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut keys: Vec<EventKey> = Vec::with_capacity(self.len);
        let mut events: Vec<E> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            keys.append(&mut bucket.keys);
            events.append(&mut bucket.events);
        }
        for (k, e) in self.overflow.drain() {
            keys.push(k);
            events.push(e);
        }

        let width = if self.gap_ewma_ns >= 1.0 {
            // Two bucket-widths per observed gap keeps ~1 event per day
            // with headroom for jitter.
            (self.gap_ewma_ns * 2.0).min(u64::MAX as f64) as u64
        } else if keys.len() > 1 {
            // No pop-gap signal yet: estimate from the pending events
            // themselves. The *median* inter-event gap, not span/len — a
            // single far-future timer (a keep-alive expiry, say) amid a
            // dense bulk load would blow a span-based width up by orders
            // of magnitude, cramming the whole workload into one day.
            let mut times: Vec<u64> = keys.iter().map(|k| k.at.as_nanos()).collect();
            times.sort_unstable();
            let mut gaps: Vec<u64> =
                times.windows(2).map(|w| w[1] - w[0]).filter(|&g| g > 0).collect();
            if gaps.is_empty() {
                self.width_ns
            } else {
                let mid = gaps.len() / 2;
                let (_, median, _) = gaps.select_nth_unstable(mid);
                (*median).saturating_mul(2)
            }
        } else {
            self.width_ns
        };
        self.set_width(width);

        if self.buckets.len() != new_n {
            self.buckets = (0..new_n).map(|_| Bucket::new()).collect();
        }
        self.len = 0;
        self.wheel_len = 0;
        self.misses = 0;
        self.scan_work = 0;
        self.pops_since_rebuild = 0;
        self.day = keys
            .iter()
            .map(|k| self.day_of(k.at.as_nanos()))
            .min()
            .unwrap_or_else(|| self.day_of(self.last_pop_ns));
        for (k, e) in keys.into_iter().zip(events) {
            self.insert(k, e);
        }
    }
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width_ns", &self.width_ns)
            .field("day", &self.day)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at.as_nanos(), seq));
        }
        out
    }

    #[test]
    fn new_allocates_no_buckets_until_first_schedule() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert_eq!(q.buckets.len(), 0, "fresh queue must not allocate the wheel");
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        q.reserve(100);
        assert_eq!(q.buckets.len(), 0, "reserve alone must not allocate the wheel");
        q.schedule(SimTime::from_millis(1.0), 0, 7);
        assert_eq!(q.buckets.len(), MIN_BUCKETS);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(7));
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(30), 0, 0);
        q.schedule(SimTime::from_nanos(10), 1, 1);
        q.schedule(SimTime::from_nanos(10), 2, 2);
        q.schedule(SimTime::from_nanos(20), 3, 3);
        assert_eq!(drain(&mut q), vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn handles_far_future_overflow_events() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(1e6), 0, 0); // far future
        q.schedule(SimTime::from_nanos(5), 1, 1);
        q.schedule(SimTime::from_mins(15), 2, 2); // keep-alive scale
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn interleaved_schedule_and_pop_is_totally_ordered() {
        // A chain-like pattern: every pop schedules a later event.
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(0), 0, 0);
        let mut seq = 1u64;
        let mut last = (0u64, 0u64);
        let mut popped = 0;
        while let Some((at, s, _)) = q.pop() {
            assert!((at.as_nanos(), s) >= last, "order violated at pop {popped}");
            last = (at.as_nanos(), s);
            popped += 1;
            if popped < 1000 {
                q.schedule(at + SimTime::from_micros(7.0), seq, 0);
                seq += 1;
            }
        }
        assert_eq!(popped, 1000);
    }

    #[test]
    fn grows_and_shrinks_through_resizes() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(i * 1_000), i, i as u32);
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "wheel should have grown");
        let order = drain(&mut q);
        assert_eq!(order.len(), 10_000);
        assert!(order.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(q.buckets.len(), MIN_BUCKETS, "wheel should shrink when drained");
    }

    #[test]
    fn simultaneous_events_fifo_by_seq() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.schedule(SimTime::from_millis(5.0), i, i as u32);
        }
        let seqs: Vec<u64> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_global_min() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(100.0), 0, 0);
        q.schedule(SimTime::from_millis(2.0), 1, 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2.0)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(100.0)));
    }

    #[test]
    fn push_back_below_search_day_rewinds() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(10.0), 0, 0);
        let (at, seq, ev) = q.pop().expect("event");
        // Restore the popped event (run_until's past-the-horizon path),
        // then add an earlier one; both must come out in order.
        q.schedule(at, seq, ev);
        q.schedule(SimTime::from_secs(1.0), 1, 9);
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn widely_spaced_events_do_not_hang() {
        // Gaps spanning nine orders of magnitude force the hunt fallback.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        for exp in 0..12u32 {
            for k in 0..10u64 {
                q.schedule(SimTime::from_nanos(10u64.pow(exp) + k), seq, 0);
                seq += 1;
            }
        }
        let order = drain(&mut q);
        assert_eq!(order.len(), 120);
        assert!(order.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn far_future_timer_does_not_skew_bulk_width() {
        // Regression: a reserve()-hinted bulk load jumps the wheel to its
        // final size in one rebuild, so that rebuild's width estimate must
        // not be poisoned by a lone far-future timer (span/len would give
        // ~15 s here, cramming all 5k events into one day — O(n²) pops).
        let mut q = CalendarQueue::new();
        q.reserve(5_000);
        q.schedule(SimTime::from_secs(600.0), 0, 0); // keep-alive timer
        for i in 0..5_000u64 {
            q.schedule(SimTime::from_millis(i as f64), i + 1, 0);
        }
        assert!(
            q.width_ns <= 20_000_000,
            "width {}ns skewed by the far-future outlier",
            q.width_ns
        );
        let order = drain(&mut q);
        assert_eq!(order.len(), 5_001);
        assert!(order.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn density_shift_recovers_via_overcrowding_rebuild() {
        // Sparse phase (10 s gaps) inflates the EWMA, then a dense burst
        // (1 µs gaps) arrives: the first growth rebuild inherits the huge
        // width, and only the scan-work budget can trigger the corrective
        // rebuilds. Ordering must survive the whole recovery.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        for i in 0..8u64 {
            q.schedule(SimTime::from_secs(10.0 * i as f64), seq, 0);
            seq += 1;
        }
        let mut out = Vec::new();
        while let Some((at, s, _)) = q.pop() {
            out.push((at.as_nanos(), s));
        }
        let burst_start = SimTime::from_secs(100.0);
        for i in 0..3_000u64 {
            q.schedule(burst_start + SimTime::from_micros(i as f64), seq, 0);
            seq += 1;
        }
        while let Some((at, s, _)) = q.pop() {
            out.push((at.as_nanos(), s));
        }
        assert_eq!(out.len(), 8 + 3_000);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            q.width_ns < 1_000_000_000,
            "width {}ns never recovered from the sparse phase",
            q.width_ns
        );
    }

    #[test]
    fn stats_survive_rebuilds_and_stay_bounded() {
        // A smooth bulk load triggers only growth/shrink rebuilds: the
        // lifetime counters must accumulate across them (they are not the
        // per-rebuild `misses` fields) and stay logarithmic in n.
        let mut q = CalendarQueue::new();
        for i in 0..50_000u64 {
            q.schedule(SimTime::from_nanos(i * 1_000), i, 0u32);
        }
        let loaded = q.stats();
        assert!(loaded.rebuilds > 0, "bulk load must grow the wheel");
        drain(&mut q);
        let end = q.stats();
        assert!(end.rebuilds >= loaded.rebuilds, "counters must not reset");
        assert!(end.rebuilds < 48, "rebuilds {} not O(log n)", end.rebuilds);
    }

    #[test]
    fn overcrowding_rebuilds_are_counted() {
        // The density-shift scenario: corrective rebuilds triggered by the
        // scan-work budget must show up in `overcrowd_rebuilds`.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        for i in 0..8u64 {
            q.schedule(SimTime::from_secs(10.0 * i as f64), seq, 0u32);
            seq += 1;
        }
        while q.pop().is_some() {}
        let burst_start = SimTime::from_secs(100.0);
        for i in 0..3_000u64 {
            q.schedule(burst_start + SimTime::from_micros(i as f64), seq, 0u32);
            seq += 1;
        }
        while q.pop().is_some() {}
        assert!(q.stats().overcrowd_rebuilds > 0, "stats {:?}", q.stats());
    }

    #[test]
    fn reserve_then_bulk_load_round_trips() {
        let mut q = CalendarQueue::new();
        q.reserve(50_000);
        for i in 0..50_000u64 {
            q.schedule(SimTime::from_micros(i as f64 * 3.0), i, 0);
        }
        assert_eq!(q.len(), 50_000);
        let order = drain(&mut q);
        assert!(order.windows(2).all(|w| w[0] <= w[1]));
    }
}
