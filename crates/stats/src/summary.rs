//! One-struct latency summaries.

use serde::{Deserialize, Serialize};

use crate::percentile::{sort_samples, sorted_percentile};

/// Summary statistics of a latency sample set, in the units of the input
/// (the STeLLAR reproduction uses milliseconds throughout).
///
/// `tail` is the 99th percentile and `tmr` the tail-to-median ratio, the
/// paper's predictability metric (§V): a TMR above 10 is considered
/// "potentially problematic".
///
/// # Examples
///
/// ```
/// use stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]);
/// assert_eq!(s.count, 5);
/// assert_eq!(s.median, 3.0);
/// assert!(s.tmr > 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the paper's "tail latency".
    pub tail: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Tail-to-median ratio (p99 / median).
    pub tmr: f64,
}

impl Summary {
    /// The summary of zero samples: every statistic is 0 (and `tmr` with
    /// it). Exists for runs whose every request failed — e.g. a fault
    /// schedule injecting errors at probability 1 — where there is
    /// nothing to summarise but the run itself is still a valid outcome.
    pub fn empty() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
            p25: 0.0,
            median: 0.0,
            p75: 0.0,
            p90: 0.0,
            p95: 0.0,
            tail: 0.0,
            p999: 0.0,
            tmr: 0.0,
        }
    }

    /// Computes a summary from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "summary of empty sample set");
        let mut sorted = samples.to_vec();
        sort_samples(&mut sorted);
        Summary::from_sorted(&sorted)
    }

    /// Computes a summary from an ascending-sorted slice (no allocation
    /// beyond the struct).
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is empty.
    pub fn from_sorted(sorted: &[f64]) -> Summary {
        assert!(!sorted.is_empty(), "summary of empty sample set");
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let q = |p: f64| sorted_percentile(sorted, p);
        let median = q(0.5);
        let tail = q(0.99);
        Summary {
            count: n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p25: q(0.25),
            median,
            p75: q(0.75),
            p90: q(0.90),
            p95: q(0.95),
            tail,
            p999: q(0.999),
            tmr: if median > 0.0 { tail / median } else { f64::INFINITY },
        }
    }

    /// Whether the paper would flag this distribution as having
    /// problematic variability (TMR > 10, §V).
    pub fn is_tail_problematic(&self) -> bool {
        self.tmr > 10.0
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} median={:.2} p99={:.2} tmr={:.2} mean={:.2} min={:.2} max={:.2}",
            self.count, self.median, self.tail, self.tmr, self.mean, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std - 2.138).abs() < 0.001);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn single_sample_degenerate() {
        let s = Summary::from_samples(&[3.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.tail, 3.0);
        assert_eq!(s.tmr, 1.0);
    }

    #[test]
    fn tmr_flags_heavy_tail() {
        // 5% stragglers so the interpolated p99 lands inside the slow mode.
        let mut xs = vec![10.0; 95];
        xs.extend(std::iter::repeat_n(500.0, 5));
        let s = Summary::from_samples(&xs);
        assert!(s.tmr > 10.0);
        assert!(s.is_tail_problematic());
        let flat = Summary::from_samples(&vec![10.0; 100]);
        assert_eq!(flat.tmr, 1.0);
        assert!(!flat.is_tail_problematic());
    }

    #[test]
    fn zero_median_gives_infinite_tmr() {
        let s = Summary::from_samples(&[0.0, 0.0, 0.0, 1.0]);
        assert!(s.tmr.is_infinite());
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("median=2.00"));
        assert!(text.contains("n=3"));
    }

    #[test]
    fn serde_round_trip() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        // JSON float text may differ in the last ulp; compare key fields.
        assert_eq!(s.count, back.count);
        assert_eq!(s.median, back.median);
        assert_eq!(s.tail, back.tail);
        assert!((s.p999 - back.p999).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Summary::from_samples(&[]);
    }
}
