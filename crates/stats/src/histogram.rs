//! Log-spaced histograms.
//!
//! Latencies in serverless systems span four orders of magnitude (tens of
//! milliseconds warm to tens of seconds queued-cold), so the natural bin
//! layout is logarithmic.

use serde::{Deserialize, Serialize};

/// A histogram with logarithmically spaced bins over `[lo, hi)` plus
/// underflow/overflow buckets.
///
/// # Examples
///
/// ```
/// use stats::histogram::LogHistogram;
/// let mut h = LogHistogram::new(1.0, 1000.0, 3);
/// h.record(5.0);
/// h.record(50.0);
/// h.record(500.0);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.counts(), &[1, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` log-spaced bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> LogHistogram {
        assert!(lo > 0.0, "log histogram needs positive lower bound");
        assert!(hi > lo, "hi must exceed lo");
        assert!(bins > 0, "need at least one bin");
        LogHistogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (value / self.lo).ln() / (self.hi / self.lo).ln();
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Records many values.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Per-bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let k = self.counts.len() as f64;
        let ratio = self.hi / self.lo;
        let lo = self.lo * ratio.powf(i as f64 / k);
        let hi = self.lo * ratio.powf((i + 1) as f64 / k);
        (lo, hi)
    }

    /// Renders the histogram as ASCII bars with bin ranges.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as f64 / max as f64 * width as f64).round() as usize);
            out.push_str(&format!("[{lo:>10.2}, {hi:>10.2}) {c:>7} {bar}\n"));
        }
        if self.underflow > 0 {
            out.push_str(&format!("underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("overflow: {}\n", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decade_bins_land_correctly() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(2.0); // decade [1,10)
        h.record(20.0); // [10,100)
        h.record(200.0); // [100,1000)
        assert_eq!(h.counts(), &[1, 1, 1]);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = LogHistogram::new(10.0, 100.0, 2);
        h.record(1.0);
        h.record(100.0);
        h.record(1e9);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn boundary_values() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.record(1.0); // exactly lo -> first bin
        h.record(10.0); // edge between bins -> second bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn bin_edges_are_logarithmic() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        let (lo, hi) = h.bin_edges(1);
        assert!((lo - 10.0).abs() < 1e-9);
        assert!((hi - 100.0).abs() < 1e-9);
    }

    #[test]
    fn record_all_and_render() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record_all([2.0, 3.0, 30.0]);
        let art = h.render_ascii(20);
        assert!(art.contains('#'));
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive lower bound")]
    fn zero_lo_panics() {
        LogHistogram::new(0.0, 10.0, 2);
    }
}
