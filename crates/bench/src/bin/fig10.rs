//! Regenerates the paper's Fig 10 (Azure-trace TMR CDF); `--functions N`
//! overrides the synthetic trace size.

fn main() {
    let functions = std::env::args()
        .skip_while(|a| a != "--functions")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(bench::experiments::fig10::TRACE_FUNCTIONS);
    let report = bench::experiments::fig10::measure(functions).report();
    println!("{}", report.render());
}
