//! Property-based tests of individual simulator components (the cloud's
//! global invariants live in the workspace-level `tests/invariants.rs`).

use faas_sim::config::{DispatchConfig, ImageCacheConfig, ImageStoreConfig, PayloadStoreConfig};
use faas_sim::loadbalancer::DispatchServer;
use faas_sim::storage::{ImageStore, PayloadStore};
use faas_sim::types::FunctionId;
use proptest::prelude::*;
use simkit::dist::Dist;
use simkit::rng::Rng;
use simkit::time::SimTime;

fn image_store(cache: ImageCacheConfig, seed: u64) -> ImageStore {
    ImageStore::new(
        ImageStoreConfig {
            base_latency_ms: Dist::constant(50.0),
            bandwidth_mbps: Dist::constant(100.0),
            cache,
        },
        Rng::seed_from(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fetch latency is always positive and at least the transfer time at
    /// the configured bandwidth ceiling (accounting for boosts).
    #[test]
    fn image_fetch_latency_bounds(
        seed in any::<u64>(),
        size_mb in 0.1f64..500.0,
        fetches in 1usize..20,
    ) {
        let cache = ImageCacheConfig {
            enabled: true,
            warm_min_recent: 2,
            warm_ttl_s: 100.0,
            warm_latency_mult: 0.3,
            warm_bandwidth_mult: 8.0,
            adaptive_threshold: 0,
            adaptive_bandwidth_mult: 1.0,
            contention_parallelism: 0.0,
        };
        let mut store = image_store(cache, seed);
        for i in 0..fetches {
            let now = SimTime::from_secs(i as f64);
            let out = store.fetch(FunctionId::from_raw_for_tests(0), size_mb, now);
            prop_assert!(out.latency_ms > 0.0);
            // Never faster than the boosted-bandwidth floor.
            let floor = size_mb / (100.0 * 8.0) * 1000.0;
            prop_assert!(out.latency_ms >= floor - 1e-9);
        }
        prop_assert_eq!(store.stats().fetches, fetches as u64);
    }

    /// Cache hits never make a fetch slower than the cold path.
    #[test]
    fn warm_fetches_never_slower(seed in any::<u64>(), size_mb in 0.1f64..200.0) {
        let cache = ImageCacheConfig {
            enabled: true,
            warm_min_recent: 1,
            warm_ttl_s: 1000.0,
            warm_latency_mult: 0.2,
            warm_bandwidth_mult: 10.0,
            adaptive_threshold: 0,
            adaptive_bandwidth_mult: 1.0,
            contention_parallelism: 0.0,
        };
        let mut store = image_store(cache, seed);
        let fid = FunctionId::from_raw_for_tests(1);
        let cold = store.fetch(fid, size_mb, SimTime::ZERO);
        let warm = store.fetch(fid, size_mb, SimTime::from_secs(10.0));
        prop_assert!(warm.cache_warm);
        prop_assert!(warm.latency_ms <= cold.latency_ms + 1e-9);
    }

    /// Payload-store latency is monotone in payload size (same op index),
    /// and every op pays at least its base latency.
    #[test]
    fn payload_store_monotone_in_size(seed in any::<u64>(), small in 1u64..1_000_000, factor in 2u64..1000) {
        let cfg = PayloadStoreConfig {
            put_base_ms: Dist::constant(20.0),
            get_base_ms: Dist::constant(10.0),
            bandwidth_mbps: Dist::constant(100.0),
        };
        let mut a = PayloadStore::new(cfg.clone(), Rng::seed_from(seed));
        let mut b = PayloadStore::new(cfg, Rng::seed_from(seed));
        let large = small.saturating_mul(factor);
        let t_small = a.put_ms(small);
        let t_large = b.put_ms(large);
        prop_assert!(t_large >= t_small);
        prop_assert!(t_small >= 20.0);
        prop_assert!(b.get_ms(large) >= 10.0);
    }

    /// The dispatch server preserves arrival order: later arrivals never
    /// exit before earlier ones.
    #[test]
    fn dispatch_preserves_order(
        seed in any::<u64>(),
        gaps in prop::collection::vec(0u64..5_000_000, 1..100),
        degradation in 0.0f64..2.0,
    ) {
        let mut server = DispatchServer::new(DispatchConfig {
            service_ms: Dist::Uniform { lo: 0.1, hi: 3.0 },
            degradation_per_100_backlog: degradation,
            miss_prob: 0.0,
        });
        let mut rng = Rng::seed_from(seed);
        let mut now = SimTime::ZERO;
        let mut last_exit = SimTime::ZERO;
        for gap in gaps {
            now += SimTime::from_nanos(gap);
            let out = server.dispatch(now, &mut rng);
            prop_assert!(out.ready_at >= now);
            prop_assert!(out.ready_at >= last_exit, "FIFO exit order violated");
            last_exit = out.ready_at;
        }
    }

    /// Degradation can only slow dispatch down, never speed it up, for
    /// identical arrival patterns and seeds.
    #[test]
    fn degradation_is_monotone(seed in any::<u64>(), n in 2usize..80) {
        let run = |deg: f64| {
            let mut server = DispatchServer::new(DispatchConfig {
                service_ms: Dist::constant(1.0),
                degradation_per_100_backlog: deg,
                miss_prob: 0.0,
            });
            let mut rng = Rng::seed_from(seed);
            let mut last = SimTime::ZERO;
            for _ in 0..n {
                last = server.dispatch(SimTime::ZERO, &mut rng).ready_at;
            }
            last
        };
        prop_assert!(run(1.0) >= run(0.0));
    }
}
