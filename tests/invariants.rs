//! Property-based integration tests: simulator conservation laws and
//! statistics invariants hold for arbitrary workloads and providers.

use faas_sim::cloud::CloudSim;
use faas_sim::spec::FunctionSpec;
use faas_sim::testutil::test_provider;
use faas_sim::types::TransferMode;
use proptest::prelude::*;
use providers::profiles::{aws_like, azure_like, google_like};
use simkit::time::SimTime;

fn provider_strategy() -> impl Strategy<Value = faas_sim::config::ProviderConfig> {
    prop_oneof![Just(test_provider()), Just(aws_like()), Just(google_like()), Just(azure_like()),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted request completes exactly once, regardless of the
    /// arrival pattern, burst shape or provider.
    #[test]
    fn every_request_completes_exactly_once(
        provider in provider_strategy(),
        seed in 0u64..1000,
        // Arbitrary arrival offsets (ms) and per-arrival burst sizes.
        arrivals in prop::collection::vec((0u64..120_000, 1u32..20), 1..40),
    ) {
        let mut cloud = CloudSim::new(provider, seed);
        let f = cloud.deploy(FunctionSpec::builder("prop").build()).unwrap();
        let mut expected = 0u64;
        for (offset_ms, burst) in &arrivals {
            for b in 0..*burst {
                cloud.submit(f, u64::from(b), SimTime::from_millis(*offset_ms as f64));
                expected += 1;
            }
        }
        cloud.run_until(SimTime::from_secs(4000.0));
        let done = cloud.drain_completions();
        prop_assert_eq!(done.len() as u64, expected);
        // No duplicate completions.
        let mut ids: Vec<_> = done.iter().map(|c| c.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, expected);
    }

    /// The per-component breakdown always sums to the end-to-end latency,
    /// and causality holds (completion after issue).
    #[test]
    fn breakdown_conservation(
        provider in provider_strategy(),
        seed in 0u64..1000,
        exec_ms in 0f64..2000.0,
        burst in 1u32..50,
    ) {
        let mut cloud = CloudSim::new(provider, seed);
        let f = cloud
            .deploy(FunctionSpec::builder("prop").exec_constant_ms(exec_ms).build())
            .unwrap();
        for i in 0..burst {
            cloud.submit(f, u64::from(i), SimTime::ZERO);
        }
        cloud.run_until(SimTime::from_secs(4000.0));
        for c in cloud.drain_completions() {
            prop_assert!(c.completed_at >= c.issued_at);
            let diff = (c.breakdown.total_ms() - c.latency_ms()).abs();
            prop_assert!(diff < 1e-3, "breakdown off by {diff} (ns rounding tolerance 1e-3 ms)");
            prop_assert!(c.breakdown.exec_ms >= exec_ms - 1e-9);
        }
    }

    /// Chained workloads record exactly one transfer per completed parent,
    /// with the transfer window inside the parent's lifetime.
    #[test]
    fn chain_transfer_accounting(
        seed in 0u64..1000,
        payload in 1u64..5_000_000,
        mode in prop_oneof![Just(TransferMode::Inline), Just(TransferMode::Storage)],
        requests in 1u32..15,
    ) {
        let mut cloud = CloudSim::new(test_provider(), seed);
        let consumer = cloud.deploy(FunctionSpec::builder("c").build()).unwrap();
        let producer = cloud
            .deploy(FunctionSpec::builder("p").chain(consumer, mode, payload).build())
            .unwrap();
        for i in 0..requests {
            cloud.submit(producer, u64::from(i), SimTime::from_secs(f64::from(i)));
        }
        cloud.run_until(SimTime::from_secs(4000.0));
        let done = cloud.drain_completions();
        let transfers = cloud.drain_transfers();
        prop_assert_eq!(done.len(), requests as usize);
        prop_assert_eq!(transfers.len(), requests as usize);
        for t in &transfers {
            prop_assert_eq!(t.payload_bytes, payload);
            prop_assert!(t.received >= t.send_start);
        }
    }

    /// Instance accounting: live instances never exceed the configured
    /// maximum, and total spawns cover every cold completion.
    #[test]
    fn instance_accounting(
        seed in 0u64..1000,
        max_instances in 1u32..20,
        burst in 1u32..60,
    ) {
        let mut cfg = test_provider();
        cfg.limits.max_instances_per_function = max_instances;
        let mut cloud = CloudSim::new(cfg, seed);
        let f = cloud
            .deploy(FunctionSpec::builder("prop").exec_constant_ms(100.0).build())
            .unwrap();
        for i in 0..burst {
            cloud.submit(f, u64::from(i), SimTime::ZERO);
        }
        cloud.run_until(SimTime::from_secs(4000.0));
        let done = cloud.drain_completions();
        prop_assert_eq!(done.len(), burst as usize);
        prop_assert!(cloud.live_instances(f) <= max_instances);
        prop_assert!(cloud.stats().spawns <= u64::from(max_instances));
        let cold = done.iter().filter(|c| c.cold).count() as u64;
        prop_assert!(cold <= cloud.stats().spawns);
    }

    /// Client-observed latency statistics are internally consistent for
    /// any sample set the pipeline produces.
    #[test]
    fn summary_consistency(
        seed in 0u64..1000,
        n in 2u32..100,
    ) {
        let mut cloud = CloudSim::new(aws_like(), seed);
        let f = cloud.deploy(FunctionSpec::builder("prop").build()).unwrap();
        for i in 0..n {
            cloud.submit(f, u64::from(i), SimTime::from_millis(f64::from(i) * 500.0));
        }
        cloud.run_until(SimTime::from_secs(4000.0));
        let latencies: Vec<f64> =
            cloud.drain_completions().iter().map(|c| c.latency_ms()).collect();
        let s = stats::Summary::from_samples(&latencies);
        prop_assert!(s.min <= s.p25 && s.p25 <= s.median);
        prop_assert!(s.median <= s.p75 && s.p75 <= s.p90);
        prop_assert!(s.p90 <= s.p95 && s.p95 <= s.tail && s.tail <= s.p999);
        prop_assert!(s.p999 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert!(s.tmr >= 1.0);
    }
}
