//! Structured span tracing for simulations.
//!
//! A *span* is a named interval of simulated time attributed to one request
//! and one pipeline component — the simulator-side analogue of the
//! per-component timestamps STeLLAR's client extracts from provider logs
//! (§IV). Models emit [`SpanRecord`]s into a [`TraceSink`]; the shipped
//! sink is [`RingCollector`], a bounded in-memory ring that drops the
//! oldest spans under pressure instead of growing without bound.
//!
//! Tracing is designed to be zero-cost when disabled: a model stores an
//! `Option<Tracer>` and every emission site is gated on one `Option`
//! discriminant check. Emission draws no randomness and schedules no
//! events, so enabling a trace never perturbs simulation results.
//!
//! Span identifiers are allocated in creation order by [`Tracer::alloc_id`],
//! starting at 1; `parent` links spans into a per-request tree whose root
//! covers the whole request lifetime. Records may reach the sink out of
//! id order (a span is recorded when its interval is known, which for
//! request roots is at completion), but the order itself is deterministic
//! for a fixed seed.

use std::collections::VecDeque;
use std::fmt;

use serde::Serialize;

use crate::time::SimTime;

/// One closed interval of simulated time attributed to a request component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SpanRecord {
    /// Unique within one simulation, allocated from 1 in creation order.
    pub span_id: u64,
    /// Enclosing span, if any; `None` marks a trace root.
    pub parent: Option<u64>,
    /// The request this span belongs to (raw request index).
    pub request: u64,
    /// Component tag, e.g. `"frontend"`; the simulator aligns these 1:1
    /// with its breakdown components.
    pub component: &'static str,
    /// Interval start.
    pub start: SimTime,
    /// Interval end; never before `start`.
    pub end: SimTime,
}

impl SpanRecord {
    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }

    /// Span duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.duration().as_millis()
    }
}

impl fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "span {} req{} {} [{} .. {}]",
            self.span_id, self.request, self.component, self.start, self.end
        )
    }
}

/// Destination for emitted spans.
///
/// `Debug` is a supertrait so sinks can live inside `#[derive(Debug)]`
/// simulation models.
pub trait TraceSink: fmt::Debug {
    /// Accepts one finished span.
    fn record(&mut self, span: SpanRecord);

    /// Removes and returns everything buffered so far. Sinks that forward
    /// spans elsewhere (files, sockets) may return nothing; the default
    /// does exactly that.
    fn drain(&mut self) -> Vec<SpanRecord> {
        Vec::new()
    }
}

/// Span-id allocator in front of a [`TraceSink`].
#[derive(Debug)]
pub struct Tracer {
    sink: Box<dyn TraceSink>,
    next_id: u64,
}

impl Tracer {
    /// Wraps `sink`; ids start at 1.
    pub fn new(sink: Box<dyn TraceSink>) -> Tracer {
        Tracer { sink, next_id: 1 }
    }

    /// Reserves the next span id. Ids can be handed out before the span's
    /// interval is known (e.g. a root span allocated at request creation
    /// and recorded at completion).
    pub fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Forwards a finished span to the sink.
    ///
    /// # Panics
    ///
    /// Panics if the span interval is inverted (`end < start`); emission
    /// sites compute both endpoints, so an inverted span is a model bug.
    pub fn emit(&mut self, span: SpanRecord) {
        assert!(span.end >= span.start, "inverted span: {span}");
        self.sink.record(span);
    }

    /// Drains the underlying sink.
    pub fn drain(&mut self) -> Vec<SpanRecord> {
        self.sink.drain()
    }

    /// Spans allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next_id - 1
    }
}

/// Bounded in-memory span buffer: keeps the newest `capacity` spans,
/// counting what it had to drop.
#[derive(Debug, Clone)]
pub struct RingCollector {
    capacity: usize,
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

impl RingCollector {
    /// Creates a collector holding at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> RingCollector {
        assert!(capacity > 0, "ring collector needs capacity > 0");
        RingCollector { capacity, spans: VecDeque::new(), dropped: 0 }
    }

    /// Buffered spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingCollector {
    fn record(&mut self, span: SpanRecord) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    fn drain(&mut self) -> Vec<SpanRecord> {
        self.spans.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>) -> SpanRecord {
        SpanRecord {
            span_id: id,
            parent,
            request: 0,
            component: "execution",
            start: SimTime::from_millis(1.0),
            end: SimTime::from_millis(3.0),
        }
    }

    #[test]
    fn tracer_allocates_sequential_ids() {
        let mut tracer = Tracer::new(Box::new(RingCollector::with_capacity(8)));
        assert_eq!(tracer.alloc_id(), 1);
        assert_eq!(tracer.alloc_id(), 2);
        tracer.emit(span(1, None));
        tracer.emit(span(2, Some(1)));
        assert_eq!(tracer.allocated(), 2);
        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(1));
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = RingCollector::with_capacity(2);
        ring.record(span(1, None));
        ring.record(span(2, None));
        ring.record(span(3, None));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let ids: Vec<u64> = ring.spans().map(|s| s.span_id).collect();
        assert_eq!(ids, [2, 3]);
    }

    #[test]
    fn duration_and_display() {
        let s = span(7, None);
        assert_eq!(s.duration(), SimTime::from_millis(2.0));
        assert_eq!(s.duration_ms(), 2.0);
        assert!(s.to_string().contains("req0 execution"));
    }

    #[test]
    #[should_panic(expected = "inverted span")]
    fn inverted_span_panics() {
        let mut tracer = Tracer::new(Box::new(RingCollector::with_capacity(1)));
        let mut bad = span(1, None);
        bad.end = SimTime::ZERO;
        tracer.emit(bad);
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_panics() {
        RingCollector::with_capacity(0);
    }
}
