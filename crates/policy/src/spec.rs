//! Serde grammar for tail-tolerance policies.
//!
//! Mirrors the `workload::spec` style: a tagged enum with named presets
//! and free composition, validated before it ever reaches a driver.
//!
//! ```json
//! { "kind": "compose", "parts": [
//!     { "kind": "hedge", "threshold": { "kind": "quantile", "q": 0.95 } },
//!     { "kind": "deadline", "deadline_ms": 2000.0 } ] }
//! ```

use serde::{Deserialize, Serialize};

use crate::machine::{Composite, Deadline, Hedge, Machine, Retry, Threshold, Tied, MAX_ATTEMPTS};

/// How a hedge derives its fire threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum ThresholdSpec {
    /// Fixed threshold in milliseconds.
    Static { ms: f64 },
    /// Online estimate of this latency quantile from the run's own
    /// winner latencies (no hedging until the estimate warms up).
    Quantile { q: f64 },
}

fn default_max_hedges() -> u32 {
    1
}

fn default_factor() -> f64 {
    2.0
}

fn default_max_retries() -> u32 {
    3
}

/// Declarative policy description; build with [`PolicySpec::build`]
/// after [`PolicySpec::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum PolicySpec {
    /// Hedge after a latency threshold, up to `max_hedges` duplicates.
    Hedge {
        threshold: ThresholdSpec,
        #[serde(default = "default_max_hedges")]
        max_hedges: u32,
    },
    /// Cancel and relaunch on timeout with exponential backoff
    /// `base_backoff_ms * factor^k`, jittered by a uniform multiplier
    /// in `[1, 1 + jitter_frac]`.
    Retry {
        timeout_ms: f64,
        base_backoff_ms: f64,
        #[serde(default = "default_factor")]
        factor: f64,
        #[serde(default)]
        jitter_frac: f64,
        #[serde(default = "default_max_retries")]
        max_retries: u32,
    },
    /// Abandon the request outright after `deadline_ms`.
    Deadline { deadline_ms: f64 },
    /// Launch `copies` attempts up front, keep the winner.
    Tied { copies: u32 },
    /// Run several policies over the same logical request.
    Compose { parts: Vec<PolicySpec> },
}

impl PolicySpec {
    /// Named presets, usable from the CLI via `--policy <name>`.
    pub fn preset(name: &str) -> Option<PolicySpec> {
        Some(match name {
            "hedge-p95" => {
                PolicySpec::Hedge { threshold: ThresholdSpec::Quantile { q: 0.95 }, max_hedges: 1 }
            }
            "hedge-p99" => {
                PolicySpec::Hedge { threshold: ThresholdSpec::Quantile { q: 0.99 }, max_hedges: 1 }
            }
            "hedge-200ms" => {
                PolicySpec::Hedge { threshold: ThresholdSpec::Static { ms: 200.0 }, max_hedges: 1 }
            }
            "retry-backoff" => PolicySpec::Retry {
                timeout_ms: 1_000.0,
                base_backoff_ms: 50.0,
                factor: 2.0,
                jitter_frac: 0.5,
                max_retries: 3,
            },
            "deadline-2s" => PolicySpec::Deadline { deadline_ms: 2_000.0 },
            "tied-2" => PolicySpec::Tied { copies: 2 },
            "hedge-deadline" => PolicySpec::Compose {
                parts: vec![
                    PolicySpec::Hedge {
                        threshold: ThresholdSpec::Quantile { q: 0.95 },
                        max_hedges: 1,
                    },
                    PolicySpec::Deadline { deadline_ms: 2_000.0 },
                ],
            },
            _ => return None,
        })
    }

    /// Every preset name, for `--help` and error messages.
    pub fn preset_names() -> &'static [&'static str] {
        &[
            "hedge-p95",
            "hedge-p99",
            "hedge-200ms",
            "retry-backoff",
            "deadline-2s",
            "tied-2",
            "hedge-deadline",
        ]
    }

    pub fn from_json(json: &str) -> Result<PolicySpec, String> {
        let spec: PolicySpec =
            serde_json::from_str(json).map_err(|e| format!("bad policy spec: {e}"))?;
        spec.validate()?;
        Ok(spec)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("policy spec serializes")
    }

    /// Rejects non-physical parameters and anything that could violate
    /// the machine-level invariants (unbounded amplification, zero-delay
    /// rearm loops, non-monotone backoff).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PolicySpec::Hedge { threshold, max_hedges } => {
                match *threshold {
                    ThresholdSpec::Static { ms } => {
                        if !(ms.is_finite() && ms > 0.0) {
                            return Err(format!("hedge threshold must be positive, got {ms}"));
                        }
                    }
                    ThresholdSpec::Quantile { q } => {
                        if !(q.is_finite() && q > 0.0 && q < 1.0) {
                            return Err(format!("hedge quantile must be in (0, 1), got {q}"));
                        }
                    }
                }
                if !(1..=8).contains(max_hedges) {
                    return Err(format!("max_hedges must be in 1..=8, got {max_hedges}"));
                }
            }
            PolicySpec::Retry { timeout_ms, base_backoff_ms, factor, jitter_frac, max_retries } => {
                if !(timeout_ms.is_finite() && *timeout_ms > 0.0) {
                    return Err(format!("retry timeout must be positive, got {timeout_ms}"));
                }
                if !(base_backoff_ms.is_finite() && *base_backoff_ms > 0.0) {
                    return Err(format!("retry backoff must be positive, got {base_backoff_ms}"));
                }
                if !(jitter_frac.is_finite() && (0.0..=1.0).contains(jitter_frac)) {
                    return Err(format!("jitter_frac must be in [0, 1], got {jitter_frac}"));
                }
                // Monotone non-decreasing backoff for every jitter
                // realization requires factor >= 1 + jitter_frac: the
                // worst case pits step k at max jitter against step
                // k+1 at zero jitter.
                if !(factor.is_finite() && *factor >= 1.0 + jitter_frac) {
                    return Err(format!(
                        "retry factor must be >= 1 + jitter_frac ({}) for monotone backoff, got {factor}",
                        1.0 + jitter_frac
                    ));
                }
                if !(1..=8).contains(max_retries) {
                    return Err(format!("max_retries must be in 1..=8, got {max_retries}"));
                }
            }
            PolicySpec::Deadline { deadline_ms } => {
                if !(deadline_ms.is_finite() && *deadline_ms > 0.0) {
                    return Err(format!("deadline must be positive, got {deadline_ms}"));
                }
            }
            PolicySpec::Tied { copies } => {
                if !(2..=8).contains(copies) {
                    return Err(format!("tied copies must be in 2..=8, got {copies}"));
                }
            }
            PolicySpec::Compose { parts } => {
                if parts.is_empty() {
                    return Err("compose needs at least one part".into());
                }
                let mut online = None;
                for part in parts {
                    part.validate()?;
                    if let Some(q) = part.online_quantile() {
                        match online {
                            None => online = Some(q),
                            Some(prev) if prev == q => {}
                            Some(prev) => {
                                return Err(format!(
                                    "composed hedges must track one quantile, got {prev} and {q}"
                                ))
                            }
                        }
                    }
                }
            }
        }
        if self.attempt_cap() > MAX_ATTEMPTS {
            return Err(format!(
                "policy could launch {} attempts per request; cap is {MAX_ATTEMPTS}",
                self.attempt_cap()
            ));
        }
        Ok(())
    }

    /// Maximum physical attempts per logical request (primary included).
    pub fn attempt_cap(&self) -> u32 {
        1 + self.extra_attempts()
    }

    fn extra_attempts(&self) -> u32 {
        match self {
            PolicySpec::Hedge { max_hedges, .. } => *max_hedges,
            PolicySpec::Retry { max_retries, .. } => *max_retries,
            PolicySpec::Deadline { .. } => 0,
            PolicySpec::Tied { copies } => copies.saturating_sub(1),
            PolicySpec::Compose { parts } => parts.iter().map(|p| p.extra_attempts()).sum(),
        }
    }

    /// The latency quantile any online hedge in this spec tracks.
    pub fn online_quantile(&self) -> Option<f64> {
        match self {
            PolicySpec::Hedge { threshold: ThresholdSpec::Quantile { q }, .. } => Some(*q),
            PolicySpec::Compose { parts } => parts.iter().find_map(|p| p.online_quantile()),
            _ => None,
        }
    }

    /// Builds the runnable composite machine. Call after `validate`.
    pub fn build(&self) -> Composite {
        let mut parts = Vec::new();
        self.collect(&mut parts);
        Composite::new(parts, self.attempt_cap())
    }

    fn collect(&self, out: &mut Vec<Machine>) {
        match self {
            PolicySpec::Hedge { threshold, max_hedges } => {
                let thr = match *threshold {
                    ThresholdSpec::Static { ms } => Threshold::StaticMs(ms),
                    ThresholdSpec::Quantile { q } => Threshold::Quantile(q),
                };
                out.push(Machine::Hedge(Hedge::new(thr, *max_hedges)));
            }
            PolicySpec::Retry { timeout_ms, base_backoff_ms, factor, jitter_frac, max_retries } => {
                out.push(Machine::Retry(Retry::new(
                    *timeout_ms,
                    *base_backoff_ms,
                    *factor,
                    *jitter_frac,
                    *max_retries,
                )));
            }
            PolicySpec::Deadline { deadline_ms } => {
                out.push(Machine::Deadline(Deadline::new(*deadline_ms)));
            }
            PolicySpec::Tied { copies } => out.push(Machine::Tied(Tied::new(*copies))),
            PolicySpec::Compose { parts } => {
                for part in parts {
                    part.collect(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_all_validate_and_roundtrip() {
        for name in PolicySpec::preset_names() {
            let spec = PolicySpec::preset(name).unwrap();
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let back = PolicySpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back, "{name} must roundtrip");
        }
        assert!(PolicySpec::preset("no-such-policy").is_none());
    }

    #[test]
    fn json_grammar_parses_composition() {
        let json = r#"{ "kind": "compose", "parts": [
            { "kind": "hedge", "threshold": { "kind": "quantile", "q": 0.95 } },
            { "kind": "deadline", "deadline_ms": 2000.0 } ] }"#;
        let spec = PolicySpec::from_json(json).unwrap();
        assert_eq!(spec, PolicySpec::preset("hedge-deadline").unwrap());
        assert_eq!(spec.attempt_cap(), 2);
        assert_eq!(spec.online_quantile(), Some(0.95));
    }

    #[test]
    fn validation_rejects_nonsense() {
        for bad in [
            PolicySpec::Hedge { threshold: ThresholdSpec::Static { ms: 0.0 }, max_hedges: 1 },
            PolicySpec::Hedge { threshold: ThresholdSpec::Quantile { q: 1.0 }, max_hedges: 1 },
            PolicySpec::Hedge { threshold: ThresholdSpec::Static { ms: 100.0 }, max_hedges: 0 },
            PolicySpec::Retry {
                timeout_ms: 100.0,
                base_backoff_ms: 10.0,
                // Non-monotone: factor < 1 + jitter_frac.
                factor: 1.2,
                jitter_frac: 0.5,
                max_retries: 2,
            },
            PolicySpec::Tied { copies: 1 },
            PolicySpec::Deadline { deadline_ms: -5.0 },
            PolicySpec::Compose { parts: vec![] },
            // Mixed online quantiles.
            PolicySpec::Compose {
                parts: vec![
                    PolicySpec::Hedge {
                        threshold: ThresholdSpec::Quantile { q: 0.9 },
                        max_hedges: 1,
                    },
                    PolicySpec::Hedge {
                        threshold: ThresholdSpec::Quantile { q: 0.99 },
                        max_hedges: 1,
                    },
                ],
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn attempt_cap_sums_across_composition() {
        let spec = PolicySpec::Compose {
            parts: vec![
                PolicySpec::Hedge { threshold: ThresholdSpec::Static { ms: 100.0 }, max_hedges: 2 },
                PolicySpec::Retry {
                    timeout_ms: 500.0,
                    base_backoff_ms: 10.0,
                    factor: 2.0,
                    jitter_frac: 0.5,
                    max_retries: 3,
                },
            ],
        };
        assert_eq!(spec.attempt_cap(), 6);
        let built = spec.build();
        assert_eq!(built.attempt_cap(), 6);
        assert_eq!(built.online_quantile(), None);
    }
}
