//! One-call experiments: provider + static config + runtime config → stats.
//!
//! [`Experiment`] wraps the deploy→drive→measure pipeline behind a builder
//! so that benchmark code (and downstream users) can express a paper
//! experiment in a few lines.

use faas_sim::cloud::CloudSim;
use faas_sim::config::ProviderConfig;
use simkit::engine::QueueKind;
use simkit::metrics::Metrics;
use simkit::trace::SpanRecord;
use stats::Summary;

use crate::client::{run_workload_spec, run_workload_with, ClientError, MeasureSpec, RunResult};
use crate::config::{RuntimeConfig, StaticConfig};
use crate::deployer::deploy;

/// Errors from running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// Deployment failed.
    Deploy(faas_sim::cloud::DeployError),
    /// The client run failed.
    Client(ClientError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Deploy(e) => write!(f, "deploy: {e}"),
            ExperimentError::Client(e) => write!(f, "client: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<faas_sim::cloud::DeployError> for ExperimentError {
    fn from(e: faas_sim::cloud::DeployError) -> Self {
        ExperimentError::Deploy(e)
    }
}

impl From<ClientError> for ExperimentError {
    fn from(e: ClientError) -> Self {
        ExperimentError::Client(e)
    }
}

/// A fully specified experiment.
///
/// # Examples
///
/// ```
/// use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
/// use stellar_core::experiment::Experiment;
/// use faas_sim::testutil::test_provider;
///
/// let outcome = Experiment::new(test_provider())
///     .functions(StaticConfig { functions: vec![StaticFunction::python_zip("probe")] })
///     .workload(RuntimeConfig::single(IatSpec::short(), 100))
///     .seed(7)
///     .run()
///     .unwrap();
/// assert_eq!(outcome.result.completions.len(), 100);
/// assert!(outcome.summary.median > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    provider: ProviderConfig,
    static_cfg: StaticConfig,
    runtime_cfg: RuntimeConfig,
    seed: u64,
    trace_capacity: Option<usize>,
    measure: MeasureSpec,
    queue: QueueKind,
    profile_events: bool,
}

/// What an experiment produced.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Raw client measurements.
    pub result: RunResult,
    /// Summary statistics over the measured end-to-end latencies, ms.
    pub summary: Summary,
    /// Summary over transfer times (chains only), ms.
    pub transfer_summary: Option<Summary>,
    /// Spans captured by the trace ring; empty unless
    /// [`Experiment::trace`] enabled tracing.
    pub spans: Vec<SpanRecord>,
    /// Lifecycle counters maintained by the cloud (always on).
    pub metrics: Metrics,
}

impl Outcome {
    /// Measured end-to-end latencies, ms.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.result.latencies_ms()
    }
}

impl Experiment {
    /// Starts building an experiment against `provider` with defaults:
    /// one Python ZIP function, 100 single invocations at the short IAT,
    /// seed 0.
    pub fn new(provider: ProviderConfig) -> Experiment {
        Experiment {
            provider,
            static_cfg: StaticConfig {
                functions: vec![crate::config::StaticFunction::python_zip("fn")],
            },
            runtime_cfg: RuntimeConfig::single(crate::config::IatSpec::short(), 100),
            seed: 0,
            trace_capacity: None,
            measure: MeasureSpec::default(),
            queue: QueueKind::default(),
            profile_events: false,
        }
    }

    /// Sets the static (deployer) configuration.
    pub fn functions(mut self, cfg: StaticConfig) -> Experiment {
        self.static_cfg = cfg;
        self
    }

    /// Sets the runtime (client) configuration.
    pub fn workload(mut self, cfg: RuntimeConfig) -> Experiment {
        self.runtime_cfg = cfg;
        self
    }

    /// Sets the deterministic seed (both cloud and client streams).
    pub fn seed(mut self, seed: u64) -> Experiment {
        self.seed = seed;
        self
    }

    /// Enables invocation tracing into a ring of `capacity` spans; the
    /// captured spans land in [`Outcome::spans`]. Tracing draws no
    /// randomness, so results are identical with or without it.
    pub fn trace(mut self, capacity: usize) -> Experiment {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Sets how the run is measured (quantile machinery, sample
    /// retention). [`MeasureSpec::sketch`] makes million-invocation runs
    /// stream through O(sketch)-sized aggregates instead of holding every
    /// latency.
    pub fn measure(mut self, measure: MeasureSpec) -> Experiment {
        self.measure = measure;
        self
    }

    /// Selects the event-queue backend (default: adaptive — binary heap
    /// promoting to the calendar queue past a pending-set threshold).
    /// Purely a performance knob — results are bit-identical across
    /// backends.
    pub fn queue(mut self, queue: QueueKind) -> Experiment {
        self.queue = queue;
        self
    }

    /// Enables per-event cost profiling: every event dispatch is timed
    /// and bucketed by event class, and the totals land in
    /// [`Outcome::metrics`] under the `faas_sim::cloud::metric::PROFILE_*`
    /// names. Profiling observes wall-clock time only, so results stay
    /// bit-identical to an unprofiled run.
    pub fn profile_events(mut self, on: bool) -> Experiment {
        self.profile_events = on;
        self
    }

    /// Deploys, drives the workload and summarises.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] on deploy or client failure.
    pub fn run(&self) -> Result<Outcome, ExperimentError> {
        let mut cloud = CloudSim::with_queue(self.provider.clone(), self.seed, self.queue);
        if let Some(capacity) = self.trace_capacity {
            cloud.enable_tracing(capacity);
        }
        if self.profile_events {
            cloud.enable_event_profiling();
        }
        let deployment = deploy(&mut cloud, &self.static_cfg, &self.runtime_cfg)?;
        // Install the fault schedule (if any) before submitting work.
        // Inert specs compile to inert plans, which the cloud skips —
        // so a `faults: none` run stays byte-identical to a faults-off
        // one.
        if let Some(spec) = &self.runtime_cfg.faults {
            cloud.install_faults(spec.build());
        }
        let mut result = match &self.runtime_cfg.workload {
            Some(spec) => run_workload_spec(
                &mut cloud,
                &deployment,
                &self.runtime_cfg,
                spec,
                self.seed,
                &self.measure,
            )?,
            // A policy without an explicit workload model runs on the
            // spec driver too: the legacy IAT is lifted into an
            // equivalent open-loop arrival process.
            None if self.runtime_cfg.policy.is_some() => {
                let spec = workload_from_iat(&self.runtime_cfg.iat);
                run_workload_spec(
                    &mut cloud,
                    &deployment,
                    &self.runtime_cfg,
                    &spec,
                    self.seed,
                    &self.measure,
                )?
            }
            None => run_workload_with(
                &mut cloud,
                &deployment,
                &self.runtime_cfg,
                self.seed,
                &self.measure,
            )?,
        };
        // Both modes summarise through the same aggregate: in exact mode
        // the aggregate's buffer holds every sample and `summary()`
        // delegates to the sorted exact path, so the output is
        // bit-identical with the legacy sort-the-samples code.
        // A run whose every request failed (a fault schedule can inject
        // errors at probability 1) has no latency samples; that is a
        // valid outcome, not a panic.
        let summary = if result.latency_agg.is_empty() {
            stats::summary::Summary::empty()
        } else {
            result.latency_agg.summary()
        };
        let transfer_summary =
            if result.transfer_agg.is_empty() { None } else { Some(result.transfer_agg.summary()) };
        if cloud.faults_installed() {
            result.faults = Some(cloud.fault_stats());
        }
        let spans = cloud.drain_spans();
        // Fold end-of-run slab and event-queue counters into the metrics
        // registry so reports can audit memory behaviour; likewise the
        // per-event cost profile when profiling was on.
        cloud.record_queue_metrics();
        cloud.record_profile_metrics();
        let metrics = cloud.metrics().clone();
        Ok(Outcome { result, summary, transfer_summary, spans, metrics })
    }
}

/// Lifts a legacy [`crate::config::IatSpec`] into the equivalent
/// open-loop workload model, so policy runs always go through the
/// spec driver.
fn workload_from_iat(iat: &crate::config::IatSpec) -> workload::WorkloadSpec {
    use crate::config::IatSpec;
    use workload::spec::{ArrivalSpec, ModeSpec};
    let arrival = match *iat {
        IatSpec::Fixed { ms } => ArrivalSpec::Fixed { ms },
        IatSpec::Exponential { mean_ms } => ArrivalSpec::Exponential { mean_ms },
        IatSpec::Uniform { lo_ms, hi_ms } => ArrivalSpec::Uniform { lo_ms, hi_ms },
    };
    workload::WorkloadSpec { arrival, mode: ModeSpec::Open }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChainConfig, IatSpec, StaticFunction};
    use faas_sim::testutil::test_provider;
    use faas_sim::types::TransferMode;

    #[test]
    fn default_experiment_runs() {
        let outcome = Experiment::new(test_provider()).seed(1).run().unwrap();
        assert_eq!(outcome.summary.count, 100);
        assert!(outcome.transfer_summary.is_none());
    }

    #[test]
    fn chain_experiment_summarises_transfers() {
        let mut runtime = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 20);
        runtime.warmup_rounds = 2;
        runtime.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Inline, payload_bytes: 1_000_000 });
        let outcome = Experiment::new(test_provider())
            .functions(StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] })
            .workload(runtime)
            .seed(2)
            .run()
            .unwrap();
        let ts = outcome.transfer_summary.expect("transfers summarised");
        assert_eq!(ts.count, 20);
        // 1 MB at 100 MB/s inline = 10ms wire + warm overhead.
        assert!(ts.median > 10.0 && ts.median < 60.0, "median {}", ts.median);
    }

    #[test]
    fn tracing_captures_spans_without_changing_results() {
        let base = Experiment::new(test_provider()).seed(5);
        let plain = base.clone().run().unwrap();
        let traced = base.trace(100_000).run().unwrap();
        assert_eq!(plain.latencies_ms(), traced.latencies_ms());
        assert!(plain.spans.is_empty(), "tracing is off by default");
        assert!(!traced.spans.is_empty());
        let total =
            (traced.result.completions.len() + traced.result.warmup_completions.len()) as u64;
        assert_eq!(traced.metrics.counter(faas_sim::cloud::metric::REQUESTS_COMPLETED), total);
    }

    #[test]
    fn event_profiling_fills_cost_metrics_without_changing_results() {
        use faas_sim::cloud::metric;
        let base = Experiment::new(test_provider()).seed(6);
        let plain = base.clone().run().unwrap();
        let profiled = base.profile_events(true).run().unwrap();
        assert_eq!(plain.latencies_ms(), profiled.latencies_ms(), "profiling must not perturb");
        assert_eq!(plain.metrics.counter(metric::PROFILE_LOOP_NS), 0, "off by default");
        assert!(profiled.metrics.counter(metric::PROFILE_LOOP_NS) > 0);
        let events: u64 = metric::PROFILE_COUNT.iter().map(|n| profiled.metrics.counter(n)).sum();
        assert!(events >= 100, "every dispatched event is counted, got {events}");
        // Telescoping timestamps: the per-class cost sum cannot exceed the
        // measured loop wall time.
        let ns: u64 = metric::PROFILE_NS.iter().map(|n| profiled.metrics.counter(n)).sum();
        assert!(ns <= profiled.metrics.counter(metric::PROFILE_LOOP_NS));
    }

    #[test]
    fn seed_controls_reproducibility() {
        let latencies =
            |seed| Experiment::new(test_provider()).seed(seed).run().unwrap().latencies_ms();
        assert_eq!(latencies(3), latencies(3));
    }

    #[test]
    fn workload_spec_routes_through_spec_driver() {
        let mut runtime = RuntimeConfig::single(IatSpec::short(), 60);
        runtime.warmup_rounds = 5;
        runtime = runtime.with_workload(workload::WorkloadSpec::preset("mmpp-burst").unwrap());
        let outcome = Experiment::new(test_provider()).workload(runtime).seed(4).run().unwrap();
        assert_eq!(outcome.summary.count, 60);
        let offered = outcome.result.offered.expect("spec runs report offered load");
        assert_eq!(offered.arrivals, 65);
        assert!(offered.iat_cv > 1.0, "MMPP is overdispersed, cv {}", offered.iat_cv);
        // Slab counters were folded into the metrics registry.
        assert!(outcome.metrics.counter(faas_sim::cloud::metric::REQUEST_SLOTS_ALLOCATED) > 0);
        assert!(
            outcome.metrics.counter(faas_sim::cloud::metric::REQUEST_SLOTS_HIGH_WATER) <= 65,
            "high water bounded by total requests"
        );
    }

    #[test]
    fn policy_without_workload_lifts_the_iat_into_a_spec_run() {
        let mut runtime = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 400.0 }, 40)
            .with_policy(policy::PolicySpec::preset("hedge-200ms").unwrap());
        runtime.warmup_rounds = 2;
        runtime.exec_ms = 300.0;
        let outcome = Experiment::new(test_provider()).workload(runtime).seed(8).run().unwrap();
        assert_eq!(outcome.summary.count, 40);
        assert!(outcome.result.offered.is_some(), "lifted IAT runs on the spec driver");
        let stats = outcome.result.policy.expect("policy stats surface through Outcome");
        assert_eq!(stats.extra_launches, 42, "300 ms execution hedges every request");
    }

    #[test]
    fn deploy_errors_propagate() {
        let mut runtime = RuntimeConfig::single(IatSpec::short(), 10);
        runtime.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Inline, payload_bytes: 100_000_000 });
        let err = Experiment::new(test_provider()).workload(runtime).run().unwrap_err();
        assert!(matches!(err, ExperimentError::Deploy(_)));
    }
}
