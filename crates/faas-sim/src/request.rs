//! Invocation requests, completions and per-component breakdowns.
//!
//! Every invocation carries a [`Breakdown`] mirroring the nine-step
//! lifecycle of the paper's Fig 1, so experiments can attribute latency to
//! individual infrastructure components the way STeLLAR's intra-function
//! instrumentation does (§IV).

use serde::{Deserialize, Serialize};
use simkit::time::SimTime;

use crate::types::{FunctionId, RequestId, TransferMode};

/// Where a request came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOrigin {
    /// Issued by the benchmarking client over the WAN.
    External,
    /// Issued by another function inside the datacenter (chain hop).
    Internal {
        /// The invoking (parent) request.
        parent: RequestId,
    },
}

impl RequestOrigin {
    /// Whether the request entered through the WAN.
    pub fn is_external(self) -> bool {
        matches!(self, RequestOrigin::External)
    }
}

/// Cold-start stage durations (Fig 1 steps ③–⑤ plus runtime init).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ColdBreakdown {
    /// Cluster-scheduler decision latency, ms.
    pub decision_ms: f64,
    /// Wait for spawn throughput (token bucket), ms.
    pub spawn_wait_ms: f64,
    /// Sandbox boot, ms.
    pub sandbox_ms: f64,
    /// Image fetch from storage (possibly overlapped with boot), ms.
    pub image_fetch_ms: f64,
    /// Extra lazy chunk fetches (container deployments), ms.
    pub chunk_fetch_ms: f64,
    /// Language runtime initialisation, ms.
    pub runtime_init_ms: f64,
    /// User handler initialisation, ms.
    pub handler_init_ms: f64,
    /// Total wall-clock boot duration, ms (accounts for overlap).
    pub total_ms: f64,
}

/// Per-request latency attribution, all in milliseconds.
///
/// `Copy` (13 `f64`s plus the optional cold decomposition) so the request
/// arena can move breakdowns between its cold side-array and completions
/// without drop glue.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// Client→datacenter propagation (0 for internal requests).
    pub prop_out_ms: f64,
    /// Front-end processing (step ①).
    pub frontend_ms: f64,
    /// Load-balancer routing decision (step ②).
    pub routing_ms: f64,
    /// Serial dispatch wait during bursts.
    pub dispatch_wait_ms: f64,
    /// Inline payload transmission into the datacenter.
    pub inline_transfer_ms: f64,
    /// Wait from entering the function's pending queue (or triggering a
    /// dedicated spawn) until an instance picked the request up (step ③).
    /// For cold requests this *includes* the instance boot time.
    pub queue_wait_ms: f64,
    /// Cold-start stage attribution for the boot this request waited on.
    /// Informational decomposition of (part of) `queue_wait_ms`; not added
    /// again by [`Breakdown::total_ms`].
    pub cold: Option<ColdBreakdown>,
    /// Steering to the instance (steps ⑥–⑦).
    pub steer_ms: f64,
    /// In-instance handling overhead around user code.
    pub handling_ms: f64,
    /// Storage GET to retrieve the caller's payload (step ⑧).
    pub payload_get_ms: f64,
    /// User code execution (busy spin).
    pub exec_ms: f64,
    /// Storage PUT of an outgoing payload plus downstream invocation
    /// round-trip (step ⑨), if the function chains.
    pub chain_ms: f64,
    /// Response path (datacenter internal).
    pub response_ms: f64,
    /// Datacenter→client propagation (0 for internal requests).
    pub prop_back_ms: f64,
}

impl Breakdown {
    /// Sum of every wall-clock component, ms. Equals end-to-end latency
    /// (the simulator's conservation-law tests rely on this). The cold
    /// breakdown is *not* added: it decomposes time already counted in
    /// `queue_wait_ms`.
    pub fn total_ms(&self) -> f64 {
        self.prop_out_ms
            + self.frontend_ms
            + self.routing_ms
            + self.dispatch_wait_ms
            + self.inline_transfer_ms
            + self.queue_wait_ms
            + self.steer_ms
            + self.handling_ms
            + self.payload_get_ms
            + self.exec_ms
            + self.chain_ms
            + self.response_ms
            + self.prop_back_ms
    }

    /// Infrastructure-only latency: total minus user execution and chain
    /// round-trip.
    pub fn infra_ms(&self) -> f64 {
        self.total_ms() - self.exec_ms - self.chain_ms
    }
}

/// A finished invocation as observed by the client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The request.
    pub id: RequestId,
    /// The invoked function.
    pub function: FunctionId,
    /// User-assigned tag (round number, burst position, …).
    pub tag: u64,
    /// Origin of the request.
    pub origin: RequestOrigin,
    /// When the client issued the request.
    pub issued_at: SimTime,
    /// When the response reached the client.
    pub completed_at: SimTime,
    /// Whether the request waited on a cold start.
    pub cold: bool,
    /// Per-component attribution.
    pub breakdown: Breakdown,
    /// Provider-style error code when the invocation failed (429
    /// throttle, 500 crash, 503 shed); `None` for a successful response.
    #[serde(default)]
    pub error: Option<u16>,
}

impl Completion {
    /// End-to-end latency in milliseconds, as the client measures it.
    pub fn latency_ms(&self) -> f64 {
        (self.completed_at - self.issued_at).as_millis()
    }

    /// Whether the invocation succeeded (no provider error).
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// One cross-function data transfer measurement, mirroring the paper's
/// intra-function timestamp methodology (§V): from the producer starting to
/// send until the consumer holds the payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferSample {
    /// The producer's (parent) request.
    pub parent: RequestId,
    /// User tag of the parent request.
    pub parent_tag: u64,
    /// Transport used.
    pub mode: TransferMode,
    /// Payload size, bytes.
    pub payload_bytes: u64,
    /// Producer-side send start (first timestamp).
    pub send_start: SimTime,
    /// Consumer-side payload-retrieved instant (second timestamp).
    pub received: SimTime,
}

impl TransferSample {
    /// Effective transfer time, ms.
    pub fn transfer_ms(&self) -> f64 {
        (self.received - self.send_start).as_millis()
    }

    /// Effective bandwidth in decimal megabytes per second.
    pub fn bandwidth_mbps(&self) -> f64 {
        let secs = (self.received - self.send_start).as_secs();
        if secs > 0.0 {
            self.payload_bytes as f64 / 1e6 / secs
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_components() {
        let b = Breakdown {
            prop_out_ms: 10.0,
            frontend_ms: 2.0,
            routing_ms: 1.0,
            dispatch_wait_ms: 3.0,
            inline_transfer_ms: 4.0,
            queue_wait_ms: 105.0, // includes a 100ms boot
            cold: Some(ColdBreakdown { total_ms: 100.0, ..ColdBreakdown::default() }),
            steer_ms: 1.5,
            handling_ms: 2.5,
            payload_get_ms: 6.0,
            exec_ms: 50.0,
            chain_ms: 20.0,
            response_ms: 2.0,
            prop_back_ms: 10.0,
        };
        assert_eq!(b.total_ms(), 217.0);
        assert_eq!(b.infra_ms(), 147.0);
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: RequestId(1),
            function: FunctionId(0),
            tag: 0,
            origin: RequestOrigin::External,
            issued_at: SimTime::from_millis(100.0),
            completed_at: SimTime::from_millis(145.0),
            cold: false,
            breakdown: Breakdown::default(),
            error: None,
        };
        assert_eq!(c.latency_ms(), 45.0);
        assert!(c.is_ok());
        // Older serialized completions (no error field) still parse.
        let json = serde_json::to_string(&c).unwrap();
        let back: Completion = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn transfer_sample_bandwidth() {
        let s = TransferSample {
            parent: RequestId(0),
            parent_tag: 0,
            mode: TransferMode::Storage,
            payload_bytes: 1_000_000,
            send_start: SimTime::ZERO,
            received: SimTime::from_millis(100.0),
        };
        assert_eq!(s.transfer_ms(), 100.0);
        assert_eq!(s.bandwidth_mbps(), 10.0); // 1 MB in 0.1 s
    }

    #[test]
    fn zero_duration_transfer_has_infinite_bandwidth() {
        let s = TransferSample {
            parent: RequestId(0),
            parent_tag: 0,
            mode: TransferMode::Inline,
            payload_bytes: 1,
            send_start: SimTime::ZERO,
            received: SimTime::ZERO,
        };
        assert!(s.bandwidth_mbps().is_infinite());
    }

    #[test]
    fn origin_kinds() {
        assert!(RequestOrigin::External.is_external());
        assert!(!RequestOrigin::Internal { parent: RequestId(4) }.is_external());
    }
}
