//! Determinism regression tests: identical seeds must produce identical
//! results across the whole stack, and independent subsystem RNG streams
//! must isolate experiments from unrelated configuration changes.

use faas_sim::cloud::CloudSim;
use faas_sim::spec::FunctionSpec;
use faas_sim::types::TransferMode;
use providers::profiles::{aws_like, azure_like, google_like};
use simkit::time::SimTime;
use stellar_core::config::{IatSpec, RuntimeConfig};
use stellar_core::protocols::{
    bursty_invocations, cold_invocations, transfer_chain, warm_invocations, BurstIat, ColdSetup,
};
use stellar_core::runner::{Scenario, SweepGrid, SweepRunner};

#[test]
fn identical_seeds_identical_latencies_per_provider() {
    for cfg in [aws_like(), google_like(), azure_like()] {
        let run = || warm_invocations(cfg.clone(), 200, 12345).unwrap().latencies_ms();
        let a = run();
        let b = run();
        assert_eq!(a, b, "{} must be bit-deterministic", cfg.name);
    }
}

#[test]
fn different_seeds_decorrelate() {
    let a = warm_invocations(aws_like(), 200, 1).unwrap().latencies_ms();
    let b = warm_invocations(aws_like(), 200, 2).unwrap().latencies_ms();
    assert_ne!(a, b);
    // ...but medians agree (same distribution).
    let (ma, mb) = (stats::percentile::median(&a), stats::percentile::median(&b));
    assert!((ma / mb - 1.0).abs() < 0.1, "medians {ma:.1} vs {mb:.1}");
}

#[test]
fn subsystem_streams_are_isolated() {
    // Changing the *keep-alive* distribution must not perturb the warm
    // latency sequence of requests that never touch a cold start: the RNG
    // streams are forked per subsystem, so reap sampling does not consume
    // warm-path randomness.
    let run = |keepalive_ms: f64| {
        let mut cfg = aws_like();
        cfg.keepalive.idle_timeout_ms = simkit::dist::Dist::constant(keepalive_ms);
        let mut cloud = CloudSim::new(cfg, 777);
        let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
        for i in 0..50 {
            cloud.submit(f, i, SimTime::from_secs(3.0 * i as f64));
        }
        cloud.run_until(SimTime::from_secs(200.0));
        cloud
            .drain_completions()
            .into_iter()
            .filter(|c| !c.cold)
            .map(|c| c.latency_ms())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(600_000.0), run(900_000.0));
}

/// Runs each closure on its own crossbeam-scoped thread and collects the
/// results in spawn order.
fn sharded<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs.into_iter().map(|job| scope.spawn(move |_| job())).collect();
        handles.into_iter().map(|h| h.join().expect("worker thread")).collect()
    })
    .expect("scope")
}

#[test]
fn fig3_warm_sweep_sharded_across_threads_matches_serial() {
    // The Fig 3 measurement sweep — one warm run per provider — run once
    // serially and once with each provider on its own thread. Each run
    // owns its RNG state, so sharding the sweep must be bit-identical.
    let providers = [aws_like(), google_like(), azure_like()];
    let serial: Vec<Vec<f64>> = providers
        .iter()
        .map(|cfg| warm_invocations(cfg.clone(), 120, 2021).unwrap().latencies_ms())
        .collect();
    let threaded = sharded(
        providers
            .iter()
            .map(|cfg| {
                let cfg = cfg.clone();
                move || warm_invocations(cfg, 120, 2021).unwrap().latencies_ms()
            })
            .collect(),
    );
    assert_eq!(serial, threaded, "sharded fig3 sweep must match serial");
}

#[test]
fn fig8_and_table1_shards_match_serial() {
    // The cold-start (Fig 8) and transfer/bursty (Table 1) paths run as a
    // mixed shard set: heterogeneous experiments concurrently on separate
    // threads must reproduce their serial latency sequences exactly.
    let cold =
        || cold_invocations(aws_like(), ColdSetup::baseline(), 60, 20, 31).unwrap().latencies_ms();
    let xfer = || {
        transfer_chain(google_like(), TransferMode::Storage, 1_000_000, 40, 32)
            .unwrap()
            .latencies_ms()
    };
    let burst = || {
        bursty_invocations(azure_like(), BurstIat::Short, 10, 20.0, 40, 3, 33)
            .unwrap()
            .latencies_ms()
    };
    let serial = vec![cold(), xfer(), burst()];
    let threaded = sharded::<Vec<f64>, Box<dyn FnOnce() -> Vec<f64> + Send>>(vec![
        Box::new(cold),
        Box::new(xfer),
        Box::new(burst),
    ]);
    assert_eq!(serial, threaded, "sharded fig8/table1 runs must match serial");
}

#[test]
fn sweep_runner_is_byte_identical_across_thread_counts() {
    // The sweep runner extends the sharding guarantee above to the whole
    // grid pipeline: a 3-provider × 4-seed grid merged from 1, 2 and 8
    // workers must render byte-identical reports (rows keyed by cell
    // index, metrics merged in cell order).
    let workload = RuntimeConfig::single(IatSpec::short(), 60);
    let grid = SweepGrid::new(
        [aws_like(), google_like(), azure_like()]
            .into_iter()
            .map(|cfg| Scenario::new(cfg.name.clone(), cfg).workload(workload.clone()))
            .collect(),
        vec![2021, 2022, 2023, 2024],
    );
    let serial = SweepRunner::new(1).run(&grid);
    let csv = serial.to_csv();
    assert_eq!(serial.rows.len(), 12);
    assert_eq!(serial.ok_count(), 12);
    for threads in [2, 8] {
        let threaded = SweepRunner::new(threads).run(&grid);
        assert_eq!(csv, threaded.to_csv(), "{threads}-worker sweep must match serial");
        assert_eq!(
            serial.metrics, threaded.metrics,
            "{threads}-worker merged metrics must match serial"
        );
    }
}

#[test]
fn policy_sweep_is_byte_identical_across_thread_counts() {
    // Tail-tolerance policies add timer wake-ups, duplicate attempts and
    // cancellations to every cell; none of it may leak scheduling
    // nondeterminism. A 3-provider × 3-policy × 2-seed grid merged from
    // 1, 2 and 8 workers must render byte-identical extended reports.
    let mut workload = RuntimeConfig::single(IatSpec::short(), 60);
    workload.exec_ms = 120.0;
    let scenarios = [aws_like(), google_like(), azure_like()]
        .into_iter()
        .map(|cfg| Scenario::new(cfg.name.clone(), cfg).workload(workload.clone()))
        .collect();
    let policies: Vec<(&str, Option<policy::PolicySpec>)> = vec![
        ("none", None),
        ("hedge-p95", policy::PolicySpec::preset("hedge-p95")),
        ("tied-2", policy::PolicySpec::preset("tied-2")),
    ];
    let grid = SweepGrid::cross_policies(scenarios, &policies, vec![2021, 2022]);
    let serial = SweepRunner::new(1).run(&grid);
    let csv = serial.to_csv_extended();
    assert_eq!(serial.rows.len(), 18);
    assert_eq!(serial.ok_count(), 18);
    assert!(csv.contains("aws-like+hedge-p95"), "policy axis labels rows");
    for threads in [2, 8] {
        let threaded = SweepRunner::new(threads).run(&grid);
        assert_eq!(
            csv,
            threaded.to_csv_extended(),
            "{threads}-worker policy sweep must match serial"
        );
        assert_eq!(
            serial.metrics, threaded.metrics,
            "{threads}-worker merged metrics must match serial"
        );
    }
}

#[test]
fn cold_start_measurements_are_reproducible_across_replica_counts_only_in_shape() {
    // Replica count changes the event interleaving (different wall-clock
    // spacing), so sequences differ — but the latency *distribution*
    // stays put. This guards the §IV replica-acceleration trick against
    // accidentally changing what is measured.
    let a = cold_invocations(aws_like(), ColdSetup::baseline(), 300, 50, 5).unwrap().latencies_ms();
    let b =
        cold_invocations(aws_like(), ColdSetup::baseline(), 300, 150, 5).unwrap().latencies_ms();
    let (ma, mb) = (stats::percentile::median(&a), stats::percentile::median(&b));
    assert!(
        (ma / mb - 1.0).abs() < 0.08,
        "replica count must not shift the cold median: {ma:.0} vs {mb:.0}"
    );
    let d = stats::ks::ks_statistic(&a, &b);
    assert!(d < 0.12, "cold distributions must agree across replica counts: ks {d:.3}");
}
