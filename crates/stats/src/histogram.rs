//! Log-spaced histograms — **deprecated shim** over [`QuantileSketch`].
//!
//! Latencies in serverless systems span four orders of magnitude (tens of
//! milliseconds warm to tens of seconds queued-cold), so the natural bin
//! layout is logarithmic. Historically this module kept its own per-bin
//! counters, which meant figures built from it carried a different error
//! story than sketch-mode quantiles. The crate now has exactly one
//! quantile engine: [`LogHistogram`] stores its samples in a
//! [`QuantileSketch`] and derives bin counts from cumulative ranks at the
//! bin edges, so every number it reports shares the sketch's documented
//! rank-error bound (exact below the threshold — which reproduces the
//! historical counts bit for bit — and `n·ε(q)` per edge once sketching,
//! with mass conservation guaranteed because counts telescope).

use serde::{Deserialize, Serialize};

use crate::sketch::QuantileSketch;

/// A histogram view with logarithmically spaced bins over `[lo, hi)` plus
/// underflow/overflow buckets, backed by the crate's single quantile
/// engine.
///
/// # Examples
///
/// ```
/// #![allow(deprecated)]
/// use stats::histogram::LogHistogram;
/// let mut h = LogHistogram::new(1.0, 1000.0, 3);
/// h.record(5.0);
/// h.record(50.0);
/// h.record(500.0);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.counts(), &[1, 1, 1]);
/// ```
#[deprecated(
    since = "0.6.0",
    note = "use stats::QuantileSketch (or LatencyAgg) directly; \
            LogHistogram is now a bin-count view over the sketch"
)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    bins: usize,
    sketch: QuantileSketch,
}

#[allow(deprecated)]
impl LogHistogram {
    /// Creates a histogram view with `bins` log-spaced bins spanning
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> LogHistogram {
        assert!(lo > 0.0, "log histogram needs positive lower bound");
        assert!(hi > lo, "hi must exceed lo");
        assert!(bins > 0, "need at least one bin");
        LogHistogram { lo, hi, bins, sketch: QuantileSketch::new() }
    }

    /// Records one value.
    ///
    /// The bin reported is always consistent with
    /// [`LogHistogram::bin_edges`]: below the sketch's exact threshold,
    /// `record(v)` adds one to the bin `i` with `bin_edges(i).0 <= v` and
    /// `v < bin_edges(i).1`, exactly as the counter-based histogram did.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (a NaN used to fall through both range
    /// checks and land silently in bin 0 because `NaN as usize == 0`).
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN in a histogram");
        self.sketch.record(value);
    }

    /// Records many values.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Cumulative rank at the lower edge of each bin plus the final upper
    /// edge: `bins + 1` monotone integers. Differences of these are the
    /// bin counts, which conserves the total in-range mass by
    /// construction (independent per-bin estimates would not).
    fn cum_ranks(&self) -> Vec<u64> {
        let mut cum: Vec<u64> = (0..self.bins)
            .map(|i| self.sketch.rank_below(self.bin_edges(i).0).round() as u64)
            .chain(std::iter::once(self.sketch.rank_below(self.hi).round() as u64))
            .collect();
        for i in 1..cum.len() {
            if cum[i] < cum[i - 1] {
                cum[i] = cum[i - 1];
            }
        }
        cum
    }

    /// Per-bin counts (excluding under/overflow). Exact below the
    /// sketch's threshold, within the rank-error bound per edge above it.
    pub fn counts(&self) -> Vec<u64> {
        if self.sketch.is_empty() {
            return vec![0; self.bins];
        }
        self.cum_ranks().windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Count below the lower bound.
    pub fn underflow(&self) -> u64 {
        if self.sketch.is_empty() {
            return 0;
        }
        self.sketch.rank_below(self.lo).round() as u64
    }

    /// Count at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        if self.sketch.is_empty() {
            return 0;
        }
        self.sketch.count() - *self.cum_ranks().last().expect("bins > 0")
    }

    /// Total recorded values including under/overflow.
    pub fn total(&self) -> u64 {
        self.sketch.count()
    }

    /// The backing sketch (every figure derived from this histogram
    /// shares its error bound).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins, "bin {i} out of range");
        let k = self.bins as f64;
        let ratio = self.hi / self.lo;
        // Pin the outermost edges to the exact bounds: `lo * ratio` can be
        // a ULP off `hi`, which would leave values right under `hi` outside
        // every bin. The bins must tile `[lo, hi)` exactly.
        let lo = if i == 0 { self.lo } else { self.lo * ratio.powf(i as f64 / k) };
        let hi =
            if i + 1 == self.bins { self.hi } else { self.lo * ratio.powf((i + 1) as f64 / k) };
        (lo, hi)
    }

    /// Renders the histogram as ASCII bars with bin ranges.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let counts = self.counts();
        let max = counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as f64 / max as f64 * width as f64).round() as usize);
            out.push_str(&format!("[{lo:>10.2}, {hi:>10.2}) {c:>7} {bar}\n"));
        }
        if self.underflow() > 0 {
            out.push_str(&format!("underflow: {}\n", self.underflow()));
        }
        if self.overflow() > 0 {
            out.push_str(&format!("overflow: {}\n", self.overflow()));
        }
        out
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn decade_bins_land_correctly() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(2.0); // decade [1,10)
        h.record(20.0); // [10,100)
        h.record(200.0); // [100,1000)
        assert_eq!(h.counts(), &[1, 1, 1]);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = LogHistogram::new(10.0, 100.0, 2);
        h.record(1.0);
        h.record(100.0);
        h.record(1e9);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn boundary_values() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.record(1.0); // exactly lo -> first bin
        h.record(10.0); // edge between bins -> second bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn bin_edges_are_logarithmic() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        let (lo, hi) = h.bin_edges(1);
        assert!((lo - 10.0).abs() < 1e-9);
        assert!((hi - 100.0).abs() < 1e-9);
    }

    #[test]
    fn record_all_and_render() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record_all([2.0, 3.0, 30.0]);
        let art = h.render_ascii(20);
        assert!(art.contains('#'));
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive lower bound")]
    fn zero_lo_panics() {
        LogHistogram::new(0.0, 10.0, 2);
    }

    #[test]
    #[should_panic(expected = "cannot record NaN")]
    fn record_nan_panics() {
        // Regression: NaN used to fall through both range checks and be
        // counted silently in bin 0.
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(f64::NAN);
    }

    #[test]
    fn infinities_hit_the_flow_buckets() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.counts(), &[0, 0, 0]);
    }

    #[test]
    fn recorded_bin_agrees_with_bin_edges_at_boundaries() {
        // Exercise exact powf bin edges, where a naive index mapping can
        // land one bin off before the nudge; rank differences at the same
        // edges cannot, by construction.
        let h0 = LogHistogram::new(1.0, 1000.0, 7);
        for i in 0..7 {
            let (lo, hi) = h0.bin_edges(i);
            for v in [lo, (lo + hi) / 2.0, hi - hi * 1e-15] {
                let mut h = h0.clone();
                h.record(v);
                assert_eq!(h.counts()[i], 1, "value {v} must land in bin {i}");
            }
        }
    }

    #[test]
    fn sketching_histogram_conserves_mass() {
        // Past the sketch threshold, counts are rank-derived estimates but
        // the telescoping construction must still conserve every sample.
        let mut h = LogHistogram::new(1.0, 1000.0, 10);
        for i in 0..50_000u64 {
            h.record(0.5 + ((i * 2654435761) % 2_000) as f64);
        }
        assert!(h.sketch().is_sketching());
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), h.total());
    }

    #[test]
    fn sketching_counts_stay_within_rank_error() {
        // Uniform ladder over one decade: per-bin expectation is directly
        // computable, and each edge's cumulative rank may be off by at
        // most n·ε.
        let n = 30_000u64;
        let mut h = LogHistogram::new(1.0, 10.0, 4);
        let mut exact = vec![0u64; 4];
        for i in 0..n {
            let v = 1.0 + 9.0 * (i as f64 + 0.5) / n as f64;
            h.record(v);
            let mut b = 3;
            for j in 0..4 {
                if v < h.bin_edges(j).1 {
                    b = j;
                    break;
                }
            }
            exact[b] += 1;
        }
        assert!(h.sketch().is_sketching());
        let tol = (n as f64 * (8.0 * 0.25 / 200.0 + 3.0 / n as f64)).ceil() as i64 * 2;
        for (i, (&got, &want)) in h.counts().iter().zip(&exact).enumerate() {
            let err = (got as i64 - want as i64).abs();
            assert!(err <= tol, "bin {i}: got {got}, want {want} (tol {tol})");
        }
    }
}
