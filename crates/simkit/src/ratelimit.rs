//! Rate limiting primitives in simulated time.
//!
//! Two primitives model throughput-limited services:
//!
//! * [`SerialServer`]: a single server that processes reservations one at a
//!   time (back-to-back), used for dispatch loops that drain a burst at a
//!   bounded rate (the load balancer's burst dispatch in the paper's §VI-D).
//! * [`TokenBucket`]: a classic token bucket for sustained-rate limits with
//!   burst capacity (the cluster scheduler's instance spawn rate).

use crate::time::SimTime;

/// A serial work-conserving server: each reservation occupies the server
/// for its service time; reservations queue behind one another.
///
/// `reserve(now, service)` returns the interval `[start, end)` during which
/// the reservation holds the server.
///
/// # Examples
///
/// ```
/// use simkit::ratelimit::SerialServer;
/// use simkit::time::SimTime;
///
/// let mut s = SerialServer::new();
/// let ms = SimTime::from_millis;
/// let (start, end) = s.reserve(ms(0.0), ms(2.0));
/// assert_eq!((start, end), (ms(0.0), ms(2.0)));
/// // A second arrival at t=1ms queues behind the first:
/// let (start, end) = s.reserve(ms(1.0), ms(2.0));
/// assert_eq!((start, end), (ms(2.0), ms(4.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SerialServer {
    busy_until: SimTime,
    served: u64,
}

impl SerialServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        SerialServer::default()
    }

    /// Reserves the server for `service` starting no earlier than `now`.
    /// Returns the `(start, end)` of the granted slot.
    pub fn reserve(&mut self, now: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.served += 1;
        (start, end)
    }

    /// Time at which the server next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Number of reservations granted.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Queue depth implied for an arrival at `now`: how long it would wait.
    pub fn wait_at(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }
}

/// A token bucket: capacity `burst` tokens, refilled at `rate_per_sec`.
///
/// `acquire_at` computes the earliest time at or after `now` when the
/// requested tokens are available, and consumes them for that time.
///
/// # Examples
///
/// ```
/// use simkit::ratelimit::TokenBucket;
/// use simkit::time::SimTime;
///
/// // 2 tokens of burst, 1 token/second refill.
/// let mut tb = TokenBucket::new(2.0, 1.0);
/// let t0 = SimTime::ZERO;
/// assert_eq!(tb.acquire_at(t0, 1.0), t0);            // burst token
/// assert_eq!(tb.acquire_at(t0, 1.0), t0);            // burst token
/// let t = tb.acquire_at(t0, 1.0);                    // must wait for refill
/// assert_eq!(t, SimTime::from_secs(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    rate_per_sec: f64,
    tokens: f64,
    updated_at: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket with the given burst `capacity` and refill
    /// `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity <= 0` or `rate_per_sec <= 0`.
    pub fn new(capacity: f64, rate_per_sec: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive: {capacity}");
        assert!(rate_per_sec > 0.0, "rate must be positive: {rate_per_sec}");
        TokenBucket { capacity, rate_per_sec, tokens: capacity, updated_at: SimTime::ZERO }
    }

    fn refill_to(&mut self, now: SimTime) {
        if now > self.updated_at {
            let dt = (now - self.updated_at).as_secs();
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.capacity);
            self.updated_at = now;
        }
    }

    /// Earliest time at or after `now` when `tokens` can be consumed;
    /// consumes them for that instant (virtual scheduling: the balance may
    /// go negative, representing reservations of future refill).
    ///
    /// Multiple acquisitions at the same `now` are allowed and queue up at
    /// the refill rate, which is what a burst of simultaneous spawn
    /// requests needs.
    ///
    /// # Panics
    ///
    /// Panics if `tokens <= 0` or `now` precedes the last acquisition time.
    pub fn acquire_at(&mut self, now: SimTime, tokens: f64) -> SimTime {
        assert!(tokens > 0.0, "tokens must be positive: {tokens}");
        assert!(now >= self.updated_at, "time went backwards in token bucket");
        self.refill_to(now);
        self.tokens -= tokens;
        if self.tokens >= 0.0 {
            return now;
        }
        let wait_secs = -self.tokens / self.rate_per_sec;
        now + SimTime::from_secs(wait_secs)
    }

    /// Tokens currently available at time `now` (without consuming).
    /// Negative values mean future refill is already reserved.
    ///
    /// This is a pure peek: it does not commit the refill, so a later
    /// `acquire_at` at any time at or after the last *acquisition* remains
    /// valid even if it precedes `now`.
    pub fn available_at(&self, now: SimTime) -> f64 {
        if now > self.updated_at {
            let dt = (now - self.updated_at).as_secs();
            (self.tokens + dt * self.rate_per_sec).min(self.capacity)
        } else {
            self.tokens
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(f64) -> SimTime = SimTime::from_millis;

    #[test]
    fn serial_server_queues_arrivals() {
        let mut s = SerialServer::new();
        let (a0, a1) = s.reserve(MS(0.0), MS(10.0));
        let (b0, b1) = s.reserve(MS(0.0), MS(10.0));
        let (c0, _c1) = s.reserve(MS(25.0), MS(10.0));
        assert_eq!((a0, a1), (MS(0.0), MS(10.0)));
        assert_eq!((b0, b1), (MS(10.0), MS(20.0)));
        assert_eq!(c0, MS(25.0), "idle server starts immediately");
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn serial_server_wait_at() {
        let mut s = SerialServer::new();
        s.reserve(MS(0.0), MS(10.0));
        assert_eq!(s.wait_at(MS(4.0)), MS(6.0));
        assert_eq!(s.wait_at(MS(50.0)), SimTime::ZERO);
    }

    #[test]
    fn token_bucket_burst_then_rate() {
        let mut tb = TokenBucket::new(3.0, 10.0); // 3 burst, 10/s
        let t0 = SimTime::ZERO;
        assert_eq!(tb.acquire_at(t0, 1.0), t0);
        assert_eq!(tb.acquire_at(t0, 1.0), t0);
        assert_eq!(tb.acquire_at(t0, 1.0), t0);
        // Fourth must wait 100ms for one token at 10/s.
        assert_eq!(tb.acquire_at(t0, 1.0), MS(100.0));
        // Fifth waits another 100ms.
        assert_eq!(tb.acquire_at(MS(100.0), 1.0), MS(200.0));
    }

    #[test]
    fn token_bucket_refills_up_to_capacity() {
        let mut tb = TokenBucket::new(2.0, 1.0);
        let t0 = SimTime::ZERO;
        tb.acquire_at(t0, 2.0);
        assert_eq!(tb.available_at(t0), 0.0);
        // After 10s it refills but caps at capacity 2.
        let later = SimTime::from_secs(10.0);
        assert_eq!(tb.available_at(later), 2.0);
    }

    #[test]
    fn token_bucket_fractional_tokens() {
        let mut tb = TokenBucket::new(1.0, 2.0);
        let t0 = SimTime::ZERO;
        assert_eq!(tb.acquire_at(t0, 0.5), t0);
        assert_eq!(tb.acquire_at(t0, 0.5), t0);
        // Next 0.5 token takes 0.25s at 2 tokens/s.
        assert_eq!(tb.acquire_at(t0, 0.5), SimTime::from_secs(0.25));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn token_bucket_zero_capacity_panics() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    fn available_at_is_a_pure_peek() {
        // Regression: peeking availability at a future time used to commit
        // the refill (advancing `updated_at`), so a later acquisition at an
        // earlier time panicked "time went backwards" despite nothing having
        // been acquired.
        let mut tb = TokenBucket::new(2.0, 1.0);
        tb.acquire_at(SimTime::from_secs(1.0), 2.0);
        assert_eq!(tb.available_at(SimTime::from_secs(5.0)), 2.0);
        // Acquire at t=1s, *before* the peeked time: must not panic, and the
        // bucket must still be empty at t=1s.
        let granted = tb.acquire_at(SimTime::from_secs(1.0), 1.0);
        assert_eq!(granted, SimTime::from_secs(2.0));
    }

    #[test]
    fn available_at_past_time_reports_current_balance() {
        let mut tb = TokenBucket::new(3.0, 1.0);
        tb.acquire_at(SimTime::from_secs(10.0), 3.0);
        // A query for a time before the last update reports the balance as
        // of the last update rather than extrapolating backwards.
        assert_eq!(tb.available_at(SimTime::from_secs(1.0)), 0.0);
    }
}
