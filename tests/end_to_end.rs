//! End-to-end integration: configuration → deployer → client → statistics
//! across all crates, on each calibrated provider.

use faas_sim::types::{DeploymentMethod, Runtime, TransferMode};
use providers::paper::ProviderKind;
use providers::profiles::{aws_like, config_for, google_like};
use stats::Summary;
use stellar_core::client::run_workload;
use stellar_core::config::{ChainConfig, IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::Experiment;
use stellar_integration_tests::deployed;

#[test]
fn full_pipeline_on_every_provider() {
    for kind in ProviderKind::ALL {
        let static_cfg =
            StaticConfig { functions: vec![StaticFunction::python_zip("e2e").with_replicas(3)] };
        let mut runtime_cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 2000.0 }, 200);
        runtime_cfg.warmup_rounds = 3;
        let (mut cloud, deployment) = deployed(config_for(kind), &static_cfg, &runtime_cfg, 9);
        assert_eq!(deployment.len(), 3);
        let result = run_workload(&mut cloud, &deployment, &runtime_cfg, 9).unwrap();
        assert_eq!(result.completions.len(), 200);
        let summary = Summary::from_samples(&result.latencies_ms());
        assert!(summary.median > 10.0 && summary.median < 200.0, "{kind}: {summary}");
        // Conservation: every completion's breakdown sums to its latency.
        for c in &result.completions {
            assert!(
                (c.breakdown.total_ms() - c.latency_ms()).abs() < 1e-3,
                "{kind}: breakdown mismatch on {}",
                c.id
            );
        }
    }
}

#[test]
fn experiment_builder_equals_manual_pipeline() {
    let static_cfg =
        StaticConfig { functions: vec![StaticFunction::python_zip("same").with_replicas(2)] };
    let runtime_cfg = RuntimeConfig::single(IatSpec::short(), 100);

    let outcome = Experiment::new(aws_like())
        .functions(static_cfg.clone())
        .workload(runtime_cfg.clone())
        .seed(123)
        .run()
        .unwrap();

    let (mut cloud, deployment) = deployed(aws_like(), &static_cfg, &runtime_cfg, 123);
    let manual = run_workload(&mut cloud, &deployment, &runtime_cfg, 123).unwrap();

    assert_eq!(outcome.result.latencies_ms(), manual.latencies_ms());
}

#[test]
fn chained_experiment_produces_consistent_timestamps() {
    let mut runtime_cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 2000.0 }, 100);
    runtime_cfg.warmup_rounds = 2;
    runtime_cfg.chain =
        Some(ChainConfig { length: 2, mode: TransferMode::Storage, payload_bytes: 1_000_000 });
    let outcome = Experiment::new(google_like())
        .functions(StaticConfig { functions: vec![StaticFunction::go_zip("chain")] })
        .workload(runtime_cfg)
        .seed(5)
        .run()
        .unwrap();
    // Cross-validation the paper describes (§IV): the in-function transfer
    // window must sit inside the client-observed end-to-end latency.
    assert_eq!(outcome.result.transfers.len(), 100);
    for (completion, transfer) in outcome.result.completions.iter().zip(&outcome.result.transfers) {
        assert!(transfer.transfer_ms() > 0.0);
        assert!(
            transfer.transfer_ms() < completion.latency_ms(),
            "transfer {} must be contained in e2e {}",
            transfer.transfer_ms(),
            completion.latency_ms()
        );
        assert!(transfer.send_start >= completion.issued_at);
        assert!(transfer.received <= completion.completed_at);
    }
}

#[test]
fn multi_entry_static_config_deploys_all_functions() {
    let static_cfg = StaticConfig {
        functions: vec![
            StaticFunction::python_zip("small"),
            StaticFunction::go_zip("large").with_extra_image_mb(100.0).with_replicas(2),
            StaticFunction {
                name: "container".into(),
                runtime: Runtime::Python3,
                deployment: DeploymentMethod::Container,
                memory_mb: 1024,
                extra_image_mb: 0.0,
                replicas: 1,
            },
        ],
    };
    let runtime_cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 8);
    let (mut cloud, deployment) = deployed(aws_like(), &static_cfg, &runtime_cfg, 3);
    assert_eq!(deployment.len(), 4); // 1 + 2 + 1 replicas
    let result = run_workload(&mut cloud, &deployment, &runtime_cfg, 3).unwrap();
    assert_eq!(result.completions.len(), 8);
}

#[test]
fn replicas_accelerate_cold_measurements_without_warming() {
    // The paper's trick (§IV): many replicas let cold starts be measured
    // quickly; every sample must still be a genuine cold start.
    let outcome = stellar_core::protocols::cold_invocations(
        aws_like(),
        stellar_core::protocols::ColdSetup::baseline(),
        120,
        60,
        77,
    )
    .unwrap();
    assert_eq!(outcome.result.completions.len(), 120);
    assert!(outcome.result.cold_fraction() > 0.95);
    // Wall-clock (simulated) is ~ samples/replicas × 15 min, far below
    // samples × 15 min.
    assert!(outcome.result.duration < simkit::time::SimTime::from_mins(45));
}
