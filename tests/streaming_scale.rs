//! Scale tests for the streaming submission path: a ~10^6-invocation
//! sketch-mode run must complete with peak pending state bounded by
//! O(slice + active requests), not O(total invocations) — verified
//! through the request-slab and calendar-queue counters the cloud folds
//! into its metrics registry — and spec-driven sweeps must stay
//! byte-identical across worker counts.

use faas_sim::cloud::metric;
use faas_sim::testutil::test_provider;
use providers::profiles::{aws_like, google_like};
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::Experiment;
use stellar_core::runner::{Scenario, SweepGrid, SweepRunner};
use workload::spec::{ArrivalSpec, ModeSpec, WorkloadSpec};

/// Debug builds run the same shape at 1/5 scale so `cargo test` stays
/// tractable on one core; release (CI's large-run job) runs the full
/// million.
const TOTAL: u32 = if cfg!(debug_assertions) { 200_000 } else { 1_000_000 };

#[test]
fn million_invocation_streaming_run_has_bounded_pending_state() {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), TOTAL);
    runtime.warmup_rounds = 0;
    let runtime = runtime.with_workload(WorkloadSpec {
        arrival: ArrivalSpec::Exponential { mean_ms: 5.0 },
        mode: ModeSpec::Open,
    });
    let outcome = Experiment::new(test_provider())
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("scale")] })
        .workload(runtime)
        .seed(17)
        .measure(stellar_core::client::MeasureSpec::sketch())
        .run()
        .unwrap();

    let total = u64::from(TOTAL);
    assert_eq!(outcome.summary.count, total as usize);
    let offered = outcome.result.offered.expect("spec runs report offered load");
    assert_eq!(offered.arrivals, total);
    assert!((offered.mean_rate_per_s - 200.0).abs() < 5.0, "rate {}", offered.mean_rate_per_s);

    // The request slab never holds more than the submission slice plus the
    // requests actually in flight: at a 5 ms mean IAT and 10 s submission
    // slices that is a few thousand slots, overwhelmingly reused.
    let high_water = outcome.metrics.counter(metric::REQUEST_SLOTS_HIGH_WATER);
    let allocated = outcome.metrics.counter(metric::REQUEST_SLOTS_ALLOCATED);
    let reused = outcome.metrics.counter(metric::REQUEST_SLOTS_REUSED);
    assert!(high_water > 0, "slab counters must be recorded");
    assert!(
        high_water < total / 20,
        "pending state must stay O(slice), not O(total): high water {high_water} of {total}"
    );
    assert_eq!(allocated + reused, total, "every request takes exactly one slot");
    assert!(reused > allocated * 10, "slots are overwhelmingly recycled: {reused} vs {allocated}");

    // The calendar queue resizes O(log n) times, not per-event.
    let rebuilds = outcome.metrics.counter(metric::CALQUEUE_REBUILDS)
        + outcome.metrics.counter(metric::CALQUEUE_OVERCROWD_REBUILDS);
    assert!(rebuilds < 200, "calendar queue rebuilds must stay bounded: {rebuilds}");
}

#[test]
fn trace_replay_sweep_is_byte_identical_across_thread_counts() {
    // Trace replay draws its whole schedule at build time from the run
    // seed; crossing it with providers and seeds on varying worker counts
    // must reproduce the serial CSV byte for byte.
    let spec = WorkloadSpec {
        arrival: ArrivalSpec::TraceReplay {
            functions: 4,
            horizon_ms: 30_000.0,
            trace_window_ms: 60_000.0,
        },
        mode: ModeSpec::Open,
    };
    let mut runtime = RuntimeConfig::single(IatSpec::short(), 80);
    runtime.warmup_rounds = 0;
    let scenarios = [aws_like(), google_like()]
        .into_iter()
        .map(|cfg| Scenario::new(cfg.name.clone(), cfg).workload(runtime.clone()))
        .collect();
    let grid = SweepGrid::cross_workloads(scenarios, &[("trace", spec)], vec![2025, 2026]);
    let serial = SweepRunner::new(1).run(&grid);
    assert_eq!(serial.ok_count(), 4);
    let csv = serial.to_csv();
    assert!(csv.contains("aws-like/trace"), "workload axis labels the cells:\n{csv}");
    for threads in [2, 4] {
        let threaded = SweepRunner::new(threads).run(&grid);
        assert_eq!(csv, threaded.to_csv(), "{threads}-worker trace sweep must match serial");
    }
}

#[test]
fn streaming_spec_run_is_identical_across_queue_backends() {
    // The event-queue backend is a pure performance knob; the spec-driven
    // streaming path must not let it leak into results.
    let run = |queue| {
        let mut runtime = RuntimeConfig::single(IatSpec::short(), 2_000);
        runtime.warmup_rounds = 10;
        let runtime =
            runtime.with_workload(WorkloadSpec::preset("mmpp-burst").expect("preset exists"));
        let outcome = Experiment::new(test_provider())
            .workload(runtime)
            .seed(23)
            .queue(queue)
            .measure(stellar_core::client::MeasureSpec::exact())
            .run()
            .unwrap();
        outcome.latencies_ms()
    };
    use simkit::engine::QueueKind;
    let calendar = run(QueueKind::Calendar);
    assert_eq!(calendar, run(QueueKind::BinaryHeap));
    assert_eq!(calendar, run(QueueKind::Adaptive));
}
