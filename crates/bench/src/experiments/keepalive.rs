//! Keep-alive policy study (extension).
//!
//! The paper's related work points at Shahrad et al.'s exploration of
//! instance keep-alive policies; our simulator makes that design space
//! directly measurable: longer keep-alives trade wasted instance-seconds
//! (provider cost) for fewer cold starts (user latency). This study sweeps
//! the keep-alive window against a mixed-rate invocation pattern.

use faas_sim::cloud::CloudSim;
use faas_sim::spec::FunctionSpec;
use providers::profiles::aws_like;
use simkit::dist::Dist;
use simkit::rng::Rng;
use simkit::time::SimTime;
use stats::table::{fmt_latency, TextTable};

use crate::report::Report;

/// One keep-alive setting's outcome.
#[derive(Debug, Clone)]
pub struct KeepAliveCell {
    /// Keep-alive window, minutes.
    pub keepalive_min: f64,
    /// Fraction of requests that cold started.
    pub cold_fraction: f64,
    /// Median end-to-end latency, ms.
    pub median_ms: f64,
    /// p99 end-to-end latency, ms.
    pub p99_ms: f64,
    /// Idle (non-busy) instance-seconds burned per request.
    pub idle_seconds_per_request: f64,
}

/// Sweeps keep-alive windows against three functions with 1, 7 and 20
/// minute mean inter-arrival times (spanning the warm/cold boundary).
pub fn sweep(seed: u64) -> Vec<KeepAliveCell> {
    let mut cells = Vec::new();
    for &minutes in &[1.0f64, 5.0, 10.0, 30.0, 60.0] {
        let mut cfg = aws_like();
        cfg.keepalive.idle_timeout_ms = Dist::constant(minutes * 60_000.0);
        let mut cloud = CloudSim::new(cfg, seed);
        let mut rng = Rng::seed_from(seed).fork("keepalive-arrivals");
        let mut fns = Vec::new();
        for (i, mean_iat_min) in [1.0f64, 7.0, 20.0].iter().enumerate() {
            let f = cloud
                .deploy(FunctionSpec::builder(format!("ka{i}")).exec_constant_ms(50.0).build())
                .expect("deploy");
            // Poisson arrivals over 4 simulated hours.
            let mut t = SimTime::ZERO;
            let horizon = SimTime::from_mins(240);
            let mut tag = 0u64;
            loop {
                t += SimTime::from_millis(-mean_iat_min * 60_000.0 * rng.next_f64_open().ln());
                if t >= horizon {
                    break;
                }
                cloud.submit(f, tag, t);
                tag += 1;
            }
            fns.push(f);
        }
        cloud.run_until(SimTime::from_mins(260));
        let done = cloud.drain_completions();
        assert!(!done.is_empty());
        let mut latencies: Vec<f64> = done.iter().map(|c| c.latency_ms()).collect();
        let cold = done.iter().filter(|c| c.cold).count() as f64 / done.len() as f64;
        let mut idle_seconds = 0.0;
        for &f in &fns {
            let usage = cloud.resource_usage(f);
            idle_seconds += usage.instance_seconds - usage.busy_seconds;
        }
        // Sort once; both quantiles read the same sorted vector.
        stats::percentile::sort_samples(&mut latencies);
        cells.push(KeepAliveCell {
            keepalive_min: minutes,
            cold_fraction: cold,
            median_ms: stats::percentile::sorted_percentile(&latencies, 0.5),
            p99_ms: stats::percentile::sorted_percentile(&latencies, 0.99),
            idle_seconds_per_request: idle_seconds / done.len() as f64,
        });
    }
    cells
}

/// Renders the study.
pub fn report(seed: u64) -> Report {
    let mut table =
        TextTable::new(vec!["keepalive_min", "cold_frac", "median_ms", "p99_ms", "idle_sec/req"]);
    for cell in sweep(seed) {
        table.row(vec![
            format!("{}", cell.keepalive_min),
            format!("{:.3}", cell.cold_fraction),
            fmt_latency(cell.median_ms),
            fmt_latency(cell.p99_ms),
            format!("{:.1}", cell.idle_seconds_per_request),
        ]);
    }
    let mut body = String::from(
        "Three functions with 1/7/20-minute mean IATs over 4 simulated hours\n\
         on aws-like; longer keep-alives buy tail latency with idle capacity:\n",
    );
    body.push_str(&table.render());
    Report { id: "keepalive", title: "Keep-alive window vs cold-start exposure (extension)", body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_keepalive_trades_cost_for_cold_starts() {
        let cells = sweep(5);
        assert_eq!(cells.len(), 5);
        let first = &cells[0]; // 1 minute
        let last = &cells[4]; // 60 minutes
                              // Cold fraction falls monotonically-ish with the window.
        assert!(
            last.cold_fraction < first.cold_fraction / 2.0,
            "cold {} -> {}",
            first.cold_fraction,
            last.cold_fraction
        );
        // ...while idle capacity burned per request rises.
        assert!(
            last.idle_seconds_per_request > 2.0 * first.idle_seconds_per_request,
            "idle {} -> {}",
            first.idle_seconds_per_request,
            last.idle_seconds_per_request
        );
        // Tail latency improves with fewer cold starts.
        assert!(last.p99_ms < first.p99_ms);
        assert!(report(5).render().contains("keepalive_min"));
    }
}
