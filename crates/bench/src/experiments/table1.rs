//! Table I: median-to-base-median (MR) and tail-to-base-median (TR)
//! metrics per studied tail-latency factor across providers (§VII-A).

use faas_sim::types::{DeploymentMethod, Runtime, TransferMode, MB};
use providers::paper::{self, ProviderKind, TableOneRow};
use providers::profiles::config_for;
use stats::metrics::FactorRatios;
use stats::percentile::{sort_samples, sorted_percentile};
use stats::table::{fmt_ratio, TextTable};
use stellar_core::protocols::{
    bursty_invocations, cold_invocations, transfer_chain, warm_invocations, BurstIat, ColdSetup,
};

use crate::report::{Report, BASE_SEED};

/// The factor rows of Table I, in paper order.
pub const FACTORS: [&str; 8] = [
    "Base warm",
    "Base cold",
    "Image size, 100MB",
    "Inline transfer",
    "Storage transfer",
    "Bursty warm",
    "Bursty cold",
    "Bursty long",
];

/// One measured cell: `(mr, tr)`; `None` where the paper reports n/a.
pub type Cell = Option<FactorRatios>;

/// The measured table: `rows[factor][provider]`.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// `cells[f][p]` for factor `f` and provider `p` (paper order).
    pub cells: Vec<[Cell; 3]>,
}

fn provider_column(kind: ProviderKind, samples: u32) -> [Cell; 8] {
    // Every row divides by the same base median, so sort the base once and
    // reuse it instead of re-sorting per factor (7x fewer base sorts).
    let mut base = warm_invocations(config_for(kind), samples, BASE_SEED + 61)
        .expect("warm base")
        .latencies_ms();
    sort_samples(&mut base);
    let base_median = sorted_percentile(&base, 0.5);
    let ratios = |factor: &[f64]| Some(FactorRatios::against_base_median(factor, base_median));

    // Base warm (row 0) normalises to itself; `base` is already sorted.
    let warm = Some(FactorRatios::from_sorted(&base, base_median));

    let cold =
        cold_invocations(config_for(kind), ColdSetup::baseline(), samples, 100, BASE_SEED + 62)
            .expect("cold")
            .latencies_ms();

    let image = cold_invocations(
        config_for(kind),
        ColdSetup {
            runtime: Runtime::Go,
            deployment: DeploymentMethod::Zip,
            extra_image_mb: 100.0,
        },
        samples,
        100,
        BASE_SEED + 63,
    )
    .expect("image")
    .latencies_ms();

    // Transfers: the paper has no Azure chain numbers (no Go runtime).
    let (inline, storage) = if kind == ProviderKind::Azure {
        (None, None)
    } else {
        let inline =
            transfer_chain(config_for(kind), TransferMode::Inline, MB, samples, BASE_SEED + 64)
                .expect("inline")
                .result
                .transfer_ms();
        let storage =
            transfer_chain(config_for(kind), TransferMode::Storage, MB, samples, BASE_SEED + 65)
                .expect("storage")
                .result
                .transfer_ms();
        (ratios(&inline), ratios(&storage))
    };

    let bursty_warm = bursty_invocations(
        config_for(kind),
        BurstIat::Short,
        100,
        0.0,
        samples.max(1000),
        1,
        BASE_SEED + 66,
    )
    .expect("bursty warm")
    .latencies_ms();

    let bursty_cold = bursty_invocations(
        config_for(kind),
        BurstIat::Long,
        100,
        0.0,
        samples.max(1000),
        3,
        BASE_SEED + 67,
    )
    .expect("bursty cold")
    .latencies_ms();

    let bursty_long = bursty_invocations(
        config_for(kind),
        BurstIat::Long,
        100,
        1000.0,
        samples.max(1000),
        3,
        BASE_SEED + 68,
    )
    .expect("bursty long")
    .latencies_ms();

    [
        warm,
        ratios(&cold),
        ratios(&image),
        inline,
        storage,
        ratios(&bursty_warm),
        ratios(&bursty_cold),
        // Footnote 7: subtract the 1 s execution time.
        Some(FactorRatios::minus_exec_against_base_median(&bursty_long, base_median, 1000.0)),
    ]
}

/// Measures the whole table (providers in parallel).
pub fn measure(samples: u32) -> Table1 {
    let mut columns: Vec<(ProviderKind, [Cell; 8])> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .map(|&kind| scope.spawn(move |_| (kind, provider_column(kind, samples))))
            .collect();
        for handle in handles {
            columns.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    columns.sort_by_key(|(kind, _)| ProviderKind::ALL.iter().position(|k| k == kind));
    let mut cells = Vec::new();
    for f in 0..FACTORS.len() {
        cells.push([columns[0].1[f], columns[1].1[f], columns[2].1[f]]);
    }
    Table1 { cells }
}

impl Table1 {
    /// The paper's corresponding row.
    pub fn paper_row(factor_index: usize) -> &'static TableOneRow {
        &paper::TABLE_ONE[factor_index]
    }

    /// Renders measured-vs-paper as one table.
    pub fn report(&self) -> Report {
        let mut table = TextTable::new(vec![
            "factor", "aws MR", "(paper)", "aws TR", "(paper)", "goog MR", "(paper)", "goog TR",
            "(paper)", "azure MR", "(paper)", "azure TR", "(paper)",
        ]);
        for (f, name) in FACTORS.iter().enumerate() {
            let paper_row = Self::paper_row(f);
            let fmt_cell = |cell: &Cell, pick: fn(&FactorRatios) -> f64| match cell {
                Some(r) => fmt_ratio(pick(r)),
                None => "n/a".to_string(),
            };
            let fmt_paper = |v: Option<f64>| match v {
                Some(x) => format!("{x:.0}"),
                None => "n/a".to_string(),
            };
            table.row(vec![
                name.to_string(),
                fmt_cell(&self.cells[f][0], |r| r.mr),
                fmt_paper(Some(paper_row.aws.0)),
                fmt_cell(&self.cells[f][0], |r| r.tr),
                fmt_paper(Some(paper_row.aws.1)),
                fmt_cell(&self.cells[f][1], |r| r.mr),
                fmt_paper(Some(paper_row.google.0)),
                fmt_cell(&self.cells[f][1], |r| r.tr),
                fmt_paper(Some(paper_row.google.1)),
                fmt_cell(&self.cells[f][2], |r| r.mr),
                fmt_paper(paper_row.azure.map(|a| a.0)),
                fmt_cell(&self.cells[f][2], |r| r.tr),
                fmt_paper(paper_row.azure.map(|a| a.1)),
            ]);
        }
        let mut body = table.render();
        body.push_str("\n(*) marks MR/TR > 10, the paper's problematic threshold.\n");
        Report {
            id: "table1",
            title: "MR and TR metrics per tail-latency factor across providers",
            body,
        }
    }

    /// Whether our measured red cells (>10) include all of the paper's
    /// red cells for the rows that can be compared.
    pub fn red_cells_agree(&self) -> bool {
        for (f, row) in paper::TABLE_ONE.iter().enumerate() {
            let paper_cells = [Some(row.aws), Some(row.google), row.azure];
            for (p, paper_cell) in paper_cells.iter().enumerate() {
                let (Some(paper_vals), Some(measured)) = (paper_cell, &self.cells[f][p]) else {
                    continue;
                };
                let paper_red = paper_vals.0 > 10.0 || paper_vals.1 > 10.0;
                // Paper-red cells must measure at least "elevated" (>5):
                // we allow band error but not a vanished effect.
                if paper_red && measured.mr < 5.0 && measured.tr < 5.0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_reproduces_red_cells() {
        let table = measure(500);
        assert_eq!(table.cells.len(), 8);
        assert!(table.red_cells_agree(), "a paper-red cell vanished");
        // Azure transfers are n/a as in the paper.
        assert!(table.cells[3][2].is_none());
        assert!(table.cells[4][2].is_none());
        // Base warm MR is 1 by construction.
        for p in 0..3 {
            let r = table.cells[0][p].unwrap();
            assert!((r.mr - 1.0).abs() < 0.05);
        }
        // Azure "Bursty long" is the most extreme cell (paper: 309/619).
        let azure_long = table.cells[7][2].unwrap();
        assert!(azure_long.mr > 100.0, "azure bursty-long MR {:.0}", azure_long.mr);
        let rendered = table.report().render();
        assert!(rendered.contains("Bursty long"));
        assert!(rendered.contains("n/a"));
    }
}
