//! Per-run policy outcome accounting.

use serde::{Deserialize, Serialize};

/// What a policy did to a run, and what it cost. Latency aggregates
/// count winners only; everything a policy threw away shows up here as
/// wasted work instead of vanishing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Logical requests driven under the policy (warmup included).
    pub logical: u64,
    /// Extra physical attempts launched (hedges, retries, tied copies).
    pub extra_launches: u64,
    /// Attempts cancelled by the client (losers, timeouts, deadline
    /// kills).
    pub cancels: u64,
    /// Attempts that completed after their logical request was already
    /// won — too late for the cancel to catch them.
    pub duplicate_successes: u64,
    /// Logical requests abandoned by a deadline without any result.
    pub abandoned: u64,
    /// Attempts that resolved with a provider-style error (throttle,
    /// crash, shed) instead of a latency sample.
    #[serde(default)]
    pub failures: u64,
    /// Logical requests whose every attempt failed — no winner existed.
    #[serde(default)]
    pub failed_logical: u64,
    /// Instance busy-time consumed by winning attempts, ms.
    pub used_busy_ms: f64,
    /// Instance busy-time consumed by cancelled and duplicate attempts,
    /// ms — work the policy paid for but did not use.
    pub wasted_busy_ms: f64,
}

impl PolicyStats {
    /// Extra attempts per logical request — for a pure single-hedge
    /// policy this is exactly the hedge-fire rate.
    pub fn hedge_fire_rate(&self) -> f64 {
        if self.logical == 0 {
            0.0
        } else {
            self.extra_launches as f64 / self.logical as f64
        }
    }

    /// Physical attempts launched per logical request: `1.0` means no
    /// policy fired; an outage-driven retry storm shows up here as the
    /// amplification factor the provider absorbs.
    pub fn retry_amplification(&self) -> f64 {
        if self.logical == 0 {
            1.0
        } else {
            (self.logical + self.extra_launches) as f64 / self.logical as f64
        }
    }

    /// Fraction of all consumed instance time that was thrown away:
    /// `wasted / (used + wasted)`, in `[0, 1]`.
    pub fn wasted_fraction(&self) -> f64 {
        let total = self.used_busy_ms + self.wasted_busy_ms;
        if total <= 0.0 {
            0.0
        } else {
            self.wasted_busy_ms / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_and_typical_runs() {
        let empty = PolicyStats::default();
        assert_eq!(empty.hedge_fire_rate(), 0.0);
        assert_eq!(empty.wasted_fraction(), 0.0);

        let s = PolicyStats {
            logical: 200,
            extra_launches: 10,
            cancels: 8,
            duplicate_successes: 2,
            abandoned: 1,
            used_busy_ms: 900.0,
            wasted_busy_ms: 100.0,
            ..Default::default()
        };
        assert!((s.hedge_fire_rate() - 0.05).abs() < 1e-12);
        assert!((s.wasted_fraction() - 0.1).abs() < 1e-12);
        assert!((s.retry_amplification() - 1.05).abs() < 1e-12);
        assert_eq!(PolicyStats::default().retry_amplification(), 1.0);
    }

    #[test]
    fn stats_roundtrip_json() {
        let s = PolicyStats { logical: 5, extra_launches: 1, ..Default::default() };
        let json = serde_json::to_string(&s).unwrap();
        let back: PolicyStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
