//! Golden byte-identity gate for the fault-injection subsystem.
//!
//! The contract: a run with no `faults` stanza, a run with the explicit
//! inert spec (`FaultSpec::none()`), and yesterday's pre-fault code path
//! are all the same run, bit for bit — across every event-queue backend
//! and however many sweep workers execute the grid. The fault arms in
//! the cloud's event loop are gated on an installed plan *before* any
//! RNG draw or event schedule, so the faults-off stream of randomness
//! (and therefore every latency) is untouched.

use faults::FaultSpec;
use simkit::engine::QueueKind;
use stellar_core::config::{IatSpec, RuntimeConfig};
use stellar_core::experiment::Experiment;
use stellar_core::runner::{Scenario, SweepGrid, SweepRunner};

const QUEUES: [QueueKind; 3] = [QueueKind::BinaryHeap, QueueKind::Calendar, QueueKind::Adaptive];

fn run_latencies(faults: Option<FaultSpec>, queue: QueueKind) -> Vec<f64> {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), 150);
    runtime.warmup_rounds = 2;
    runtime.faults = faults;
    Experiment::new(providers::profiles::aws_like())
        .workload(runtime)
        .seed(42)
        .queue(queue)
        .run()
        .expect("identity run")
        .latencies_ms()
}

#[test]
fn inert_fault_spec_is_byte_identical_to_no_spec_on_every_backend() {
    for queue in QUEUES {
        let absent = run_latencies(None, queue);
        let none = run_latencies(Some(FaultSpec::none()), queue);
        assert_eq!(absent, none, "{queue:?}: FaultSpec::none() must be the identity");
        // A none-compose is still inert.
        let composed = run_latencies(
            Some(FaultSpec::Compose { parts: vec![FaultSpec::None, FaultSpec::None] }),
            queue,
        );
        assert_eq!(absent, composed, "{queue:?}: composed None must be the identity");
    }
    // And the backends agree with each other (the pre-existing contract,
    // re-checked under the new gating).
    let reference = run_latencies(None, QueueKind::BinaryHeap);
    for queue in [QueueKind::Calendar, QueueKind::Adaptive] {
        assert_eq!(reference, run_latencies(None, queue), "{queue:?} vs binary heap");
    }
}

#[test]
fn inert_runs_report_no_fault_stats() {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), 60);
    runtime.faults = Some(FaultSpec::none());
    let outcome = Experiment::new(providers::profiles::aws_like())
        .workload(runtime)
        .seed(7)
        .run()
        .expect("inert run");
    assert!(
        outcome.result.faults.is_none(),
        "an inert plan must not install (and must not report stats)"
    );
}

fn sweep_grid(faults: Option<FaultSpec>) -> SweepGrid {
    let scenarios = ["aws-like", "google-like"]
        .into_iter()
        .map(|name| {
            let cfg = match name {
                "aws-like" => providers::profiles::aws_like(),
                _ => providers::profiles::google_like(),
            };
            let mut runtime = RuntimeConfig::single(IatSpec::short(), 40);
            runtime.faults = faults.clone();
            Scenario::new(name, cfg).workload(runtime)
        })
        .collect();
    SweepGrid::new(scenarios, vec![0, 1, 2])
}

#[test]
fn faults_off_sweeps_are_byte_identical_across_threads_and_backends() {
    let baseline = SweepRunner::new(1).run(&sweep_grid(None));
    let base_csv = baseline.to_csv();
    let base_ext = baseline.to_csv_extended();
    for threads in [1, 2, 8] {
        for queue in QUEUES {
            for faults in [None, Some(FaultSpec::none())] {
                let report =
                    SweepRunner::new(threads).queue(queue).run(&sweep_grid(faults.clone()));
                assert_eq!(
                    report.to_csv(),
                    base_csv,
                    "threads {threads}, {queue:?}, faults {faults:?}: base CSV must not move"
                );
                assert_eq!(
                    report.to_csv_extended(),
                    base_ext,
                    "threads {threads}, {queue:?}, faults {faults:?}: extended CSV must not move"
                );
            }
        }
    }
}
