//! Offline stand-in for `serde_json`.
//!
//! Parses and prints JSON against the vendored `serde` crate's
//! [`serde::Value`] tree. Floats print via Rust's shortest-round-trip
//! `{:?}` formatting (always with a decimal point or exponent, like ryu),
//! so value → text → value round-trips exactly.

use std::fmt;

pub use serde::Value;

/// Parse or serialisation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn new(msg: impl Into<String>, line: usize, column: usize) -> Error {
        Error { msg: msg.into(), line, column }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {} column {}", self.msg, self.line, self.column)
    }
}

impl std::error::Error for Error {}

type Result<T> = std::result::Result<T, Error>;

// ---- parsing --------------------------------------------------------------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Error::new(msg, line, column)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => {
                self.parse_keyword("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_bool(&mut self) -> Result<Value> {
        if self.peek() == Some(b't') {
            self.parse_keyword("true")?;
            Ok(Value::Bool(true))
        } else {
            self.parse_keyword("false")?;
            Ok(Value::Bool(false))
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's configs; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parses `text` into any vendored-`Deserialize` type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let mut parser = JsonParser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::deserialize(&value).map_err(|e| Error::new(e.to_string(), 1, 1))
}

// ---- printing -------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e16 {
        // Match ryu/serde_json: integral floats keep a trailing `.0`.
        format!("{x:.1}")
    } else {
        format!("{x:?}")
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&fmt_f64(*x)),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails for tree-shaped data; the `Result` mirrors the real crate's
/// signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None);
    Ok(out)
}

/// Serialises `value` as pretty JSON (two-space indent, like serde_json).
///
/// # Errors
///
/// Never fails for tree-shaped data; the `Result` mirrors the real crate's
/// signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3000.0f64).unwrap(), "3000.0");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a": [1, 2.5, null], "b": {"c": "x"}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":[1,2.5,null],"b":{"c":"x"}}"#);
        let again: Value = from_str(&compact).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn float_shortest_round_trip() {
        for x in [0.1, 1e-7, 123456.789, 2.2250738585072014e-308] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }
}
