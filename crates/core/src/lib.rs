//! # stellar-core — STeLLAR, the Serverless Tail-Latency Analyzer
//!
//! A Rust reproduction of the benchmarking framework from *Analyzing Tail
//! Latency in Serverless Clouds with STeLLAR* (IISWC'21). The framework is
//! provider-agnostic and highly configurable; it deploys sets of functions
//! described by a *static configuration*, drives invocation traffic
//! described by a *runtime configuration* (IAT distributions, bursts,
//! execution times, chained functions with inline or storage transfers),
//! and collects end-to-end and per-component latency measurements.
//!
//! The deployment target here is the [`faas_sim`] simulator (the paper
//! deployed to AWS Lambda, Google Cloud Functions and Azure Functions —
//! see `DESIGN.md` for the substitution rationale); the calibrated
//! provider profiles live in the `providers` crate.
//!
//! ## Quick start
//!
//! ```
//! use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
//! use stellar_core::experiment::Experiment;
//! use faas_sim::testutil::test_provider;
//!
//! // Deploy 4 replicas and measure 200 warm invocations at the paper's
//! // short (3 s) inter-arrival time.
//! let outcome = Experiment::new(test_provider())
//!     .functions(StaticConfig {
//!         functions: vec![StaticFunction::python_zip("warm-probe").with_replicas(4)],
//!     })
//!     .workload(RuntimeConfig::single(IatSpec::short(), 200))
//!     .seed(42)
//!     .run()
//!     .unwrap();
//! println!("median = {:.1} ms, TMR = {:.2}", outcome.summary.median, outcome.summary.tmr);
//! ```

pub mod breakdown;
pub mod client;
pub mod config;
pub mod deployer;
pub mod experiment;
mod policy_driver;
pub mod protocols;
pub mod runner;
pub mod traceio;
pub mod visualize;

pub use breakdown::{BreakdownAnalysis, Component};
pub use client::{run_workload, ClientError, RunResult};
pub use config::{ChainConfig, IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
pub use deployer::{deploy, Deployment, Endpoint};
pub use experiment::{Experiment, ExperimentError, Outcome};
pub use runner::{
    CellRow, CellStats, PolicyCellStats, Scenario, SweepGrid, SweepReport, SweepRunner,
};
