//! # stellar-bench — the reproduction harness
//!
//! For every table and figure in the paper's evaluation, this crate holds
//! the code that regenerates it against the simulated providers: workload
//! construction, parameter sweeps, measurement and paper-vs-measured
//! rendering.
//!
//! Run the full reproduction with:
//!
//! ```bash
//! cargo run --release -p stellar-bench --bin reproduce
//! ```
//!
//! or a single artifact, e.g. `--bin fig8`. Criterion benches covering the
//! same experiments live under `benches/`.

pub mod experiments;
pub mod report;

use providers::profiles::{aws_like, azure_like, google_like};
use report::Report;
use stellar_core::config::{IatSpec, RuntimeConfig};
use stellar_core::runner::{Scenario, SweepGrid};

/// Runs every experiment at the given sample count and returns the
/// reports in paper order. `samples = 3000` matches the paper; smaller
/// values trade fidelity for speed.
pub fn run_all(samples: u32) -> Vec<Report> {
    vec![
        experiments::fig3::measure(samples).report(),
        experiments::fig4::measure(samples).report(),
        experiments::fig5::measure(samples).report(),
        experiments::fig6::measure(samples).report(),
        experiments::fig7::measure(samples).report(),
        experiments::fig8::measure(samples).report(),
        experiments::fig9::measure(samples).report(),
        experiments::table1::measure(samples).report(),
        experiments::fig10::measure(experiments::fig10::TRACE_FUNCTIONS).report(),
        experiments::mmpp::measure(samples).report(),
    ]
}

/// The canonical sweep grid used by the `sim/sweep_grid` Criterion group
/// and the cross-thread determinism tests: every calibrated provider
/// crossed with `seeds` consecutive seeds, each cell a warm-invocation
/// workload of `samples` requests at the paper's short IAT.
pub fn provider_seed_grid(samples: u32, seeds: u64) -> SweepGrid {
    let workload = RuntimeConfig::single(IatSpec::short(), samples);
    let scenarios = [aws_like(), google_like(), azure_like()]
        .into_iter()
        .map(|cfg| Scenario::new(cfg.name.clone(), cfg).workload(workload.clone()))
        .collect();
    SweepGrid::new(scenarios, (0..seeds).collect())
}

#[cfg(test)]
mod tests {
    /// Smoke: the full reproduction path runs end to end at a tiny sample
    /// count and yields all ten report sections in paper order.
    #[test]
    fn run_all_produces_every_artifact() {
        let reports = super::run_all(60);
        let ids: Vec<&str> = reports.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec!["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "fig10", "mmpp"]
        );
        for report in &reports {
            assert!(!report.body.is_empty(), "{} has an empty body", report.id);
        }
    }

    #[test]
    fn provider_seed_grid_covers_all_providers() {
        let grid = super::provider_seed_grid(20, 4);
        assert_eq!(grid.len(), 12);
        let labels: Vec<&str> = grid.scenarios.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["aws-like", "google-like", "azure-like"]);
    }
}
