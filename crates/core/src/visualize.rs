//! Measurement visualisation: CDFs, percentile series and CSV export.
//!
//! STeLLAR ships plotting utilities that render latency measurements as
//! CDFs or percentile-vs-parameter curves (§IV). This module produces the
//! text/CSV equivalents used by the benchmark harness and recorded in
//! `EXPERIMENTS.md`.

use stats::cdf::Cdf;
use stats::summary::Summary;
use stats::table::{fmt_latency, fmt_ratio, TextTable};

/// Renders a latency CDF as ASCII art with headline stats underneath.
///
/// # Panics
///
/// Panics if `latencies_ms` is empty.
pub fn render_cdf(title: &str, latencies_ms: &[f64]) -> String {
    let cdf = Cdf::from_samples(latencies_ms);
    let summary = Summary::from_samples(latencies_ms);
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&cdf.render_ascii(64, 12, true));
    out.push_str(&format!(
        "median {} ms | p99 {} ms | TMR {}\n",
        fmt_latency(summary.median),
        fmt_latency(summary.tail),
        fmt_ratio(summary.tmr),
    ));
    out
}

/// One labelled latency series (e.g. one provider, one burst size).
#[derive(Debug, Clone)]
pub struct Series {
    /// Label shown in tables ("aws", "burst=100", …).
    pub label: String,
    /// Latency samples, ms.
    pub samples: Vec<f64>,
}

impl Series {
    /// Creates a labelled series.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn new<S: Into<String>>(label: S, samples: Vec<f64>) -> Series {
        assert!(!samples.is_empty(), "series needs samples");
        Series { label: label.into(), samples }
    }

    /// Summary statistics of this series.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.samples)
    }
}

/// Renders a median/p99/TMR comparison table across several series.
pub fn render_comparison(series: &[Series]) -> String {
    let mut table = TextTable::new(vec!["series", "n", "median_ms", "p99_ms", "tmr", "mean_ms"]);
    for s in series {
        let sum = s.summary();
        table.row(vec![
            s.label.clone(),
            sum.count.to_string(),
            fmt_latency(sum.median),
            fmt_latency(sum.tail),
            fmt_ratio(sum.tmr),
            fmt_latency(sum.mean),
        ]);
    }
    table.render()
}

/// Exports series as CSV: one row per (series, quantile) pair, with
/// `points` quantiles per series — the format the paper's CDF figures plot.
pub fn export_cdf_csv(series: &[Series], points: usize) -> String {
    let mut out = String::from("series,quantile,latency_ms\n");
    for s in series {
        let cdf = Cdf::from_samples(&s.samples);
        for (value, q) in cdf.points(points) {
            out.push_str(&format!("{},{q:.4},{value:.3}\n", s.label));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_render_contains_stats() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let art = render_cdf("warm", &xs);
        assert!(art.contains("== warm =="));
        assert!(art.contains("median"));
        assert!(art.contains("TMR"));
    }

    #[test]
    fn comparison_table_lists_all_series() {
        let series = vec![
            Series::new("aws", vec![1.0, 2.0, 3.0]),
            Series::new("google", vec![4.0, 5.0, 6.0]),
        ];
        let table = render_comparison(&series);
        assert!(table.contains("aws"));
        assert!(table.contains("google"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn csv_has_expected_rows() {
        let series = vec![Series::new("s", (1..=50).map(f64::from).collect())];
        let csv = export_cdf_csv(&series, 11);
        // Header + 11 quantile rows.
        assert_eq!(csv.lines().count(), 12);
        assert!(csv.starts_with("series,quantile,latency_ms"));
        assert!(csv.contains("s,0.0000,1.000"));
        assert!(csv.contains("s,1.0000,50.000"));
    }

    #[test]
    #[should_panic(expected = "series needs samples")]
    fn empty_series_panics() {
        Series::new("x", vec![]);
    }
}
