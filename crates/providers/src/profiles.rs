//! Calibrated provider profiles.
//!
//! Each profile encodes the *mechanisms* the paper attributes to a
//! provider (scheduling policy, image caching, spawn pacing, dispatch
//! behaviour, fetch/boot overlap) and base latency distributions calibrated
//! so that the full simulated pipeline lands on the paper's reported
//! medians and tails (see [`crate::paper`]). Derivations live next to each
//! constant; the calibration tests in `tests/calibration.rs` hold the
//! profiles to tolerance bands.

use faas_sim::config::{
    ChunkModel, ColdStartConfig, DispatchConfig, ImageCacheConfig, ImageStoreConfig,
    KeepAliveConfig, LimitsConfig, NetworkConfig, PathShares, PayloadStoreConfig, ProviderConfig,
    RuntimeModel, RuntimeTable, ScalePolicy, ScalingConfig, WarmPathConfig,
};
use simkit::dist::Dist;

use crate::paper::ProviderKind;

/// Returns the calibrated configuration for `kind`.
pub fn config_for(kind: ProviderKind) -> ProviderConfig {
    match kind {
        ProviderKind::Aws => aws_like(),
        ProviderKind::Google => google_like(),
        ProviderKind::Azure => azure_like(),
    }
}

/// AWS Lambda analogue.
///
/// Mechanisms: per-request scheduling (no queuing at instances, §VI-D2),
/// fixed 10-minute keep-alive (§V fn.5), storage-side image cache that
/// stays warm across long-IAT bursts (§VI-D2: bursts *faster* than
/// individual colds), fast spawn pacing, moderate burst dispatch with a
/// small idle-lookup miss rate producing cold tails inside warm bursts.
pub fn aws_like() -> ProviderConfig {
    ProviderConfig {
        name: "aws-like".to_string(),
        network: NetworkConfig {
            // 26 ms ping RTT => 13 ms one way, low jitter.
            prop_delay_ms: Dist::Normal { mean: 13.0, std: 0.6 },
            // §VI-C1: ~264 Mb/s effective inline bandwidth => ~33 MB/s; the
            // 1 KB floor comes from the per-request overhead, not bandwidth.
            inline_bandwidth_mbps: Dist::lognormal_median_p99(30.0, 52.0).shifted(4.0),
            max_inline_payload: 6_000_000, // 6 MB request cap
        },
        warm_path: WarmPathConfig {
            // Internal warm target: median 18, p99 74 (minus ~0.6 ms
            // dispatch service).
            overhead_ms: Dist::lognormal_median_p99(17.4, 72.0),
            // ~60% of the path sits between front-end entry and the
            // payload landing in the instance — calibrated so a 1 KB
            // inline transfer costs ~11 ms (§VI-C1).
            shares: PathShares {
                frontend: 0.15,
                routing: 0.10,
                steer: 0.12,
                handling: 0.23,
                response: 0.40,
            },
        },
        dispatch: DispatchConfig {
            // Burst-100 median ≈ 2× warm base (Table I "Bursty warm" MR 2):
            // +44 ms at position 50 => ~0.8 ms per request.
            service_ms: Dist::lognormal_median_p99(0.6, 2.0),
            degradation_per_100_backlog: 0.12,
            // ~1.8% idle-lookup misses put burst p99 into cold territory
            // (Table I "Bursty warm" TR 11).
            miss_prob: 0.018,
        },
        scaling: ScalingConfig {
            policy: ScalePolicy::PerRequest,
            decision_ms: Dist::lognormal_median_p99(25.0, 55.0),
            spawn_rate_per_sec: 500.0,
            spawn_burst: 50.0,
            adaptive_spawn_threshold: 0,
            adaptive_spawn_mult: 1.0,
        },
        cold_start: ColdStartConfig {
            // Firecracker microVM boot.
            sandbox_boot_ms: Dist::lognormal_median_p99(120.0, 210.0),
            handler_init_ms: Dist::lognormal_median_p99(40.0, 90.0),
            fetch_overlaps_boot: false,
            boot_failure_prob: 0.0,
        },
        runtimes: RuntimeTable {
            python3: RuntimeModel {
                // §VI-B3: ZIP CDFs for Go and Python nearly overlap — the
                // warm generic instance pool hides interpreter startup.
                init_ms: Dist::lognormal_median_p99(35.0, 85.0),
                base_image_mb: 15.0,
                // Container deployment splinters the image; Python's lazy
                // imports trigger many chunk fetches with a slow mode
                // (median 612, p99 2882; TMR 4.7).
                container_chunks: Some(ChunkModel {
                    count_lo: 4,
                    count_hi: 8,
                    chunk_latency_ms: Dist::bimodal(
                        Dist::lognormal_median_p99(27.0, 80.0),
                        Dist::lognormal_median_p99(400.0, 2600.0),
                        0.10,
                    ),
                }),
            },
            go: RuntimeModel {
                init_ms: Dist::lognormal_median_p99(8.0, 20.0),
                base_image_mb: 2.0,
                // A static binary: container ≈ ZIP with an occasional
                // extra chunk fetch (TMR 2.4 vs 1.5).
                container_chunks: Some(ChunkModel {
                    count_lo: 1,
                    count_hi: 2,
                    chunk_latency_ms: Dist::bimodal(
                        Dist::lognormal_median_p99(12.0, 40.0),
                        Dist::lognormal_median_p99(250.0, 1200.0),
                        0.08,
                    ),
                }),
            },
        },
        image_store: ImageStoreConfig {
            // Python-ZIP cold median 448: 25 decision + 90 sandbox +
            // (60 base + 15 MB at 100 MB/s = 210) fetch + 35 runtime +
            // 24 handler ≈ 404 internal + 44 warm path.
            base_latency_ms: Dist::lognormal_median_p99(60.0, 140.0),
            // Fig 4: +90 MB adds ~0.9 s to the median => ~100 MB/s.
            bandwidth_mbps: Dist::lognormal_median_p99(100.0, 160.0).shifted(20.0),
            cache: ImageCacheConfig {
                // §VI-D2: long-IAT bursts run ~1.8× faster than single
                // colds — a storage-side cache outliving the 10–15 min IAT.
                enabled: true,
                // Admission needs a handful of fetches within the window:
                // single 15-min-IAT colds never warm it, bursts do.
                warm_min_recent: 8,
                warm_ttl_s: 1500.0,
                warm_latency_mult: 0.2,
                warm_bandwidth_mult: 10.0,
                adaptive_threshold: 0,
                adaptive_bandwidth_mult: 1.0,
                contention_parallelism: 0.0,
            },
        },
        payload_store: PayloadStoreConfig {
            // 1 MB storage transfer: 2×(base + 1 MB/240 MB/s) + warm
            // invoke ≈ 111 ms median; slow mode lifts p99 to ~1.2 s
            // (TMR 10.6). ≥100 MB: 2×(size/240) => ~960 Mb/s effective.
            put_base_ms: storage_base(42.0, 110.0, 650.0, 3200.0, 0.022),
            get_base_ms: storage_base(38.0, 100.0, 650.0, 3200.0, 0.022),
            bandwidth_mbps: Dist::lognormal_median_p99(240.0, 380.0).shifted(40.0),
        },
        keepalive: KeepAliveConfig {
            // §V fn.5: AWS always reaps after 10 minutes idle.
            idle_timeout_ms: Dist::constant(600_000.0),
        },
        limits: LimitsConfig { max_instances_per_function: 5_000, full_speed_memory_mb: 2048 },
    }
}

/// Google Cloud Functions analogue.
///
/// Mechanisms: Knative-style target-concurrency scaling (≤4 requests may
/// queue at an instance, §VI-D3), gVisor sandbox whose boot *overlaps* the
/// image fetch (image-size insensitivity, §VI-B2), spawn pacing that
/// dominates cold bursts with an adaptive boost beyond ~100 pending spawns
/// (burst-500 faster than burst-300, §VI-D2).
pub fn google_like() -> ProviderConfig {
    ProviderConfig {
        name: "google-like".to_string(),
        network: NetworkConfig {
            prop_delay_ms: Dist::Normal { mean: 7.0, std: 0.4 },
            // §VI-C1: ~152 Mb/s => ~19 MB/s inline.
            inline_bandwidth_mbps: Dist::lognormal_median_p99(20.0, 33.0).shifted(2.0),
            max_inline_payload: 10_000_000, // 10 MB request cap
        },
        warm_path: WarmPathConfig {
            // Internal warm target: median 17, p99 47.
            overhead_ms: Dist::lognormal_median_p99(16.8, 45.5),
            // ~40% of the path precedes the payload reaching the
            // instance: a 1 KB inline transfer costs ~7 ms (§VI-C1).
            shares: PathShares {
                frontend: 0.10,
                routing: 0.08,
                steer: 0.07,
                handling: 0.15,
                response: 0.60,
            },
        },
        dispatch: DispatchConfig {
            // Google shows the least burst-size sensitivity (§VI-D1).
            service_ms: Dist::lognormal_median_p99(0.2, 0.6),
            degradation_per_100_backlog: 0.0,
            miss_prob: 0.004,
        },
        scaling: ScalingConfig {
            policy: ScalePolicy::TargetConcurrency { target: 4.0 },
            decision_ms: Dist::lognormal_median_p99(40.0, 90.0),
            // Cold bursts: median(burst 100) ≈ 1818 ms vs 870 single =>
            // ~18 instance spawns per second sustained.
            spawn_rate_per_sec: 14.0,
            spawn_burst: 2.0,
            // Burst 500 *improves* over burst 300: batch provisioning
            // beyond ~100 pending spawns.
            adaptive_spawn_threshold: 100,
            adaptive_spawn_mult: 5.0,
        },
        cold_start: ColdStartConfig {
            // gVisor boot; fetch overlaps it (Fig 4 insensitivity).
            sandbox_boot_ms: Dist::lognormal_median_p99(400.0, 860.0),
            handler_init_ms: Dist::lognormal_median_p99(60.0, 140.0),
            fetch_overlaps_boot: true,
            boot_failure_prob: 0.0,
        },
        runtimes: RuntimeTable {
            python3: RuntimeModel {
                // Cold median 870 = 40 decision + max(450 boot, fetch) +
                // 280 python + 70 handler + 31 warm path.
                init_ms: Dist::lognormal_median_p99(280.0, 620.0),
                base_image_mb: 15.0,
                container_chunks: None, // no container deployment offered
            },
            go: RuntimeModel {
                init_ms: Dist::lognormal_median_p99(30.0, 65.0),
                base_image_mb: 2.0,
                container_chunks: None,
            },
        },
        image_store: ImageStoreConfig {
            // Rare slow fetches escape the boot overlap and set the cold
            // tail (Fig 4 dashed curves; cold TMR 1.8).
            base_latency_ms: Dist::bimodal(
                Dist::lognormal_median_p99(60.0, 150.0),
                Dist::lognormal_median_p99(1200.0, 2400.0),
                0.015,
            ),
            // High fetch bandwidth: even +100 MB stays hidden behind the
            // boot (Fig 4: near-identical CDFs).
            bandwidth_mbps: Dist::lognormal_median_p99(400.0, 640.0).shifted(60.0),
            cache: ImageCacheConfig::none(),
        },
        payload_store: PayloadStoreConfig {
            // 1 MB: 2×(base + 1/102 MB/s) + invoke ≈ 155 ms; deep slow
            // mode drives TMR 37 (p99 5.8 s). ≥100 MB: ~408 Mb/s.
            put_base_ms: storage_base(62.0, 160.0, 4500.0, 13_000.0, 0.018),
            get_base_ms: storage_base(55.0, 150.0, 4500.0, 13_000.0, 0.018),
            bandwidth_mbps: Dist::lognormal_median_p99(102.0, 170.0).shifted(18.0),
        },
        keepalive: KeepAliveConfig {
            // Stochastic reaping: ~90% of instances are gone by 15 min.
            idle_timeout_ms: Dist::Uniform { lo: 360_000.0, hi: 960_000.0 },
        },
        limits: LimitsConfig { max_instances_per_function: 5_000, full_speed_memory_mb: 2048 },
    }
}

/// Azure Functions analogue.
///
/// Mechanisms: containers on regular VMs (slowest cold starts), a periodic
/// scale controller that lets requests queue deeply at instances
/// (§VI-D3: >30% of a burst on one instance), heavily degrading burst
/// dispatch (§VI-D1: 33×/98× at burst 500), image fetch bandwidth ~46 MB/s
/// (Fig 4: strongest size sensitivity).
pub fn azure_like() -> ProviderConfig {
    ProviderConfig {
        name: "azure-like".to_string(),
        network: NetworkConfig {
            prop_delay_ms: Dist::Normal { mean: 16.0, std: 0.8 },
            // Paper measures no Azure chain experiments (no Go runtime);
            // model a mid-range inline bandwidth anyway.
            inline_bandwidth_mbps: Dist::lognormal_median_p99(25.0, 42.0).shifted(3.0),
            max_inline_payload: 8_000_000,
        },
        warm_path: WarmPathConfig {
            // Internal warm target: median 25, p99 75 (≈4 ms of which is
            // dispatch service).
            overhead_ms: Dist::lognormal_median_p99(21.0, 66.0),
            // Azure's in-instance handling dominates (deep queuing makes
            // per-request occupancy the long-burst bottleneck, §VI-D2).
            shares: PathShares {
                frontend: 0.10,
                routing: 0.05,
                steer: 0.15,
                handling: 0.50,
                response: 0.20,
            },
        },
        dispatch: DispatchConfig {
            // Fitted to §VI-D1: burst-100 median ≈ 5× base, burst-500
            // ≈ 33× with p99 ≈ 98× — a serial dispatcher whose per-request
            // cost grows ~0.74× per 100 backlog.
            service_ms: Dist::lognormal_median_p99(3.8, 9.0),
            degradation_per_100_backlog: 0.74,
            miss_prob: 0.02,
        },
        scaling: ScalingConfig {
            // Scale controller: +1 instance every 7 s while backlogged
            // (Fig 9: >30% of a 100-burst served by one instance).
            policy: ScalePolicy::Periodic { interval_ms: 7_000.0, step: 1 },
            decision_ms: Dist::lognormal_median_p99(100.0, 350.0),
            spawn_rate_per_sec: 60.0,
            spawn_burst: 4.0,
            adaptive_spawn_threshold: 0,
            adaptive_spawn_mult: 1.0,
        },
        cold_start: ColdStartConfig {
            // Containers atop regular VMs.
            sandbox_boot_ms: Dist::lognormal_median_p99(550.0, 2600.0),
            handler_init_ms: Dist::lognormal_median_p99(200.0, 900.0),
            fetch_overlaps_boot: false,
            boot_failure_prob: 0.0,
        },
        runtimes: RuntimeTable {
            python3: RuntimeModel {
                init_ms: Dist::lognormal_median_p99(68.0, 150.0),
                base_image_mb: 15.0,
                container_chunks: None, // paper studies containers on AWS only
            },
            go: RuntimeModel {
                // §VI-C fn.6: Azure had no Go runtime; modelled anyway so
                // the harness can run symmetric sweeps.
                init_ms: Dist::lognormal_median_p99(30.0, 70.0),
                base_image_mb: 2.0,
                container_chunks: None,
            },
        },
        image_store: ImageStoreConfig {
            base_latency_ms: Dist::lognormal_median_p99(100.0, 400.0),
            // Fig 4: (3363-1401) ms per 90 MB => ~46 MB/s.
            bandwidth_mbps: Dist::lognormal_median_p99(40.0, 90.0).shifted(6.0),
            cache: ImageCacheConfig::none(),
        },
        payload_store: PayloadStoreConfig {
            // Not measured by the paper (no Go); plausible mid-range.
            put_base_ms: storage_base(60.0, 150.0, 1500.0, 6000.0, 0.02),
            get_base_ms: storage_base(55.0, 140.0, 1500.0, 6000.0, 0.02),
            bandwidth_mbps: Dist::lognormal_median_p99(120.0, 200.0).shifted(20.0),
        },
        keepalive: KeepAliveConfig {
            // ~85% of instances reaped by 15 min ("over 50%", §V).
            idle_timeout_ms: Dist::Uniform { lo: 240_000.0, hi: 1_020_000.0 },
        },
        limits: LimitsConfig { max_instances_per_function: 5_000, full_speed_memory_mb: 1536 },
    }
}

/// Cost-optimised storage base latency: a fast log-normal mode plus a rare
/// slow mode (the paper's §VI-C2 tail source).
fn storage_base(
    fast_median: f64,
    fast_p99: f64,
    slow_median: f64,
    slow_p99: f64,
    p_slow: f64,
) -> Dist {
    Dist::bimodal(
        Dist::lognormal_median_p99(fast_median, fast_p99),
        Dist::lognormal_median_p99(slow_median, slow_p99),
        p_slow,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for kind in ProviderKind::ALL {
            config_for(kind).validate().expect("profile must validate");
        }
    }

    #[test]
    fn profiles_have_expected_policies() {
        assert!(matches!(aws_like().scaling.policy, ScalePolicy::PerRequest));
        assert!(matches!(google_like().scaling.policy, ScalePolicy::TargetConcurrency { .. }));
        assert!(matches!(azure_like().scaling.policy, ScalePolicy::Periodic { .. }));
    }

    #[test]
    fn google_overlaps_fetch_aws_azure_do_not() {
        assert!(google_like().cold_start.fetch_overlaps_boot);
        assert!(!aws_like().cold_start.fetch_overlaps_boot);
        assert!(!azure_like().cold_start.fetch_overlaps_boot);
    }

    #[test]
    fn only_aws_caches_images() {
        assert!(aws_like().image_store.cache.enabled);
        assert!(!google_like().image_store.cache.enabled);
        assert!(!azure_like().image_store.cache.enabled);
    }

    #[test]
    fn aws_keepalive_is_fixed_ten_minutes() {
        let ka = aws_like().keepalive.idle_timeout_ms;
        assert_eq!(ka, Dist::constant(600_000.0));
    }

    #[test]
    fn warm_overhead_medians_track_paper() {
        use crate::paper::warm_internal_ms;
        for kind in ProviderKind::ALL {
            let cfg = config_for(kind);
            let (target_median, _) = warm_internal_ms(kind);
            let overhead = cfg.warm_path.overhead_ms.median_exact().unwrap();
            let dispatch = cfg.dispatch.service_ms.median_exact().unwrap();
            let total = overhead + dispatch;
            assert!(
                (total - target_median).abs() / target_median < 0.05,
                "{kind}: modelled {total:.1} vs paper {target_median}"
            );
        }
    }

    #[test]
    fn serde_round_trip_all_profiles() {
        for kind in ProviderKind::ALL {
            let cfg = config_for(kind);
            let json = serde_json::to_string(&cfg).unwrap();
            let back: ProviderConfig = serde_json::from_str(&json).unwrap();
            // Float text round-trips can differ in the last ulp; compare
            // the canonical re-serialisation instead of the structs.
            assert_eq!(json, serde_json::to_string(&back).unwrap(), "{kind}");
        }
    }
}
