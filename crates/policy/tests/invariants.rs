//! Property-based invariants of the policy machines, driven over random
//! composites and adversarial event schedules:
//!
//! * no machine launches after a deadline abandon or after the win — a
//!   cancelled or settled logical request stays dead;
//! * total physical attempts never exceed the composition's cap;
//! * armed wake-ups are never in the past;
//! * retry backoff is monotone non-decreasing across retries for every
//!   jitter realization, and jitter stays within its configured band;
//! * composition preserves all of the above for every part mix.

use policy::machine::{Action, Actions, PolicyEvent, Retry};
use policy::{PolicyMachine, PolicySpec, ThresholdSpec};
use proptest::prelude::*;

/// One random policy part with a spec that always validates: static
/// hedge thresholds (one online quantile per composition is a spec
/// rule, and quantile warmup is the driver's job, not the machine's)
/// and retry factors satisfying `factor >= 1 + jitter_frac`.
fn part_strategy() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        (10.0f64..500.0, 1u32..=3).prop_map(|(ms, max_hedges)| PolicySpec::Hedge {
            threshold: ThresholdSpec::Static { ms },
            max_hedges,
        }),
        ((50.0f64..500.0, 5.0f64..100.0), (0.0f64..0.4, 0.5f64..2.0, 1u32..=3)).prop_map(
            |((timeout_ms, base_backoff_ms), (jitter_frac, extra, max_retries))| {
                PolicySpec::Retry {
                    timeout_ms,
                    base_backoff_ms,
                    factor: 1.0 + jitter_frac + extra,
                    jitter_frac,
                    max_retries,
                }
            }
        ),
        (100.0f64..2_000.0).prop_map(|deadline_ms| PolicySpec::Deadline { deadline_ms }),
        (2u32..=4).prop_map(|copies| PolicySpec::Tied { copies }),
    ]
}

fn compose_strategy() -> impl Strategy<Value = PolicySpec> {
    prop::collection::vec(part_strategy(), 1..4).prop_map(|parts| PolicySpec::Compose { parts })
}

proptest! {
    /// Drives a random composite through a harness-shaped schedule
    /// (wakes delivered at armed times, the winner completing at a
    /// random point, stray extra wakes after settlement) and checks the
    /// global machine invariants on every emitted action.
    #[test]
    fn composite_invariants_hold_over_random_schedules(
        spec in compose_strategy(),
        win_at in 1.0f64..4_000.0,
        estimate in prop_oneof![Just(f64::NAN), 20.0f64..400.0],
        jitters in prop::collection::vec(0.0f64..1.0, 64..65),
    ) {
        prop_assert!(spec.validate().is_ok(), "generated specs always validate");
        let mut machine = spec.build();
        let cap = machine.attempt_cap();

        let mut out = Actions::new();
        let mut armed: Vec<f64> = Vec::new();
        let mut launched = 1u32; // the harness's primary attempt
        let mut abandoned = false;
        let mut won = false;
        let mut now = 0.0f64;

        let check = |actions: &Actions,
                         now: f64,
                         armed: &mut Vec<f64>,
                         launched: &mut u32,
                         abandoned: &mut bool,
                         won: bool|
         -> Result<(), TestCaseError> {
            for &action in actions.as_slice() {
                match action {
                    Action::Arm { at_ms } => {
                        prop_assert!(
                            at_ms >= now,
                            "armed a wake in the past: {at_ms} < {now}"
                        );
                        armed.push(at_ms);
                    }
                    Action::Launch => {
                        prop_assert!(!*abandoned, "launch after abandon at t={now}");
                        prop_assert!(!won, "launch after the win at t={now}");
                        *launched += 1;
                        prop_assert!(
                            *launched <= cap,
                            "attempts {} exceed cap {cap}",
                            *launched
                        );
                    }
                    Action::Abandon => *abandoned = true,
                    Action::CancelOutstanding => {}
                }
            }
            Ok(())
        };

        machine.reset();
        out.clear();
        machine.on_event(PolicyEvent::Issued { now_ms: 0.0, estimate_ms: estimate }, &mut out);
        check(&out, now, &mut armed, &mut launched, &mut abandoned, won)?;

        // Deliver wakes in time order; the winner's Done interleaves at
        // `win_at` unless a deadline abandoned the request first. Keep
        // delivering stray wakes after settlement — a settled machine
        // must stay quiet, not merely be spared further events.
        for jitter in jitters {
            armed.sort_by(f64::total_cmp);
            armed.dedup();
            let next_wake = armed.first().copied();
            let next = match (next_wake, won || abandoned) {
                (Some(w), false) => w.min(win_at),
                (Some(w), true) => w,
                (None, false) => win_at,
                (None, true) => break,
            };
            prop_assert!(next >= now, "schedule moved backwards");
            now = next;
            if !won && !abandoned && win_at <= next {
                out.clear();
                machine.on_event(PolicyEvent::Done { now_ms: now, first: true }, &mut out);
                check(&out, now, &mut armed, &mut launched, &mut abandoned, true)?;
                won = true;
                continue;
            }
            armed.retain(|&t| t > now);
            out.clear();
            machine.on_event(PolicyEvent::Wake { now_ms: now, jitter }, &mut out);
            check(&out, now, &mut armed, &mut launched, &mut abandoned, won)?;
        }

        // The machine must be reusable for the next logical request.
        machine.reset();
        out.clear();
        machine.on_event(PolicyEvent::Issued { now_ms: 10_000.0, estimate_ms: estimate }, &mut out);
        for &action in out.as_slice() {
            if let Action::Arm { at_ms } = action {
                prop_assert!(at_ms >= 10_000.0, "stale state survived reset: {at_ms}");
            }
            prop_assert!(!matches!(action, Action::Abandon), "abandon leaked across reset");
        }
    }

    /// Realized retry backoff is monotone non-decreasing across retry
    /// indices for *any* pair of jitter draws, and each draw stays
    /// within `[base * factor^k, base * factor^k * (1 + jitter_frac)]`.
    #[test]
    fn retry_backoff_is_monotone_with_bounded_jitter(
        base in 1.0f64..200.0,
        jitter_frac in 0.0f64..0.9,
        extra in 0.0f64..3.0,
        k in 0u32..8,
        j1 in 0.0f64..1.0,
        j2 in 0.0f64..1.0,
    ) {
        let factor = 1.0 + jitter_frac + extra; // the spec-validated regime
        let retry = Retry::new(1_000.0, base, factor, jitter_frac, 8);
        let lo = base * factor.powi(k as i32);
        let b1 = retry.backoff_ms(k, j1);
        prop_assert!(b1 >= lo - 1e-9, "backoff {b1} below floor {lo}");
        prop_assert!(
            b1 <= lo * (1.0 + jitter_frac) + 1e-9,
            "backoff {b1} above jitter ceiling"
        );
        let b2 = retry.backoff_ms(k + 1, j2);
        prop_assert!(
            b2 >= b1 - 1e-9,
            "backoff not monotone: step {k} gave {b1}, step {} gave {b2}",
            k + 1
        );
    }

    /// The serde grammar round-trips every generated composite.
    #[test]
    fn specs_roundtrip_json(spec in compose_strategy()) {
        let json = spec.to_json();
        let back = PolicySpec::from_json(&json).expect("validated spec re-parses");
        prop_assert_eq!(spec, back);
    }
}
