//! Retry storms and metastable failure under a capacity outage — the
//! robustness analogue of the hedging frontier. A keepalive purge at
//! t = 30 s empties the warm pool while a capacity outage holds every
//! replacement boot until t = 60 s: demand keeps arriving, nothing can
//! serve it, and what happens next depends entirely on the client's
//! retry discipline. A naive retry loop (tight timeout, no backoff)
//! re-issues every stuck request over and over, multiplying the offered
//! load exactly when capacity is zero — the retry-storm ingredient of a
//! metastable failure. Exponential backoff spreads those re-issues past
//! the window; cloud-side load shedding (admission control) caps the
//! backlog instead, failing the excess fast and keeping the queue — and
//! the recovery — bounded at the cost of availability. The artifact runs
//! the outage under both a Poisson stream and the rate-matched MMPP burst
//! train and reports retry amplification, goodput and the tail for each
//! discipline; BENCH_5.json pins the headline inequality (naive
//! amplification ≥ backoff amplification).

use faults::FaultSpec;
use policy::PolicySpec;
use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::{Experiment, Outcome};

use crate::experiments::mmpp::Shape;
use crate::report::{Report, BASE_SEED};

/// Function execution time, ms — matched to the MMPP amplification
/// experiment so the burst regime carries over.
pub const EXEC_MS: f64 = 100.0;

/// Outage window start, ms: late enough that the warm pool and the
/// retry machines' latency views are in steady state.
pub const OUTAGE_START_MS: f64 = 30_000.0;

/// Outage window length, ms: ~60 stuck arrivals at the 2 req/s mean
/// rate covering ~3 MMPP burst cycles, long enough for a tight retry loop to exhaust its budget many
/// requests over.
pub const OUTAGE_MS: f64 = 30_000.0;

/// Admission-control queue limit for the shedding arm.
pub const SHED_LIMIT: u32 = 32;

/// Retry budget shared by every retrying arm, so the arms differ only
/// in *when* they re-issue, never in how many times they may.
pub const MAX_RETRIES: u32 = 4;

/// The fault schedule every arm faces: a keepalive purge storm from the
/// outage onset (the warm pool dies and keeps dying) under a capacity
/// outage (no replacement boots until the window closes).
fn outage() -> FaultSpec {
    FaultSpec::Compose {
        parts: vec![
            FaultSpec::PurgeStorm { mean_gap_ms: 5_000.0, start_ms: OUTAGE_START_MS },
            FaultSpec::Outage { start_ms: OUTAGE_START_MS, duration_ms: OUTAGE_MS },
        ],
    }
}

/// The mitigation axis: what the client (and the cloud) does about
/// requests stuck in the outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// No retries: stuck requests wait the outage out. The impact
    /// baseline.
    None,
    /// Tight retry loop: 1 s timeout, no backoff. The storm.
    Naive,
    /// Same budget, exponential backoff (1 s base, ×3): re-issues spread
    /// past the window.
    Backoff,
    /// The naive client again, but the cloud sheds at
    /// [`SHED_LIMIT`] queued requests: graceful degradation.
    NaiveShed,
}

impl Mitigation {
    /// All arms, baseline first.
    pub const ALL: [Mitigation; 4] =
        [Mitigation::None, Mitigation::Naive, Mitigation::Backoff, Mitigation::NaiveShed];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::None => "no-retry",
            Mitigation::Naive => "retry-naive",
            Mitigation::Backoff => "retry-backoff",
            Mitigation::NaiveShed => "retry-naive+shed",
        }
    }

    /// The client-side policy, `None` for the impact baseline.
    pub fn policy(self) -> Option<PolicySpec> {
        let naive = PolicySpec::Retry {
            timeout_ms: 1_000.0,
            base_backoff_ms: 1.0,
            factor: 1.0,
            jitter_frac: 0.0,
            max_retries: MAX_RETRIES,
        };
        match self {
            Mitigation::None => None,
            Mitigation::Naive | Mitigation::NaiveShed => Some(naive),
            Mitigation::Backoff => Some(PolicySpec::Retry {
                timeout_ms: 1_000.0,
                base_backoff_ms: 1_000.0,
                factor: 3.0,
                jitter_frac: 0.0,
                max_retries: MAX_RETRIES,
            }),
        }
    }

    /// The fault schedule (the shedding arm adds admission control to
    /// the shared outage).
    pub fn faults(self) -> FaultSpec {
        match self {
            Mitigation::NaiveShed => FaultSpec::Compose {
                parts: vec![outage(), FaultSpec::Shed { queue_limit: SHED_LIMIT }],
            },
            _ => outage(),
        }
    }
}

/// Measured data: one outcome per (arrival shape, mitigation).
#[derive(Debug)]
pub struct MetastableStorm {
    /// The grid cells, shape-major, mitigation minor.
    pub cells: Vec<(Shape, Mitigation, Outcome)>,
}

fn run_cell(shape: Shape, mitigation: Mitigation, samples: u32) -> Outcome {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), samples);
    runtime.warmup_rounds = 5;
    runtime.exec_ms = EXEC_MS;
    let mut runtime = runtime.with_workload(shape.spec());
    runtime.policy = mitigation.policy();
    runtime.faults = Some(mitigation.faults());
    Experiment::new(config_for(ProviderKind::Aws))
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("storm")] })
        .workload(runtime)
        // Same seed across the mitigation axis: every arm faces the same
        // arrival train and the same fault schedule, so differences are
        // the mitigation's doing.
        .seed(BASE_SEED + 130 + shape as u64)
        .run()
        .expect("metastable storm run")
}

/// Runs the shape × mitigation grid in parallel.
pub fn measure(samples: u32) -> MetastableStorm {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = Shape::ALL
            .into_iter()
            .flat_map(|s| Mitigation::ALL.into_iter().map(move |m| (s, m)))
            .map(|(shape, mitigation)| {
                scope.spawn(move |_| (shape, mitigation, run_cell(shape, mitigation, samples)))
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    MetastableStorm { cells }
}

impl MetastableStorm {
    /// The outcome for one cell.
    pub fn cell(&self, shape: Shape, mitigation: Mitigation) -> Option<&Outcome> {
        self.cells.iter().find(|(s, m, _)| *s == shape && *m == mitigation).map(|(_, _, o)| o)
    }

    /// Retry amplification (attempts per logical request) for one cell;
    /// `None` for the no-retry baseline.
    pub fn amplification(&self, shape: Shape, mitigation: Mitigation) -> Option<f64> {
        self.cell(shape, mitigation)?
            .result
            .policy
            .as_ref()
            .map(policy::PolicyStats::retry_amplification)
    }

    /// Goodput (availability) for one cell.
    pub fn goodput(&self, shape: Shape, mitigation: Mitigation) -> Option<f64> {
        self.cell(shape, mitigation)?.result.faults.as_ref().map(faults::FaultStats::availability)
    }

    /// Renders the storm table plus per-shape headlines.
    pub fn report(&self) -> Report {
        let mut table = stats::table::TextTable::new(vec![
            "series",
            "p50_ms",
            "p99_ms",
            "p999_ms",
            "attempts/req",
            "goodput%",
            "shed",
            "failed",
            "purged",
            "deferred",
            "wasted_ms",
        ]);
        for (shape, mitigation, outcome) in &self.cells {
            let s = &outcome.summary;
            let p999 = outcome.result.latency_agg.clone().quantile(0.999);
            let amp = match &outcome.result.policy {
                Some(p) => format!("{:.3}", p.retry_amplification()),
                None => "-".into(),
            };
            let f = outcome.result.faults.as_ref().expect("every cell runs under faults");
            table.row(vec![
                format!("{} {}", shape.label(), mitigation.label()),
                stats::table::fmt_latency(s.median),
                stats::table::fmt_latency(s.tail),
                stats::table::fmt_latency(p999),
                amp,
                format!("{:.1}", f.availability() * 100.0),
                format!("{}", f.shed),
                format!("{}", f.failed),
                format!("{}", f.purged_instances),
                format!("{}", f.outage_deferrals),
                format!("{:.0}", f.wasted_busy_ms),
            ]);
        }
        let mut body = table.render();
        body.push('\n');
        for shape in Shape::ALL {
            if let (Some(naive), Some(backoff), Some(shed_g)) = (
                self.amplification(shape, Mitigation::Naive),
                self.amplification(shape, Mitigation::Backoff),
                self.goodput(shape, Mitigation::NaiveShed),
            ) {
                body.push_str(&format!(
                    "{}: naive retries offered {:.2}x the load of backoff ({:.3} vs {:.3} \
                     attempts/req) during the outage; shedding held goodput at {:.1}% with \
                     the queue capped at {}\n",
                    shape.label(),
                    naive / backoff,
                    naive,
                    backoff,
                    shed_g * 100.0,
                    SHED_LIMIT,
                ));
            }
        }
        Report {
            id: "metastable",
            title: "Retry storms under a capacity outage: amplification vs backoff and shedding",
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_storm_is_tamed_by_backoff_and_bounded_by_shedding() {
        let data = measure(600);
        assert_eq!(data.cells.len(), 2 * 4, "shape x mitigation grid");
        for shape in Shape::ALL {
            let base = data.cell(shape, Mitigation::None).unwrap();
            assert!(base.result.policy.is_none(), "baseline carries no policy stats");
            let f = base.result.faults.as_ref().expect("baseline runs under the outage");
            assert!(f.purged_instances > 0, "{shape:?}: the storm must reap the warm pool");
            assert!(f.outage_deferrals > 0, "{shape:?}: the outage must defer boots");

            // The storm: a tight retry loop re-issues stuck requests, a
            // backoff loop with the same budget re-issues fewer times.
            let naive = data.amplification(shape, Mitigation::Naive).unwrap();
            let backoff = data.amplification(shape, Mitigation::Backoff).unwrap();
            assert!(naive > 1.01, "{shape:?}: outage must trigger retries, amp {naive}");
            assert!(
                naive >= backoff,
                "{shape:?}: backoff must not out-amplify the naive loop ({naive} vs {backoff})"
            );

            // Graceful degradation: admission control sheds the excess
            // with explicit errors, trading availability for a bounded
            // backlog.
            let shed_cell = data.cell(shape, Mitigation::NaiveShed).unwrap();
            let fs = shed_cell.result.faults.as_ref().unwrap();
            assert!(fs.shed > 0, "{shape:?}: the naive storm must overrun the queue limit");
            let goodput = data.goodput(shape, Mitigation::NaiveShed).unwrap();
            assert!(goodput < 1.0, "{shape:?}: shedding costs availability, got {goodput}");
            assert!(goodput > 0.5, "{shape:?}: shedding must stay partial, got {goodput}");
        }
        let report = data.report().render();
        assert!(report.contains("retry-naive+shed"), "{report}");
        assert!(report.contains("attempts/req"), "{report}");
    }
}
