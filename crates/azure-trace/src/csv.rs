//! CSV load/store in the public trace's column layout.
//!
//! The genuine `function_durations_percentiles.anon.dN.csv` files use the
//! columns below; this module parses that layout (and writes it back), so
//! the Fig 10 analysis can run on the real artifact when available, and on
//! our synthetic traces otherwise.

use crate::record::FunctionDurationRecord;

/// The header of the public trace's duration table.
pub const HEADER: &str = "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,\
percentile_Average_0,percentile_Average_1,percentile_Average_25,percentile_Average_50,\
percentile_Average_75,percentile_Average_99,percentile_Average_100";

/// Parses a trace CSV document.
///
/// # Errors
///
/// Returns `(line_number, message)` for the first malformed line. The
/// header line is validated loosely (column count only) to tolerate the
/// minor naming differences across trace releases.
pub fn parse(text: &str) -> Result<Vec<FunctionDurationRecord>, (usize, String)> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or((0, "empty document".to_string()))?;
    let header_cols = header.split(',').count();
    if header_cols != 14 {
        return Err((1, format!("expected 14 columns, header has {header_cols}")));
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 14 {
            return Err((line_no, format!("expected 14 columns, got {}", cols.len())));
        }
        let num = |i: usize| -> Result<f64, (usize, String)> {
            cols[i].trim().parse::<f64>().map_err(|e| (line_no, format!("column {i}: {e}")))
        };
        let record = FunctionDurationRecord {
            owner: cols[0].trim().to_string(),
            app: cols[1].trim().to_string(),
            function: cols[2].trim().to_string(),
            average_ms: num(3)?,
            count: num(4)? as u64,
            p0: num(7)?.max(num(5)?.min(num(7)?)), // Minimum and p0 coincide
            p1: num(8)?,
            p25: num(9)?,
            p50: num(10)?,
            p75: num(11)?,
            p99: num(12)?,
            p100: num(13)?.max(num(6)?),
        };
        record.validate().map_err(|e| (line_no, e))?;
        records.push(record);
    }
    Ok(records)
}

/// Serialises records in the trace's CSV layout.
pub fn write(records: &[FunctionDurationRecord]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.owner,
            r.app,
            r.function,
            r.average_ms,
            r.count,
            r.p0,
            r.p100,
            r.p0,
            r.p1,
            r.p25,
            r.p50,
            r.p75,
            r.p99,
            r.p100
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FunctionDurationRecord {
        FunctionDurationRecord {
            owner: "o1".into(),
            app: "a1".into(),
            function: "f1".into(),
            count: 42,
            average_ms: 120.0,
            p0: 10.0,
            p1: 20.0,
            p25: 50.0,
            p50: 100.0,
            p75: 200.0,
            p99: 900.0,
            p100: 1500.0,
        }
    }

    #[test]
    fn round_trip() {
        let records = vec![sample()];
        let text = write(&records);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn rejects_short_rows() {
        let text = format!("{HEADER}\no,a,f,1,2\n");
        let err = parse(&text).unwrap_err();
        assert_eq!(err.0, 2);
        assert!(err.1.contains("columns"));
    }

    #[test]
    fn rejects_bad_numbers() {
        let mut text = write(&[sample()]);
        text = text.replace("120", "not-a-number");
        assert!(parse(&text).is_err());
    }

    #[test]
    fn rejects_invalid_records() {
        let mut r = sample();
        r.p75 = 1e9; // above p99 -> record invalid
        let text = write(&[r]);
        assert!(parse(&text).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let text = format!("{}\n", write(&[sample()]));
        assert_eq!(parse(&text).unwrap().len(), 1);
    }

    #[test]
    fn empty_document_is_an_error() {
        assert!(parse("").is_err());
    }
}
