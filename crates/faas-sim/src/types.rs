//! Identifier newtypes and small domain enums shared across the simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a deployed function within a [`crate::cloud::Cloud`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub(crate) u32);

impl FunctionId {
    /// Raw index (stable within one cloud instance).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a raw index — only for tests that need a
    /// dangling reference; real ids come from `CloudSim::deploy`.
    #[doc(hidden)]
    pub fn from_raw_for_tests(raw: u32) -> FunctionId {
        FunctionId(raw)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Identifies an instance of a particular function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId {
    pub(crate) function: FunctionId,
    pub(crate) idx: u32,
}

impl InstanceId {
    /// The function this instance belongs to.
    pub fn function(self) -> FunctionId {
        self.function
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.function, self.idx)
    }
}

/// Identifies one invocation request (external or internal).
///
/// Packs a slab *slot* (low 32 bits) and a *generation* (high 32 bits):
/// the cloud's request table recycles slots once a request completes, and
/// the generation distinguishes successive occupants of the same slot, so
/// a stale id can never silently alias a live request. Ids of requests
/// created before any slot reuse (generation 0) are numerically identical
/// to the pre-slab sequential ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub(crate) u64);

impl RequestId {
    pub(crate) fn new(slot: u32, generation: u32) -> RequestId {
        RequestId((u64::from(generation) << 32) | u64::from(slot))
    }

    /// Slab slot index (stable for the request's lifetime; reused after).
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    /// Slot generation; 0 until the slot is first recycled.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The packed `(generation << 32) | slot` value: unique across the
    /// cloud's lifetime, unlike [`RequestId::index`]. Span records key on
    /// this.
    pub fn packed(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "req{}", self.0)
        } else {
            write!(f, "req{}g{}", self.index(), self.generation())
        }
    }
}

/// Language runtime of a function (paper §VI-B3 studies one interpreted and
/// one compiled representative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Runtime {
    /// Interpreted runtime (CPython); modules import lazily.
    Python3,
    /// Compiled runtime (Go); ships a single static binary.
    Go,
}

impl Runtime {
    /// Whether the runtime loads code lazily at import time (drives the
    /// container chunk-fetch model, §VI-B3).
    pub fn is_interpreted(self) -> bool {
        matches!(self, Runtime::Python3)
    }
}

impl fmt::Display for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Runtime::Python3 => write!(f, "python3"),
            Runtime::Go => write!(f, "go"),
        }
    }
}

/// How the function image is packaged and deployed (paper §IV, §VI-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DeploymentMethod {
    /// ZIP archive of sources/binary; fetched in one storage read.
    Zip,
    /// Container image; supports splintered, on-demand chunk loading.
    Container,
}

impl fmt::Display for DeploymentMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentMethod::Zip => write!(f, "zip"),
            DeploymentMethod::Container => write!(f, "container"),
        }
    }
}

/// Transport used for payload transfers between chained functions
/// (paper §VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TransferMode {
    /// Payload embedded in the invocation request (size-capped).
    Inline,
    /// Payload written to / read from a storage service.
    Storage,
}

impl fmt::Display for TransferMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferMode::Inline => write!(f, "inline"),
            TransferMode::Storage => write!(f, "storage"),
        }
    }
}

/// Number of bytes in a kibibyte-style decimal KB as used by the paper's
/// payload axes (1 KB = 1000 bytes).
pub const KB: u64 = 1_000;
/// Decimal megabyte.
pub const MB: u64 = 1_000_000;
/// Decimal gigabyte.
pub const GB: u64 = 1_000_000_000;

/// Converts a byte count to (decimal) megabytes.
pub fn bytes_to_mb(bytes: u64) -> f64 {
    bytes as f64 / MB as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(FunctionId(3).to_string(), "fn3");
        assert_eq!(InstanceId { function: FunctionId(3), idx: 7 }.to_string(), "fn3#7");
        assert_eq!(RequestId(9).to_string(), "req9");
        assert_eq!(Runtime::Python3.to_string(), "python3");
        assert_eq!(DeploymentMethod::Container.to_string(), "container");
        assert_eq!(TransferMode::Storage.to_string(), "storage");
    }

    #[test]
    fn interpreted_flag() {
        assert!(Runtime::Python3.is_interpreted());
        assert!(!Runtime::Go.is_interpreted());
    }

    #[test]
    fn byte_units() {
        assert_eq!(KB * 1000, MB);
        assert_eq!(MB * 1000, GB);
        assert_eq!(bytes_to_mb(2 * MB), 2.0);
        assert_eq!(bytes_to_mb(500 * KB), 0.5);
    }

    #[test]
    fn serde_enums_snake_case() {
        assert_eq!(serde_json::to_string(&Runtime::Go).unwrap(), "\"go\"");
        assert_eq!(serde_json::to_string(&DeploymentMethod::Zip).unwrap(), "\"zip\"");
        assert_eq!(serde_json::to_string(&TransferMode::Inline).unwrap(), "\"inline\"");
    }
}
