//! Opt-in per-event wall-clock cost profiling.
//!
//! Answers "where does the constant factor go" for a simulation run: wall
//! nanoseconds and counts bucketed per event *class* (for the cloud model,
//! per `CloudEvent` variant). Profiling is opt-in per [`Simulation`]
//! (`enable_event_profiling`); when off, the dispatch loop carries no
//! timestamping at all.
//!
//! # Attribution
//!
//! The instrumented loop takes one wall-clock timestamp per dispatched
//! event and attributes the *delta since the previous timestamp* to the
//! event's class. Each delta therefore covers the queue pop, the class
//! lookup and the model handler for that event — the full marginal cost of
//! dispatching it — and the per-class sums telescope to the loop's wall
//! time by construction (up to one trailing failed pop per `run*` call).
//! That makes the cost table's total a meaningful cross-check against
//! externally measured wall time, which the CI smoke run asserts.
//!
//! [`Simulation`]: crate::engine::Simulation

/// Maps events of a model onto a small dense set of profiling classes.
///
/// Implemented by event enums that want per-variant cost attribution;
/// `class()` returns an index into [`CLASS_NAMES`](Self::CLASS_NAMES).
pub trait EventClass {
    /// Human-readable class names, indexed by [`class`](Self::class).
    const CLASS_NAMES: &'static [&'static str];

    /// The class of this event; must be `< CLASS_NAMES.len()`.
    fn class(&self) -> usize;
}

/// Accumulated wall-clock cost per event class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventProfile {
    /// Class names, indexed like `count` and `ns`.
    pub names: &'static [&'static str],
    /// Events dispatched per class.
    pub count: Vec<u64>,
    /// Wall nanoseconds attributed per class.
    pub ns: Vec<u64>,
    /// Total wall nanoseconds spent inside instrumented dispatch loops.
    pub loop_ns: u64,
}

impl EventProfile {
    /// An empty profile over the classes of `E`.
    pub fn new<E: EventClass>() -> EventProfile {
        let names = E::CLASS_NAMES;
        EventProfile { names, count: vec![0; names.len()], ns: vec![0; names.len()], loop_ns: 0 }
    }

    /// Total events dispatched under profiling.
    pub fn total_events(&self) -> u64 {
        self.count.iter().sum()
    }

    /// Total wall nanoseconds attributed to event classes.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Fraction of instrumented loop wall time attributed to classes
    /// (1.0 when every loop nanosecond landed in a bucket). Returns 1.0
    /// for an empty profile.
    pub fn coverage(&self) -> f64 {
        if self.loop_ns == 0 {
            return 1.0;
        }
        self.total_ns() as f64 / self.loop_ns as f64
    }

    /// Folds another profile (same class set) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class sets differ.
    pub fn merge(&mut self, other: &EventProfile) {
        assert_eq!(self.names, other.names, "merging profiles over different event classes");
        for (mine, theirs) in self.count.iter_mut().zip(&other.count) {
            *mine += theirs;
        }
        for (mine, theirs) in self.ns.iter_mut().zip(&other.ns) {
            *mine += theirs;
        }
        self.loop_ns += other.loop_ns;
    }
}

/// Profiler state carried by an instrumented [`Simulation`].
///
/// Stores the classifier as a plain function pointer so the engine's
/// dispatch loop needs no `EventClass` bound — the bound is required only
/// at `enable_event_profiling` time, where the pointer is taken.
///
/// [`Simulation`]: crate::engine::Simulation
#[derive(Debug)]
pub struct Profiler<E> {
    classify: fn(&E) -> usize,
    profile: EventProfile,
}

impl<E: EventClass> Default for Profiler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Profiler<E> {
    /// A profiler over `E`'s event classes.
    pub fn new() -> Profiler<E>
    where
        E: EventClass,
    {
        Profiler { classify: E::class, profile: EventProfile::new::<E>() }
    }

    /// The class index of `event`.
    pub fn class_of(&self, event: &E) -> usize {
        (self.classify)(event)
    }

    /// Attributes `ns` wall nanoseconds to `class` and counts one event.
    pub fn record(&mut self, class: usize, ns: u64) {
        self.profile.ns[class] += ns;
        self.profile.count[class] += 1;
    }

    /// Adds `ns` to the instrumented-loop wall-time total.
    pub fn record_loop(&mut self, ns: u64) {
        self.profile.loop_ns += ns;
    }

    /// The accumulated profile.
    pub fn profile(&self) -> &EventProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Tick {
        Fast,
        Slow,
    }

    impl EventClass for Tick {
        const CLASS_NAMES: &'static [&'static str] = &["fast", "slow"];

        fn class(&self) -> usize {
            match self {
                Tick::Fast => 0,
                Tick::Slow => 1,
            }
        }
    }

    #[test]
    fn records_per_class_and_loop_totals() {
        let mut p = Profiler::<Tick>::new();
        p.record(p.class_of(&Tick::Fast), 10);
        p.record(p.class_of(&Tick::Slow), 100);
        p.record(p.class_of(&Tick::Fast), 15);
        p.record_loop(130);
        let profile = p.profile();
        assert_eq!(profile.count, [2, 1]);
        assert_eq!(profile.ns, [25, 100]);
        assert_eq!(profile.total_events(), 3);
        assert_eq!(profile.total_ns(), 125);
        assert!((profile.coverage() - 125.0 / 130.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_has_full_coverage() {
        let p = EventProfile::new::<Tick>();
        assert_eq!(p.coverage(), 1.0);
        assert_eq!(p.total_events(), 0);
    }

    #[test]
    fn merge_sums_all_buckets() {
        let mut a = EventProfile::new::<Tick>();
        a.count[0] = 2;
        a.ns[0] = 20;
        a.loop_ns = 25;
        let mut b = EventProfile::new::<Tick>();
        b.count[1] = 1;
        b.ns[1] = 50;
        b.loop_ns = 55;
        a.merge(&b);
        assert_eq!(a.count, [2, 1]);
        assert_eq!(a.ns, [20, 50]);
        assert_eq!(a.loop_ns, 80);
    }
}
