//! Integration tests asserting the paper's seven Observations end to end,
//! through the public API only.

use faas_sim::types::{DeploymentMethod, Runtime, TransferMode, MB};
use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stellar_core::protocols::{
    bursty_invocations, cold_invocations, transfer_chain, warm_invocations, BurstIat, ColdSetup,
};

const N: u32 = 1000;

#[test]
fn observation_1_warm_invocations_are_fast_and_predictable() {
    // "median latency <= 25ms (internal) and TMRs < 2" (+ our band).
    for kind in ProviderKind::ALL {
        let s = warm_invocations(config_for(kind), N, 201).unwrap().summary;
        let internal_median = s.median - kind.prop_one_way_ms() * 2.0;
        assert!(internal_median <= 30.0, "{kind}: internal median {internal_median:.1}");
        assert!(s.tmr < 2.5, "{kind}: TMR {:.2}", s.tmr);
    }
}

#[test]
fn observation_2_cold_starts_hurt_median_not_variability() {
    for kind in ProviderKind::ALL {
        let cold =
            cold_invocations(config_for(kind), ColdSetup::baseline(), N, 100, 202).unwrap().summary;
        assert!(cold.median > 400.0, "{kind}: cold median {:.0}", cold.median);
        // "variability of cold-starts is moderate, with TMR < 3.6"
        assert!(cold.tmr < 3.6, "{kind}: cold TMR {:.2}", cold.tmr);
    }
}

#[test]
fn observation_3_deployment_method_matters_runtime_does_not() {
    let aws = || config_for(ProviderKind::Aws);
    let cold = |runtime, deployment, seed| {
        cold_invocations(
            aws(),
            ColdSetup { runtime, deployment, extra_image_mb: 0.0 },
            N,
            100,
            seed,
        )
        .unwrap()
        .summary
    };
    let py_zip = cold(Runtime::Python3, DeploymentMethod::Zip, 203);
    let go_zip = cold(Runtime::Go, DeploymentMethod::Zip, 204);
    let py_container = cold(Runtime::Python3, DeploymentMethod::Container, 205);
    // Runtime choice: same regime for ZIP deployments.
    assert!(
        (go_zip.median / py_zip.median - 1.0).abs() < 0.45,
        "zip runtimes: go {:.0} vs python {:.0}",
        go_zip.median,
        py_zip.median
    );
    // Deployment method: container blows up median and tail for Python.
    assert!(py_container.median > 1.3 * py_zip.median);
    assert!(py_container.tail > 3.5 * py_zip.tail);
}

#[test]
fn observation_4_storage_transfers_dominate_tail_latency() {
    let kind = ProviderKind::Google;
    let inline = transfer_chain(config_for(kind), TransferMode::Inline, MB, 2000, 206)
        .unwrap()
        .transfer_summary
        .unwrap();
    let storage = transfer_chain(config_for(kind), TransferMode::Storage, MB, 2000, 207)
        .unwrap()
        .transfer_summary
        .unwrap();
    // "155ms median and 5774ms tail ... TMR 37.3 / inline TMR 1.4".
    assert!(storage.tmr > 15.0, "storage TMR {:.1}", storage.tmr);
    assert!(inline.tmr < 2.5, "inline TMR {:.1}", inline.tmr);
    assert!(storage.tail > 20.0 * inline.tail);
}

#[test]
fn observation_5_short_iat_bursts_ordered_by_provider_sensitivity() {
    // Azure >> AWS > Google in burst sensitivity.
    let p99_500 = |kind, seed| {
        bursty_invocations(config_for(kind), BurstIat::Short, 500, 0.0, 4000, 1, seed)
            .unwrap()
            .summary
            .tail
    };
    let azure = p99_500(ProviderKind::Azure, 208);
    let aws = p99_500(ProviderKind::Aws, 209);
    let google = p99_500(ProviderKind::Google, 210);
    assert!(azure > 4.0 * aws, "azure {azure:.0} vs aws {aws:.0}");
    assert!(aws > google, "aws {aws:.0} vs google {google:.0}");
}

#[test]
fn observation_6_long_iat_bursts_have_moderate_tmr() {
    for kind in ProviderKind::ALL {
        let s = bursty_invocations(config_for(kind), BurstIat::Long, 100, 0.0, 3000, 3, 211)
            .unwrap()
            .summary;
        assert!(s.tmr < 4.0, "{kind}: long-burst TMR {:.2}", s.tmr);
    }
}

#[test]
fn observation_7_queueing_policy_costs_two_orders_of_magnitude() {
    // 1 s functions, burst 100, long IAT: queuing policies (Azure) may
    // cost two orders of magnitude vs no-queuing (AWS), measured on the
    // infrastructure+queueing component (minus the 1 s execution).
    let run = |kind, seed| {
        bursty_invocations(config_for(kind), BurstIat::Long, 100, 1000.0, 2000, 3, seed)
            .unwrap()
            .summary
    };
    let aws = run(ProviderKind::Aws, 212);
    let azure = run(ProviderKind::Azure, 213);
    let aws_infra = aws.median - 1000.0;
    let azure_infra = azure.median - 1000.0;
    assert!(
        azure_infra > 30.0 * aws_infra,
        "infra+queue: azure {azure_infra:.0} vs aws {aws_infra:.0}"
    );
}
