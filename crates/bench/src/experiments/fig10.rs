//! Fig 10: tail-to-median ratio CDFs for per-function execution times from
//! the Azure Functions trace (§VII-B).

use azure_trace::analysis::TmrAnalysis;
use azure_trace::record::DurationClass;
use azure_trace::synth::{generate, SynthConfig};
use stats::table::TextTable;

use crate::report::{Report, BASE_SEED};

/// Functions in the synthetic trace (the real duration table has tens of
/// thousands).
pub const TRACE_FUNCTIONS: usize = 40_000;

/// Measured data behind Fig 10.
#[derive(Debug)]
pub struct Fig10 {
    /// The TMR analysis over the synthetic trace.
    pub analysis: TmrAnalysis,
}

/// Generates the synthetic trace and analyses it.
pub fn measure(functions: usize) -> Fig10 {
    let trace = generate(&SynthConfig::paper_defaults(functions), BASE_SEED + 70);
    Fig10 { analysis: TmrAnalysis::compute(&trace) }
}

impl Fig10 {
    /// Renders the report: headline fractions plus CDF points.
    pub fn report(&self) -> Report {
        let mut table = TextTable::new(vec!["population", "frac TMR<10", "paper"]);
        table.row(vec![
            "all functions".into(),
            format!("{:.2}", self.analysis.fraction_below(10.0)),
            "0.70".into(),
        ]);
        if let Some(f) = self.analysis.class_fraction_below(DurationClass::Short, 10.0) {
            table.row(vec!["run < 1s".into(), format!("{f:.2}"), "0.60".into()]);
        }
        if let Some(f) = self.analysis.class_fraction_below(DurationClass::Long, 10.0) {
            table.row(vec!["run > 10s".into(), format!("{f:.2}"), "0.90".into()]);
        }
        let mut body = table.render();
        body.push_str("\nTMR CDF points (all functions):\n");
        for (tmr, q) in self.analysis.fig10_points(11) {
            body.push_str(&format!("  q={q:.1}: TMR {tmr:.2}\n"));
        }
        Report {
            id: "fig10",
            title: "TMR CDFs for per-function execution times (Azure trace)",
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_headline_fractions() {
        let data = measure(20_000);
        let all = data.analysis.fraction_below(10.0);
        assert!((all - 0.70).abs() < 0.06, "all {all}");
        let report = data.report().render();
        assert!(report.contains("all functions"));
        assert!(report.contains("TMR CDF points"));
    }
}
