//! Interpolated percentiles.
//!
//! Percentiles use the linear-interpolation definition (type 7 in the
//! Hyndman–Fan taxonomy, the default of R and NumPy): for `n` sorted
//! samples the `q`-quantile sits at rank `(n-1)·q`, interpolating between
//! neighbouring order statistics.

/// Returns the `q`-quantile (`0.0 ..= 1.0`) of `samples`.
///
/// The input does not need to be sorted; a sorted copy is made internally.
/// For repeated queries over the same data prefer [`sorted_percentile`]
/// with a pre-sorted slice.
///
/// # Panics
///
/// Panics if `samples` is empty, `q` is outside `[0, 1]`, or any sample is
/// NaN.
///
/// # Examples
///
/// ```
/// use stats::percentile::percentile;
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.5), 2.5);
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 1.0), 4.0);
/// ```
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sort_samples(&mut sorted);
    sorted_percentile(&sorted, q)
}

/// Returns the `q`-quantile of `samples`, sorting them in place.
///
/// Avoids [`percentile`]'s internal copy when the caller owns the buffer
/// and does not care about its order. After the call the slice is sorted
/// ascending, so follow-up quantiles of the same data should use
/// [`sorted_percentile`] directly.
///
/// # Panics
///
/// Panics if `samples` is empty, `q` is outside `[0, 1]`, or any sample is
/// NaN.
///
/// # Examples
///
/// ```
/// use stats::percentile::{percentile_in_place, sorted_percentile};
/// let mut xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile_in_place(&mut xs, 0.5), 2.5);
/// assert_eq!(sorted_percentile(&xs, 1.0), 4.0); // already sorted now
/// ```
pub fn percentile_in_place(samples: &mut [f64], q: f64) -> f64 {
    sort_samples(samples);
    sorted_percentile(samples, q)
}

/// [`percentile`] over an already-sorted ascending slice (no allocation).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`. Debug builds
/// additionally assert that the slice is sorted.
pub fn sorted_percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (n - 1) as f64 * q;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 0.5)
}

/// 99th percentile — the paper's "tail latency".
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn p99(samples: &[f64]) -> f64 {
    percentile(samples, 0.99)
}

/// Sorts samples ascending, panicking on NaN.
///
/// # Panics
///
/// Panics if any sample is NaN.
pub fn sort_samples(samples: &mut [f64]) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency sample"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
    }

    #[test]
    fn interpolation_matches_numpy() {
        // numpy.percentile([1,2,3,4], [25, 50, 75]) -> [1.75, 2.5, 3.25]
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.25), 1.75);
        assert_eq!(percentile(&xs, 0.50), 2.5);
        assert_eq!(percentile(&xs, 0.75), 3.25);
    }

    #[test]
    fn odd_length_median_is_exact() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn p99_of_uniform_ladder() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // rank = 99*0.99 = 98.01 -> between 99 and 100
        let v = p99(&xs);
        assert!((v - 99.01).abs() < 1e-9, "{v}");
    }

    #[test]
    fn unsorted_input_is_fine() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        percentile(&[1.0, f64::NAN], 0.5);
    }
}
