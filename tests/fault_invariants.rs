//! Property-based invariants for fault schedules: whatever faults a
//! random spec composes, the cloud's accounting must conserve requests
//! and keep its derived rates physical.

use faults::FaultSpec;
use proptest::prelude::*;
use stellar_core::config::{IatSpec, RuntimeConfig};
use stellar_core::experiment::Experiment;

/// One random (always-valid) fault stanza.
fn fault_part() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        (400u16..=599, 0.0f64..=1.0).prop_map(|(code, p)| FaultSpec::Transient { code, p }),
        (0.0f64..=0.5).prop_map(|p| FaultSpec::Crash { p }),
        (100.0f64..5_000.0, 0.0f64..30_000.0)
            .prop_map(|(mean_gap_ms, start_ms)| FaultSpec::PurgeStorm { mean_gap_ms, start_ms }),
        (0.0f64..30_000.0, 100.0f64..20_000.0)
            .prop_map(|(start_ms, duration_ms)| FaultSpec::Outage { start_ms, duration_ms }),
        (0.0f64..30_000.0, 100.0f64..20_000.0, 1.0f64..4.0).prop_map(
            |(start_ms, duration_ms, factor)| FaultSpec::LatencyInflation {
                start_ms,
                duration_ms,
                factor
            }
        ),
        (1u32..64).prop_map(|queue_limit| FaultSpec::Shed { queue_limit }),
    ]
}

/// A random composition of 1–4 stanzas.
fn fault_spec() -> impl Strategy<Value = FaultSpec> {
    proptest::collection::vec(fault_part(), 1..5).prop_map(|parts| FaultSpec::Compose { parts })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and physicality under the plain (no-policy) driver:
    /// every submitted external request ends in exactly one terminal
    /// bucket, each fault hits a request at most once, and availability
    /// is a proper fraction.
    #[test]
    fn fault_accounting_conserves_requests(spec in fault_spec(), seed in 0u64..16) {
        spec.validate().expect("strategy only builds valid specs");
        // No warmup: warmup completions would count in the fault stats
        // (the cloud served them) but not in the latency aggregate, and
        // this property pins the two against each other.
        let mut runtime = RuntimeConfig::single(IatSpec::short(), 120);
        runtime.warmup_rounds = 0;
        runtime.faults = Some(spec.clone());
        let outcome = Experiment::new(providers::profiles::aws_like())
            .workload(runtime)
            .seed(seed)
            .run()
            .expect("fault run");
        let Some(f) = outcome.result.faults else {
            // The random composition collapsed to an inert plan (all
            // probabilities zero): nothing to account for.
            prop_assert!(spec.build().is_inert());
            return Ok(());
        };
        prop_assert!(f.submitted > 0, "the driver offered requests");
        prop_assert!(f.injected <= f.submitted, "injected {} > submitted {}", f.injected, f.submitted);
        prop_assert_eq!(
            f.injected,
            f.transient_errors + f.crashes + f.shed,
            "every injection is exactly one fault class"
        );
        // No cancels without a policy: the terminal buckets partition
        // the offered load.
        prop_assert_eq!(f.cancelled, 0);
        prop_assert_eq!(
            f.shed + f.completed + f.failed + f.cancelled,
            f.submitted,
            "terminal buckets must partition submitted requests"
        );
        prop_assert_eq!(f.failed, f.transient_errors + f.crashes);
        let availability = f.availability();
        prop_assert!(
            (0.0..=1.0).contains(&availability),
            "availability {availability} out of range"
        );
        prop_assert!(f.wasted_busy_ms >= 0.0);
        // Successful completions are the latency samples; failures and
        // sheds never leak into the aggregate.
        prop_assert_eq!(outcome.result.latency_agg.count() as u64, f.completed);
    }

    /// The same run, faults installed, is still bit-deterministic.
    #[test]
    fn fault_runs_are_deterministic(spec in fault_spec(), seed in 0u64..8) {
        let run = || {
            let mut runtime = RuntimeConfig::single(IatSpec::short(), 80);
            runtime.faults = Some(spec.clone());
            Experiment::new(providers::profiles::aws_like())
                .workload(runtime)
                .seed(seed)
                .run()
                .expect("fault run")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.latencies_ms(), b.latencies_ms());
        prop_assert_eq!(a.result.faults, b.result.faults);
    }
}
