//! # faas-sim — a discrete-event simulator of a serverless cloud
//!
//! This crate is the substrate of the STeLLAR reproduction: since the
//! paper benchmarks three commercial clouds we cannot access, `faas-sim`
//! models the full serverless invocation lifecycle of the paper's Fig 1 —
//! front-end fleet, load balancer, cluster scheduler, workers with
//! instance managers, function instances, and the storage services used
//! for both function images and cross-function payloads.
//!
//! The simulator is *mechanistic*: scheduling policies, queueing, image
//! caching, spawn pacing and storage contention are simulated, and the
//! paper's findings (who wins, where the crossovers are) emerge from those
//! mechanisms. Only the base component latency distributions are
//! calibrated numbers (see the `providers` crate).
//!
//! ## Quick start
//!
//! ```
//! use faas_sim::cloud::CloudSim;
//! use faas_sim::spec::FunctionSpec;
//! use faas_sim::testutil::test_provider;
//! use simkit::time::SimTime;
//!
//! let mut cloud = CloudSim::new(test_provider(), 1);
//! let f = cloud.deploy(FunctionSpec::builder("demo").build()).unwrap();
//! for i in 0..10 {
//!     cloud.submit(f, i, SimTime::from_secs(i as f64));
//! }
//! cloud.run_until(SimTime::from_secs(60.0));
//! let completions = cloud.drain_completions();
//! assert_eq!(completions.len(), 10);
//! // First request cold, the rest hit the warm instance:
//! assert!(completions[0].cold);
//! assert!(completions[1..].iter().all(|c| !c.cold));
//! ```

pub(crate) mod arena;
pub mod billing;
pub mod cloud;
pub mod config;
pub mod dag;
pub mod events;
pub mod instance;
pub mod loadbalancer;
pub mod request;
pub mod scheduler;
pub mod spec;
pub mod storage;
pub mod testutil;
pub mod types;

pub use billing::ResourceUsage;
pub use cloud::{metric, span_tag, CloudSim, CloudStats, DeployError, RequestSlabStats};
pub use config::ProviderConfig;
pub use request::{Breakdown, Completion, TransferSample};
pub use spec::FunctionSpec;
pub use types::{DeploymentMethod, FunctionId, InstanceId, RequestId, Runtime, TransferMode};
