//! Empirical cumulative distribution functions.
//!
//! The paper's latency figures are CDF plots; [`Cdf`] provides evaluation,
//! quantiles, down-sampling to plot points, and an ASCII rendering used by
//! the benchmark harness output and `EXPERIMENTS.md` appendices.

use serde::{Deserialize, Serialize};

use crate::percentile::{sort_samples, sorted_percentile};

/// An empirical CDF over `f64` samples.
///
/// # Examples
///
/// ```
/// use stats::Cdf;
/// let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.eval(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(samples: &[f64]) -> Cdf {
        assert!(!samples.is_empty(), "CDF of empty sample set");
        let mut sorted = samples.to_vec();
        sort_samples(&mut sorted);
        Cdf { sorted }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples (never true for a constructed `Cdf`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples `<= x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN, consistent with [`Cdf::from_samples`] (with a
    /// NaN, `v <= x` is vacuously false and the result would silently be 0).
    pub fn eval(&self, x: f64) -> f64 {
        assert!(!x.is_nan(), "CDF evaluated at NaN");
        // partition_point gives the count of samples <= x on a sorted vec.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Interpolated `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        sorted_percentile(&self.sorted, q)
    }

    /// Down-samples to `n` evenly spaced `(value, cumulative_prob)` points
    /// suitable for plotting.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two plot points");
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Renders an ASCII plot of the CDF, `width` columns by `height` rows,
    /// with the x-axis spanning `[min, max]` of the samples (log-scaled if
    /// `log_x` and all samples are positive).
    pub fn render_ascii(&self, width: usize, height: usize, log_x: bool) -> String {
        let width = width.max(16);
        let height = height.max(4);
        let min = self.sorted[0];
        let max = self.sorted[self.sorted.len() - 1];
        let use_log = log_x && min > 0.0 && max > min;
        let to_axis = |x: f64| -> f64 {
            if use_log {
                x.ln()
            } else {
                x
            }
        };
        let (amin, amax) = (to_axis(min), to_axis(max));
        let span = if amax > amin { amax - amin } else { 1.0 };
        let mut grid = vec![vec![' '; width]; height];
        #[allow(clippy::needless_range_loop)] // col drives both the x-axis math and the grid index
        for col in 0..width {
            let ax = amin + span * col as f64 / (width - 1) as f64;
            let x = if use_log { ax.exp() } else { ax };
            let p = self.eval(x);
            let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = '*';
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                "1.0 |"
            } else if i == height - 1 {
                "0.0 |"
            } else {
                "    |"
            };
            out.push_str(label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "     x: [{:.3}, {:.3}]{}\n",
            min,
            max,
            if use_log { " (log scale)" } else { "" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn eval_handles_duplicates() {
        let cdf = Cdf::from_samples(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(cdf.eval(1.0), 0.75);
    }

    #[test]
    fn quantile_interpolates() {
        let cdf = Cdf::from_samples(&[10.0, 20.0]);
        assert_eq!(cdf.quantile(0.5), 15.0);
    }

    #[test]
    fn points_are_monotone() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64).powi(2)).collect();
        let cdf = Cdf::from_samples(&samples);
        let pts = cdf.points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[10].1, 1.0);
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(&samples);
        let art = cdf.render_ascii(40, 10, false);
        assert!(art.contains("1.0 |"));
        assert!(art.contains("0.0 |"));
        assert!(art.lines().count() >= 10);
        let log_art = cdf.render_ascii(40, 10, true);
        assert!(log_art.contains("log scale"));
    }

    #[test]
    fn serde_round_trip() {
        let cdf = Cdf::from_samples(&[3.0, 1.0, 2.0]);
        let json = serde_json::to_string(&cdf).unwrap();
        let back: Cdf = serde_json::from_str(&json).unwrap();
        assert_eq!(cdf, back);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Cdf::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn eval_nan_panics() {
        // Regression: eval(NaN) used to silently return 0.0.
        Cdf::from_samples(&[1.0, 2.0]).eval(f64::NAN);
    }
}
