//! Events dispatched inside the cloud simulation.

use crate::types::{FunctionId, InstanceId, RequestId};

/// The event alphabet of the serverless cloud simulation.
///
/// Each variant corresponds to a hand-off point in the invocation
/// lifecycle of the paper's Fig 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudEvent {
    /// The request reached the front-end fleet (step ①).
    FrontendArrive(RequestId),
    /// Front-end + routing processing finished; enter burst dispatch
    /// (step ②).
    RoutingDone(RequestId),
    /// The request cleared dispatch and is ready to be queued/served
    /// (step ③).
    Enqueued(RequestId),
    /// An instance finished booting (step ⑤ done).
    BootComplete(InstanceId),
    /// User compute of the request finished on the instance; chain hops
    /// happen next (steps ⑧–⑨).
    ComputeDone(RequestId, InstanceId),
    /// The request's work on the instance is fully done (including chain);
    /// the response leaves the instance.
    ExecDone(RequestId, InstanceId),
    /// The response reached the requester.
    Completed(RequestId),
    /// Client-side cancellation of an in-flight request (tail-tolerance
    /// policies): the request is dropped at this event boundary, freeing
    /// its instance if it was executing.
    Cancel(RequestId),
    /// Keep-alive check for an idle instance at the given epoch.
    ReapCheck(InstanceId, u64),
    /// Periodic scale-controller tick for a function (Azure-style).
    ScaleTick(FunctionId),
    /// Telemetry sampling tick (enabled via `CloudSim::enable_timeline`).
    TelemetryTick,
    /// Keepalive-purge storm tick (fault injection): reaps every idle
    /// instance, then reschedules itself while the run is still active.
    FaultStorm,
}
