//! The serverless "tail at scale" effect: join p99 amplification versus
//! fan-out width. A width-`w` fan-out/fan-in workflow completes at the
//! *max* over `w` branch latencies, so its join p99 is governed by the
//! branch distribution's extreme order statistics — the wider the fan,
//! the further into the branch tail every workflow is pushed. This
//! artifact sweeps the parametric [`appsuite::fan_out`] workflow across
//! widths {2, 4, 8, 16} on all three provider profiles, with and
//! without a `hedge-p95` tail-tolerance policy, and reports two ratios:
//!
//! * **intrinsic amplification** — join p99 ÷ branch p99 from the
//!   cloud's barrier accounting: a property of the workflow shape,
//!   growing with width and untouched by client-side policies;
//! * **experienced amplification** — end-to-end p99 ÷ branch p99 as the
//!   client sees it: hedging re-issues a straggling workflow whole, and
//!   the faster replica's max-of-`w` wins, pulling the experienced tail
//!   back down even though the intrinsic barrier math is unchanged.
//!
//! Whether the hedge *can* win is a placement question. A forked
//! producer holds its instance until the join resolves (synchronous
//! chain semantics), so a straggling workflow keeps every one of its
//! instances busy. On a spawn-per-request provider (aws-like,
//! commitment cap 1) the duplicate's branches get fresh instances and
//! the hedge rescues the tail; on queue-at-instance providers
//! (google/azure-like) the duplicate is committed *behind* the busy
//! originals and serializes with the very straggler it was meant to
//! dodge — the hedge is structurally defeated, and the artifact records
//! that contrast rather than hiding it.

use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stellar_core::config::{IatSpec, RuntimeConfig};
use stellar_core::experiment::{Experiment, Outcome};

use crate::report::{Report, BASE_SEED};

/// Fan-out widths under test.
pub const WIDTHS: [u32; 4] = [2, 4, 8, 16];

/// One measured grid cell.
#[derive(Debug)]
pub struct StragglerCell {
    /// Provider profile.
    pub kind: ProviderKind,
    /// Fan-out width of the workflow.
    pub width: u32,
    /// Whether the client ran the `hedge-p95` policy.
    pub hedged: bool,
    /// The run.
    pub outcome: Outcome,
}

impl StragglerCell {
    /// Intrinsic join amplification (join p99 ÷ branch p99) from the
    /// barrier accounting.
    pub fn intrinsic_amplification(&self) -> f64 {
        self.outcome.dag.as_ref().expect("app run").straggler_amplification
    }

    /// p99 of individual branch latencies, ms.
    pub fn branch_p99_ms(&self) -> f64 {
        self.outcome.dag.as_ref().expect("app run").joins[0].branch_p99_ms
    }

    /// End-to-end p99 ÷ branch p99: the amplification the client
    /// actually experiences (hedging can shrink this one).
    pub fn experienced_amplification(&self) -> f64 {
        self.outcome.summary.tail / self.branch_p99_ms()
    }
}

/// Measured data: provider × width × {baseline, hedge-p95}.
#[derive(Debug)]
pub struct StragglerScaling {
    /// The grid cells, provider-major, width-then-policy minor.
    pub cells: Vec<StragglerCell>,
}

fn run_cell(kind: ProviderKind, width: u32, hedged: bool, samples: u32) -> Outcome {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), samples);
    runtime.warmup_rounds = 3;
    if hedged {
        runtime.policy = Some(policy::PolicySpec::preset("hedge-p95").expect("preset exists"));
    }
    Experiment::new(config_for(kind))
        .app(appsuite::fan_out(width))
        .workload(runtime)
        // Same seed across the policy axis: both cells face the same
        // arrival train, so the delta is the hedge's doing.
        .seed(BASE_SEED + 700 + u64::from(width))
        .run()
        .expect("straggler scaling run")
}

/// Runs the provider × width × policy grid in parallel.
pub fn measure(samples: u32) -> StragglerScaling {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .flat_map(|&kind| WIDTHS.into_iter().map(move |w| (kind, w)))
            .flat_map(|(kind, width)| [false, true].into_iter().map(move |h| (kind, width, h)))
            .map(|(kind, width, hedged)| {
                scope.spawn(move |_| StragglerCell {
                    kind,
                    width,
                    hedged,
                    outcome: run_cell(kind, width, hedged, samples),
                })
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    StragglerScaling { cells }
}

impl StragglerScaling {
    /// The cell for one (provider, width, policy) combination.
    pub fn cell(&self, kind: ProviderKind, width: u32, hedged: bool) -> Option<&StragglerCell> {
        self.cells.iter().find(|c| c.kind == kind && c.width == width && c.hedged == hedged)
    }

    /// Renders the scaling table plus per-provider headlines.
    pub fn report(&self) -> Report {
        let mut table = stats::table::TextTable::new(vec![
            "series",
            "branch_p99",
            "join_p99",
            "intrinsic_amp",
            "e2e_p99",
            "experienced_amp",
            "hedges/req",
        ]);
        for cell in &self.cells {
            let dag = cell.outcome.dag.as_ref().expect("app run");
            let join = &dag.joins[0];
            let rate = match &cell.outcome.result.policy {
                Some(p) => format!("{:.3}", p.hedge_fire_rate()),
                None => "-".into(),
            };
            table.row(vec![
                format!(
                    "{} fan-{} {}",
                    cell.kind,
                    cell.width,
                    if cell.hedged { "hedge-p95" } else { "none" }
                ),
                stats::table::fmt_latency(join.branch_p99_ms),
                stats::table::fmt_latency(join.join_p99_ms),
                format!("{:.2}x", cell.intrinsic_amplification()),
                stats::table::fmt_latency(cell.outcome.summary.tail),
                format!("{:.2}x", cell.experienced_amplification()),
                rate,
            ]);
        }
        let mut body = table.render();
        body.push('\n');
        for kind in ProviderKind::ALL {
            if let (Some(narrow), Some(wide), Some(hedged)) =
                (self.cell(kind, 2, false), self.cell(kind, 16, false), self.cell(kind, 16, true))
            {
                body.push_str(&format!(
                    "{kind}: intrinsic amplification {:.2}x at fan-2 -> {:.2}x at fan-16; \
                     under hedge-p95 the experienced fan-16 tail goes {:.2}x -> {:.2}x of \
                     branch p99 (e2e p99 {:.0} -> {:.0} ms)\n",
                    narrow.intrinsic_amplification(),
                    wide.intrinsic_amplification(),
                    wide.experienced_amplification(),
                    hedged.experienced_amplification(),
                    wide.outcome.summary.tail,
                    hedged.outcome.summary.tail,
                ));
            }
        }
        Report {
            id: "straggler",
            title: "Join straggler amplification vs fan-out width (tail at scale)",
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The artifact's pinned claims: intrinsic join amplification grows
    /// with fan-out width on every provider, and hedge-p95 shrinks the
    /// experienced wide-fan tail where placement lets the duplicate run
    /// — decisively on the spawn-per-request profile (aws-like), whose
    /// commitment cap of 1 gives the duplicate's branches fresh
    /// instances instead of a queue slot behind the straggler.
    #[test]
    fn amplification_grows_with_width_and_shrinks_under_hedging() {
        let data = measure(500);
        assert_eq!(data.cells.len(), 3 * 4 * 2, "provider x width x policy grid");
        for kind in ProviderKind::ALL {
            for width in WIDTHS {
                let cell = data.cell(kind, width, false).unwrap();
                assert!(
                    cell.intrinsic_amplification() >= 1.0,
                    "{kind} fan-{width}: a join can't beat its own branches"
                );
                let joins = &cell.outcome.dag.as_ref().unwrap().joins;
                assert_eq!(joins.len(), 1, "fan_out has exactly one join stage");
                // Hedging is a client-side policy: the barrier math it
                // rides on must be untouched (same per-workflow shape).
                let hedged = data.cell(kind, width, true).unwrap();
                assert!(hedged.outcome.result.policy.is_some());
            }
            let narrow = data.cell(kind, 2, false).unwrap().intrinsic_amplification();
            let wide = data.cell(kind, 16, false).unwrap().intrinsic_amplification();
            assert!(
                wide > narrow,
                "{kind}: fan-16 amplification {wide:.2} must exceed fan-2 {narrow:.2}"
            );
        }
        // Where duplicates get fresh instances, the hedge wins big: the
        // aws-like wide-fan e2e p99 must drop by at least a quarter.
        for width in [8, 16] {
            let unhedged = data.cell(ProviderKind::Aws, width, false).unwrap().outcome.summary.tail;
            let hedged = data.cell(ProviderKind::Aws, width, true).unwrap().outcome.summary.tail;
            assert!(
                hedged < 0.75 * unhedged,
                "aws fan-{width}: hedge-p95 must shrink the e2e p99 ({hedged:.1} vs {unhedged:.1})"
            );
        }
        let report = data.report().render();
        assert!(report.contains("intrinsic amplification"), "{report}");
        assert!(report.contains("hedge-p95"), "{report}");
    }
}
