//! Property-based tests of the trace tooling.

use azure_trace::analysis::TmrAnalysis;
use azure_trace::csv;
use azure_trace::record::FunctionDurationRecord;
use azure_trace::synth::{generate, SynthConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated record validates and its percentiles are monotone,
    /// for any generator size and seed.
    #[test]
    fn generator_produces_valid_records(functions in 1usize..500, seed in any::<u64>()) {
        let records = generate(&SynthConfig::paper_defaults(functions), seed);
        prop_assert_eq!(records.len(), functions);
        for r in &records {
            prop_assert!(r.validate().is_ok(), "{:?}", r.validate());
            prop_assert!(r.tmr() >= 1.0);
        }
        // Function ids are unique.
        let mut names: Vec<_> = records.iter().map(|r| r.function.clone()).collect();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), functions);
    }

    /// CSV write→parse round-trips the whole trace.
    #[test]
    fn csv_round_trip(functions in 1usize..100, seed in any::<u64>()) {
        let records = generate(&SynthConfig::paper_defaults(functions), seed);
        let text = csv::write(&records);
        let parsed = csv::parse(&text).expect("round-trip parse");
        prop_assert_eq!(parsed.len(), records.len());
        for (a, b) in records.iter().zip(&parsed) {
            prop_assert_eq!(&a.function, &b.function);
            prop_assert!((a.p50 - b.p50).abs() < 1e-9);
            prop_assert!((a.p99 - b.p99).abs() < 1e-9);
        }
    }

    /// The analysis' fraction_below is a CDF: monotone in the threshold
    /// and bounded by [0, 1].
    #[test]
    fn analysis_fraction_monotone(seed in any::<u64>(), t1 in 1.0f64..50.0, t2 in 1.0f64..50.0) {
        let records = generate(&SynthConfig::paper_defaults(300), seed);
        let analysis = TmrAnalysis::compute(&records);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let f_lo = analysis.fraction_below(lo);
        let f_hi = analysis.fraction_below(hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_lo <= f_hi);
    }

    /// Class fractions are consistent with the overall fraction (the
    /// overall is a weighted average of the class-conditional values).
    #[test]
    fn class_fractions_average_to_overall(seed in any::<u64>()) {
        use azure_trace::record::DurationClass::*;
        let records = generate(&SynthConfig::paper_defaults(2000), seed);
        let analysis = TmrAnalysis::compute(&records);
        let count = |class| records.iter().filter(|r| r.class() == class).count() as f64;
        let total = records.len() as f64;
        let mut weighted = 0.0;
        for class in [Short, Medium, Long] {
            if let Some(f) = analysis.class_fraction_below(class, 10.0) {
                weighted += f * count(class) / total;
            }
        }
        let overall = analysis.fraction_below(10.0);
        prop_assert!((weighted - overall).abs() < 1e-9, "{weighted} vs {overall}");
    }
}

/// Non-proptest: handcrafted CSV corner cases.
#[test]
fn csv_handles_whitespace_and_order() {
    let rec = FunctionDurationRecord {
        owner: "o".into(),
        app: "a".into(),
        function: "f".into(),
        count: 10,
        average_ms: 50.0,
        p0: 1.0,
        p1: 2.0,
        p25: 10.0,
        p50: 40.0,
        p75: 80.0,
        p99: 200.0,
        p100: 300.0,
    };
    let mut text = csv::write(&[rec]);
    text = text.replace(",50,", ", 50 ,");
    let parsed = csv::parse(&text).unwrap();
    assert_eq!(parsed[0].average_ms, 50.0);
}
