//! Realized-load characterization.
//!
//! A configured workload says what was *asked for*; [`LoadRecorder`]
//! measures what was actually *offered*: mean arrival rate, inter-arrival
//! CV, peak-to-mean window rate, and the Fano factor (window-count
//! variance over mean — 1 for Poisson, >1 for bursty streams). Reports
//! carry this next to latency so a tail can be read against the load that
//! produced it.
//!
//! The recorder is O(1) per arrival and O(1) in memory: gap moments are
//! accumulated in running sums, and per-window counts fold into running
//! window statistics at each boundary crossing — no per-arrival or
//! per-window vectors, so it is safe to leave on for 10^7-invocation
//! streaming runs.

use serde::{Deserialize, Serialize};

/// Offered-load summary produced by [`LoadRecorder::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfferedLoad {
    /// Total arrivals recorded.
    pub arrivals: u64,
    /// Mean arrival rate over the recorded span, per second.
    pub mean_rate_per_s: f64,
    /// Coefficient of variation of inter-arrival gaps (0 for fixed IAT,
    /// 1 for Poisson, >1 for bursty).
    pub iat_cv: f64,
    /// Peak window arrival rate over the mean window rate.
    pub peak_to_mean: f64,
    /// Fano factor of per-window counts: variance/mean (burstiness
    /// index; 1 for Poisson).
    pub fano: f64,
    /// The counting-window width used, ms.
    pub window_ms: f64,
}

/// Streaming recorder of arrival instants; see the module docs.
#[derive(Debug, Clone)]
pub struct LoadRecorder {
    window_ms: f64,
    first_ms: Option<f64>,
    last_ms: f64,
    // Gap moments (n = arrivals - 1 gaps).
    gap_sum: f64,
    gap_sumsq: f64,
    arrivals: u64,
    // Current counting window.
    win_index: u64,
    win_count: u64,
    // Folded window statistics.
    windows: u64,
    win_sum: f64,
    win_sumsq: f64,
    win_max: f64,
}

impl LoadRecorder {
    /// Creates a recorder with the given counting-window width.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not positive.
    pub fn new(window_ms: f64) -> LoadRecorder {
        assert!(window_ms > 0.0, "window must be positive");
        LoadRecorder {
            window_ms,
            first_ms: None,
            last_ms: 0.0,
            gap_sum: 0.0,
            gap_sumsq: 0.0,
            arrivals: 0,
            win_index: 0,
            win_count: 0,
            windows: 0,
            win_sum: 0.0,
            win_sumsq: 0.0,
            win_max: 0.0,
        }
    }

    fn fold_window(&mut self, count: f64) {
        self.windows += 1;
        self.win_sum += count;
        self.win_sumsq += count * count;
        self.win_max = self.win_max.max(count);
    }

    /// Records one arrival at absolute time `at_ms`. Arrivals must be
    /// recorded in non-decreasing time order.
    pub fn record(&mut self, at_ms: f64) {
        match self.first_ms {
            None => {
                self.first_ms = Some(at_ms);
                self.win_index = 0;
                self.win_count = 1;
            }
            Some(first) => {
                let gap = at_ms - self.last_ms;
                debug_assert!(gap >= 0.0, "arrivals recorded out of order");
                self.gap_sum += gap;
                self.gap_sumsq += gap * gap;
                let idx = ((at_ms - first) / self.window_ms) as u64;
                if idx == self.win_index {
                    self.win_count += 1;
                } else {
                    // Close the current window, then any skipped (empty)
                    // windows, then start the new one.
                    let closed = self.win_count as f64;
                    self.fold_window(closed);
                    for _ in self.win_index + 1..idx {
                        self.fold_window(0.0);
                    }
                    self.win_index = idx;
                    self.win_count = 1;
                }
            }
        }
        self.last_ms = at_ms;
        self.arrivals += 1;
    }

    /// Closes the recorder and computes the summary. Degenerate inputs
    /// (fewer than two arrivals) report zero rate and variability.
    pub fn finish(mut self) -> OfferedLoad {
        let window_ms = self.window_ms;
        if self.arrivals < 2 {
            return OfferedLoad {
                arrivals: self.arrivals,
                mean_rate_per_s: 0.0,
                iat_cv: 0.0,
                peak_to_mean: 0.0,
                fano: 0.0,
                window_ms,
            };
        }
        let span_ms = self.last_ms - self.first_ms.expect("arrivals > 0");
        // Close the trailing partial window.
        let trailing = self.win_count as f64;
        self.fold_window(trailing);

        let gaps = (self.arrivals - 1) as f64;
        let gap_mean = self.gap_sum / gaps;
        let gap_var = (self.gap_sumsq / gaps - gap_mean * gap_mean).max(0.0);
        let iat_cv = if gap_mean > 0.0 { gap_var.sqrt() / gap_mean } else { 0.0 };

        let n_win = self.windows as f64;
        let win_mean = self.win_sum / n_win;
        let win_var = (self.win_sumsq / n_win - win_mean * win_mean).max(0.0);
        OfferedLoad {
            arrivals: self.arrivals,
            mean_rate_per_s: if span_ms > 0.0 {
                (self.arrivals - 1) as f64 / span_ms * 1_000.0
            } else {
                0.0
            },
            iat_cv,
            peak_to_mean: if win_mean > 0.0 { self.win_max / win_mean } else { 0.0 },
            fano: if win_mean > 0.0 { win_var / win_mean } else { 0.0 },
            window_ms,
        }
    }
}

impl Default for LoadRecorder {
    /// One-second counting windows.
    fn default() -> LoadRecorder {
        LoadRecorder::new(1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{ArrivalProcess, Fixed, Mmpp, Poisson};
    use simkit::rng::Rng;

    fn offered(process: &mut dyn ArrivalProcess, n: usize) -> OfferedLoad {
        let mut rng = Rng::seed_from(5).fork("stats-test");
        let mut recorder = LoadRecorder::default();
        let mut t = 0.0;
        for _ in 0..n {
            recorder.record(t);
            t += process.next_gap_ms(&mut rng);
        }
        recorder.finish()
    }

    #[test]
    fn fixed_stream_has_zero_cv_and_unit_peak() {
        let load = offered(&mut Fixed { gap_ms: 100.0 }, 5_000);
        assert_eq!(load.arrivals, 5_000);
        assert!((load.mean_rate_per_s - 10.0).abs() < 0.01, "rate {}", load.mean_rate_per_s);
        assert!(load.iat_cv < 1e-9, "cv {}", load.iat_cv);
        assert!((load.peak_to_mean - 1.0).abs() < 0.01, "p2m {}", load.peak_to_mean);
        assert!(load.fano < 0.01, "fano {}", load.fano);
    }

    #[test]
    fn poisson_stream_has_unit_cv_and_unit_fano() {
        let load = offered(&mut Poisson { mean_ms: 20.0 }, 50_000);
        assert!((load.mean_rate_per_s - 50.0).abs() < 1.5, "rate {}", load.mean_rate_per_s);
        assert!((load.iat_cv - 1.0).abs() < 0.03, "cv {}", load.iat_cv);
        assert!((load.fano - 1.0).abs() < 0.15, "fano {}", load.fano);
    }

    #[test]
    fn mmpp_stream_is_overdispersed() {
        let mut p = Mmpp::new(200.0, 2_000.0, 200.0, 1.0);
        let load = offered(&mut p, 50_000);
        assert!(load.iat_cv > 1.5, "cv {}", load.iat_cv);
        assert!(load.fano > 2.0, "fano {}", load.fano);
        assert!(load.peak_to_mean > 2.0, "p2m {}", load.peak_to_mean);
    }

    #[test]
    fn empty_windows_between_bursts_are_counted() {
        let mut recorder = LoadRecorder::new(10.0);
        // Two bursts 100 ms apart: nine empty windows in between must
        // drag the mean window count down.
        for i in 0..5 {
            recorder.record(i as f64);
        }
        for i in 0..5 {
            recorder.record(100.0 + i as f64);
        }
        let load = recorder.finish();
        assert_eq!(load.arrivals, 10);
        // 11 windows total (two busy, nine empty): mean = 10/11.
        assert!((load.peak_to_mean - 5.0 / (10.0 / 11.0)).abs() < 1e-9, "{}", load.peak_to_mean);
        assert!(load.fano > 1.0);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(LoadRecorder::default().finish().arrivals, 0);
        let mut one = LoadRecorder::default();
        one.record(5.0);
        let load = one.finish();
        assert_eq!(load.arrivals, 1);
        assert_eq!(load.mean_rate_per_s, 0.0);
    }
}
