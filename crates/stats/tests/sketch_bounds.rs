//! Property tests of the quantile sketch's documented rank-error bound.
//!
//! The contract under test (see `stats::sketch` module docs): for any
//! recorded sample set, `sketch.quantile(q)` lies between the exact
//! `(q − ε)`- and `(q + ε)`-quantiles, where
//! `ε = sketch.rank_error_bound(q)`. The generators below cover the
//! workload shapes the figure pipelines actually produce: uniform noise,
//! lognormal warm-latency clouds, and bimodal cold+warm mixtures.

use proptest::prelude::*;
use stats::percentile::{sort_samples, sorted_percentile};
use stats::sketch::{LatencyAgg, QuantileSketch};

/// Deterministic 64-bit generator (splitmix64) so sample sets are a pure
/// function of the proptest-chosen seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn uniform01(state: &mut u64) -> f64 {
    (next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal via Box–Muller.
fn normal(state: &mut u64) -> f64 {
    let u1 = uniform01(state).max(1e-12);
    let u2 = uniform01(state);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One latency sample in the given workload shape (milliseconds).
fn sample(kind: usize, state: &mut u64) -> f64 {
    match kind {
        // Uniform noise across three decades.
        0 => uniform01(state) * 1000.0,
        // Lognormal warm cloud: median ~20 ms with a long tail.
        1 => (20.0f64.ln() + 0.6 * normal(state)).exp(),
        // Bimodal cold+warm: 8% cold starts around 900 ms.
        _ => {
            if uniform01(state) < 0.08 {
                900.0 + uniform01(state) * 300.0
            } else {
                15.0 + uniform01(state) * 10.0
            }
        }
    }
}

proptest! {
    // Sample sets up to 1e5 make default-count cases too slow; a couple
    // dozen cases per shape/scale already exercise many seeds.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sketch quantiles stay within the documented rank-error band of the
    /// exact percentiles on 10^3..10^5 samples, across workload shapes.
    #[test]
    fn sketch_quantiles_within_documented_bound(
        seed in any::<u64>(),
        kind in 0usize..3,
        scale in 0usize..3,
    ) {
        let n = [1_000usize, 10_000, 100_000][scale];
        let mut state = seed;
        let mut sketch = QuantileSketch::new();
        let mut xs = Vec::with_capacity(n);
        for _ in 0..n {
            let v = sample(kind, &mut state);
            sketch.record(v);
            xs.push(v);
        }
        sort_samples(&mut xs);
        for q in [0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
            let est = sketch.quantile(q);
            let eps = sketch.rank_error_bound(q);
            let lo = sorted_percentile(&xs, (q - eps).max(0.0));
            let hi = sorted_percentile(&xs, (q + eps).min(1.0));
            prop_assert!(
                est >= lo - 1e-9 && est <= hi + 1e-9,
                "kind={} n={} q={}: est={} outside [{}, {}] (eps={})",
                kind, n, q, est, lo, hi, eps
            );
        }
    }

    /// Below the exact threshold the sketch reproduces exact percentiles
    /// bit for bit (the advertised exact-mode fallback).
    #[test]
    fn small_runs_are_exact(seed in any::<u64>(), kind in 0usize..3) {
        let mut state = seed;
        let mut sketch = QuantileSketch::new();
        let mut xs = Vec::new();
        for _ in 0..sketch.exact_threshold() {
            let v = sample(kind, &mut state);
            sketch.record(v);
            xs.push(v);
        }
        prop_assert!(!sketch.is_sketching());
        sort_samples(&mut xs);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(sketch.quantile(q), sorted_percentile(&xs, q));
        }
    }

    /// Merging per-shard aggregates obeys the same bound as recording
    /// sequentially — the sweep runner's reduction is covered by the
    /// documented guarantee.
    #[test]
    fn merged_aggregates_within_bound(seed in any::<u64>(), kind in 0usize..3, shards in 2usize..6) {
        let n = 20_000usize;
        let mut state = seed;
        let mut xs = Vec::with_capacity(n);
        let mut parts: Vec<LatencyAgg> = (0..shards).map(|_| LatencyAgg::new()).collect();
        for i in 0..n {
            let v = sample(kind, &mut state);
            parts[i % shards].record(v);
            xs.push(v);
        }
        let mut acc = LatencyAgg::new();
        for p in &parts {
            acc.merge(p);
        }
        prop_assert_eq!(acc.count(), n as u64);
        sort_samples(&mut xs);
        for q in [0.5, 0.99] {
            let est = acc.quantile(q);
            // Each merge level can add an interpolation error; allow the
            // documented per-sketch bound once per merge depth (here 1:
            // shards merge directly into one accumulator).
            let eps = 2.0 * acc.rank_error_bound(q);
            let lo = sorted_percentile(&xs, (q - eps).max(0.0));
            let hi = sorted_percentile(&xs, (q + eps).min(1.0));
            prop_assert!(
                est >= lo - 1e-9 && est <= hi + 1e-9,
                "kind={} q={}: est={} outside [{}, {}]", kind, q, est, lo, hi
            );
        }
    }
}
