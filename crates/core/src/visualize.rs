//! Measurement visualisation: CDFs, percentile series and CSV export.
//!
//! STeLLAR ships plotting utilities that render latency measurements as
//! CDFs or percentile-vs-parameter curves (§IV). This module produces the
//! text/CSV equivalents used by the benchmark harness and recorded in
//! `EXPERIMENTS.md`. Everything renders from [`LatencyAgg`] — the same
//! single quantile engine the experiment and sweep layers aggregate with —
//! so a figure drawn from a sketch-mode run carries the sketch's
//! documented rank-error bound, and one drawn from raw samples (which
//! build an exact-mode aggregate) is bit-identical to the historical
//! sample-vector output.

use stats::sketch::LatencyAgg;
use stats::summary::Summary;
use stats::table::{fmt_latency, fmt_ratio, TextTable};

/// Renders a latency CDF as ASCII art with headline stats underneath.
///
/// # Panics
///
/// Panics if `agg` is empty.
pub fn render_cdf(title: &str, agg: &LatencyAgg) -> String {
    assert!(!agg.is_empty(), "CDF of empty aggregate");
    let summary = agg.clone().summary();
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&render_cdf_ascii(agg, 64, 12, true));
    out.push_str(&format!(
        "median {} ms | p99 {} ms | TMR {}\n",
        fmt_latency(summary.median),
        fmt_latency(summary.tail),
        fmt_ratio(summary.tmr),
    ));
    out
}

/// ASCII plot of the aggregate's CDF, `width` columns by `height` rows,
/// with the x-axis spanning `[min, max]` of the samples (log-scaled if
/// `log_x` and all samples are positive). Mirrors
/// [`stats::cdf::Cdf::render_ascii`] column for column — on an exact-mode
/// aggregate the output is identical.
fn render_cdf_ascii(agg: &LatencyAgg, width: usize, height: usize, log_x: bool) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let min = agg.min();
    let max = agg.max();
    let use_log = log_x && min > 0.0 && max > min;
    let to_axis = |x: f64| -> f64 {
        if use_log {
            x.ln()
        } else {
            x
        }
    };
    let (amin, amax) = (to_axis(min), to_axis(max));
    let span = if amax > amin { amax - amin } else { 1.0 };
    let mut grid = vec![vec![' '; width]; height];
    #[allow(clippy::needless_range_loop)] // col drives both the x-axis math and the grid index
    for col in 0..width {
        let ax = amin + span * col as f64 / (width - 1) as f64;
        let x = if use_log { ax.exp() } else { ax };
        let p = agg.cdf(x);
        let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.0 |"
        } else if i == height - 1 {
            "0.0 |"
        } else {
            "    |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     x: [{:.3}, {:.3}]{}\n",
        min,
        max,
        if use_log { " (log scale)" } else { "" }
    ));
    out
}

/// One labelled latency series (e.g. one provider, one burst size).
#[derive(Debug, Clone)]
pub struct Series {
    /// Label shown in tables ("aws", "burst=100", …).
    pub label: String,
    /// The distribution, as the shared quantile engine.
    agg: LatencyAgg,
}

impl Series {
    /// Creates a labelled series from raw samples (held exactly, so
    /// summaries and CSV rows match the sample vector bit for bit).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn new<S: Into<String>>(label: S, samples: Vec<f64>) -> Series {
        assert!(!samples.is_empty(), "series needs samples");
        Series { label: label.into(), agg: LatencyAgg::from_samples(&samples) }
    }

    /// Creates a labelled series from a streamed aggregate — the path
    /// sketch-mode runs use, where no sample vector ever exists.
    ///
    /// # Panics
    ///
    /// Panics if `agg` is empty.
    pub fn from_agg<S: Into<String>>(label: S, agg: LatencyAgg) -> Series {
        assert!(!agg.is_empty(), "series needs samples");
        Series { label: label.into(), agg }
    }

    /// Summary statistics of this series.
    pub fn summary(&self) -> Summary {
        self.agg.clone().summary()
    }

    /// The underlying aggregate.
    pub fn agg(&self) -> &LatencyAgg {
        &self.agg
    }
}

/// Renders a median/p99/TMR comparison table across several series.
pub fn render_comparison(series: &[Series]) -> String {
    let mut table = TextTable::new(vec!["series", "n", "median_ms", "p99_ms", "tmr", "mean_ms"]);
    for s in series {
        let sum = s.summary();
        table.row(vec![
            s.label.clone(),
            sum.count.to_string(),
            fmt_latency(sum.median),
            fmt_latency(sum.tail),
            fmt_ratio(sum.tmr),
            fmt_latency(sum.mean),
        ]);
    }
    table.render()
}

/// Exports series as CSV: one row per (series, quantile) pair, with
/// `points` quantiles per series — the format the paper's CDF figures plot.
pub fn export_cdf_csv(series: &[Series], points: usize) -> String {
    let mut out = String::from("series,quantile,latency_ms\n");
    for s in series {
        for (value, q) in s.agg.clone().quantile_points(points) {
            out.push_str(&format!("{},{q:.4},{value:.3}\n", s.label));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::cdf::Cdf;

    #[test]
    fn cdf_render_contains_stats() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let art = render_cdf("warm", &LatencyAgg::from_samples(&xs));
        assert!(art.contains("== warm =="));
        assert!(art.contains("median"));
        assert!(art.contains("TMR"));
    }

    #[test]
    fn ascii_cdf_matches_sample_based_renderer() {
        // The agg-driven ASCII plot must reproduce Cdf::render_ascii
        // exactly on an exact-mode aggregate — same grid, same footer.
        let xs: Vec<f64> = (1..=500).map(|i| (i as f64).sqrt() * 3.0).collect();
        let agg = LatencyAgg::from_samples(&xs);
        let cdf = Cdf::from_samples(&xs);
        for log_x in [false, true] {
            assert_eq!(render_cdf_ascii(&agg, 64, 12, log_x), cdf.render_ascii(64, 12, log_x));
        }
    }

    #[test]
    fn comparison_table_lists_all_series() {
        let series = vec![
            Series::new("aws", vec![1.0, 2.0, 3.0]),
            Series::new("google", vec![4.0, 5.0, 6.0]),
        ];
        let table = render_comparison(&series);
        assert!(table.contains("aws"));
        assert!(table.contains("google"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn csv_has_expected_rows() {
        let series = vec![Series::new("s", (1..=50).map(f64::from).collect())];
        let csv = export_cdf_csv(&series, 11);
        // Header + 11 quantile rows.
        assert_eq!(csv.lines().count(), 12);
        assert!(csv.starts_with("series,quantile,latency_ms"));
        assert!(csv.contains("s,0.0000,1.000"));
        assert!(csv.contains("s,1.0000,50.000"));
    }

    #[test]
    fn sketch_backed_series_round_trips() {
        let mut agg = LatencyAgg::new();
        for i in 0..20_000u64 {
            agg.record(1.0 + ((i * 31) % 5_000) as f64);
        }
        assert!(agg.sketch().is_sketching());
        let series = Series::from_agg("big", agg);
        let csv = export_cdf_csv(std::slice::from_ref(&series), 21);
        assert_eq!(csv.lines().count(), 22);
        let art = render_cdf("big", series.agg());
        assert!(art.contains("1.0 |"));
    }

    #[test]
    #[should_panic(expected = "series needs samples")]
    fn empty_series_panics() {
        Series::new("x", vec![]);
    }
}
