//! Command execution.

use std::fmt;

use faas_sim::config::ProviderConfig;
use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stats::sketch::QuantileMode;
use stats::svg::{SvgPlot, SvgSeries};
use stellar_core::breakdown::BreakdownAnalysis;
use stellar_core::client::MeasureSpec;
use stellar_core::config::{RuntimeConfig, StaticConfig};
use stellar_core::experiment::Experiment;
use stellar_core::runner::{Scenario, SweepGrid, SweepRunner};
use stellar_core::traceio;
use stellar_core::visualize::{export_cdf_csv, render_cdf, Series};

use crate::args::{Command, RunOptions, SweepOptions, TraceFormat, TraceOptions, USAGE};

/// CLI failures (all user-facing).
#[derive(Debug)]
pub enum CliError {
    /// File IO problem.
    Io(String, std::io::Error),
    /// Configuration parse/validation problem.
    Config(String),
    /// Experiment failure.
    Experiment(stellar_core::experiment::ExperimentError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
            CliError::Config(msg) => write!(f, "configuration error: {msg}"),
            CliError::Experiment(e) => write!(f, "experiment failed: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))
}

fn resolve_provider(name_or_path: &str) -> Result<ProviderConfig, CliError> {
    for kind in ProviderKind::ALL {
        if config_for(kind).name == name_or_path
            || kind.label() == name_or_path
            || format!("{}-like", kind.label()) == name_or_path
        {
            return Ok(config_for(kind));
        }
    }
    // Otherwise treat it as a path to a provider-config JSON.
    let text = read(name_or_path)?;
    let cfg: ProviderConfig = serde_json::from_str(&text)
        .map_err(|e| CliError::Config(format!("{name_or_path}: {e}")))?;
    cfg.validate().map_err(CliError::Config)?;
    Ok(cfg)
}

fn resolve_workload(name_or_path: &str) -> Result<workload::WorkloadSpec, CliError> {
    if let Some(spec) = workload::WorkloadSpec::preset(name_or_path) {
        return Ok(spec);
    }
    let text = read(name_or_path)?;
    workload::WorkloadSpec::from_json(&text)
        .map_err(|e| CliError::Config(format!("{name_or_path}: {e}")))
}

/// Resolves a `--policy` axis entry: `none` is the unmodified baseline,
/// otherwise a preset name or a path to a policy-spec JSON.
fn resolve_policy(name_or_path: &str) -> Result<Option<policy::PolicySpec>, CliError> {
    if name_or_path == "none" {
        return Ok(None);
    }
    if let Some(spec) = policy::PolicySpec::preset(name_or_path) {
        return Ok(Some(spec));
    }
    let text = read(name_or_path)?;
    policy::PolicySpec::from_json(&text)
        .map(Some)
        .map_err(|e| CliError::Config(format!("{name_or_path}: {e}")))
}

/// Short label for a policy axis entry: `none`, the preset name, or the
/// file stem of a spec path.
fn policy_axis_label(name_or_path: &str) -> String {
    if name_or_path == "none" || policy::PolicySpec::preset(name_or_path).is_some() {
        return name_or_path.to_string();
    }
    std::path::Path::new(name_or_path)
        .file_stem()
        .map_or_else(|| name_or_path.to_string(), |s| s.to_string_lossy().into_owned())
}

/// Resolves a `--faults` axis entry: `none` is the fault-free baseline,
/// otherwise a preset name or a path to a fault-spec JSON.
fn resolve_faults(name_or_path: &str) -> Result<Option<faults::FaultSpec>, CliError> {
    if name_or_path == "none" {
        return Ok(None);
    }
    if let Some(spec) = faults::FaultSpec::preset(name_or_path) {
        return Ok(Some(spec));
    }
    let text = read(name_or_path)?;
    faults::FaultSpec::from_json(&text)
        .map(Some)
        .map_err(|e| CliError::Config(format!("{name_or_path}: {e}")))
}

/// Short label for a fault axis entry: `none`, the preset name, or the
/// file stem of a spec path.
fn faults_axis_label(name_or_path: &str) -> String {
    if name_or_path == "none" || faults::FaultSpec::preset(name_or_path).is_some() {
        return name_or_path.to_string();
    }
    std::path::Path::new(name_or_path)
        .file_stem()
        .map_or_else(|| name_or_path.to_string(), |s| s.to_string_lossy().into_owned())
}

/// Resolves an `--app` entry: `none` is the single-function baseline,
/// otherwise a preset name, an inline DAG-spec JSON object, or a path to
/// a DAG-spec JSON file.
fn resolve_app(name_or_path: &str) -> Result<Option<faas_sim::dag::DagSpec>, CliError> {
    if name_or_path == "none" {
        return Ok(None);
    }
    if appsuite::preset(name_or_path).is_some() || name_or_path.trim_start().starts_with('{') {
        return appsuite::resolve(name_or_path).map(Some).map_err(CliError::Config);
    }
    let text = read(name_or_path)?;
    appsuite::from_json(&text)
        .map(Some)
        .map_err(|e| CliError::Config(format!("{name_or_path}: {e}")))
}

/// Short label for an app axis entry: `none`, the preset name, or the
/// file stem of a spec path.
fn app_axis_label(name_or_path: &str) -> String {
    if name_or_path == "none" || appsuite::preset(name_or_path).is_some() {
        return name_or_path.to_string();
    }
    std::path::Path::new(name_or_path)
        .file_stem()
        .map_or_else(|| name_or_path.to_string(), |s| s.to_string_lossy().into_owned())
}

/// Short label for a workload axis entry: the preset name, or the file
/// stem of a spec path.
fn workload_label(name_or_path: &str) -> String {
    if workload::WorkloadSpec::preset(name_or_path).is_some() {
        return name_or_path.to_string();
    }
    std::path::Path::new(name_or_path)
        .file_stem()
        .map_or_else(|| name_or_path.to_string(), |s| s.to_string_lossy().into_owned())
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for IO, configuration or experiment failures.
pub fn execute(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Providers => {
            let mut out = String::from("built-in provider profiles:\n");
            for kind in ProviderKind::ALL {
                let cfg = config_for(kind);
                out.push_str(&format!(
                    "  {:<12} policy={:?} prop_rtt={:.0}ms\n",
                    cfg.name,
                    policy_label(&cfg),
                    kind.prop_one_way_ms() * 2.0,
                ));
            }
            Ok(out)
        }
        Command::DumpProvider(name) => {
            let cfg = resolve_provider(name)?;
            serde_json::to_string_pretty(&cfg).map_err(|e| CliError::Config(e.to_string()))
        }
        Command::SampleConfig => Ok(sample_config()),
        Command::Run(opts) => run(opts),
        Command::Sweep(opts) => sweep(opts),
        Command::Trace(opts) => trace(opts),
    }
}

fn policy_label(cfg: &ProviderConfig) -> &'static str {
    use faas_sim::config::ScalePolicy::*;
    match cfg.scaling.policy {
        PerRequest => "per-request",
        TargetConcurrency { .. } => "target-concurrency",
        Periodic { .. } => "periodic",
        CostAware { .. } => "cost-aware",
    }
}

fn run(opts: &RunOptions) -> Result<String, CliError> {
    let static_cfg = match &opts.static_path {
        Some(path) => StaticConfig::from_json(&read(path)?).map_err(CliError::Config)?,
        None => {
            StaticConfig { functions: vec![stellar_core::config::StaticFunction::python_zip("fn")] }
        }
    };
    let mut runtime_cfg = match &opts.runtime_path {
        Some(path) => RuntimeConfig::from_json(&read(path)?).map_err(CliError::Config)?,
        None => {
            let mut cfg =
                RuntimeConfig::single(stellar_core::config::IatSpec::short(), opts.samples);
            cfg.warmup_rounds = opts.warmup;
            cfg
        }
    };
    if let Some(name) = &opts.workload {
        runtime_cfg.workload = Some(resolve_workload(name)?);
    }
    if let Some(name) = &opts.policy {
        runtime_cfg.policy = resolve_policy(name)?;
    }
    if let Some(name) = &opts.faults {
        runtime_cfg.faults = resolve_faults(name)?;
    }
    let app_spec = match &opts.app {
        Some(name) => resolve_app(name)?,
        None => None,
    };
    let provider = resolve_provider(&opts.provider)?;
    let provider_name = provider.name.clone();

    // The CDF, CSV and SVG figures all render from the streamed
    // aggregate; only the per-component breakdown still needs the raw
    // completion vectors, so sketch mode retains them just for it.
    let needs_samples = opts.breakdown;
    let measure = match opts.quantile_mode {
        QuantileMode::Exact => MeasureSpec::exact(),
        QuantileMode::Sketch => MeasureSpec::sketch().with_keep_samples(needs_samples),
    };
    let mut experiment = Experiment::new(provider)
        .functions(static_cfg)
        .workload(runtime_cfg)
        .seed(opts.seed)
        .queue(opts.queue)
        .measure(measure)
        .profile_events(opts.profile_events);
    if let Some(spec) = app_spec {
        experiment = experiment.app(spec);
    }
    let outcome = experiment.run().map_err(CliError::Experiment)?;

    let mut out = String::new();
    out.push_str(&format!("provider {provider_name}, seed {}: {}\n", opts.seed, outcome.summary));
    out.push_str(&format!("cold-start fraction: {:.1}%\n", outcome.result.cold_fraction() * 100.0));
    // Workload-spec runs report the load they actually offered; legacy
    // IAT runs print exactly the lines they always did.
    if let Some(offered) = &outcome.result.offered {
        out.push_str(&format!(
            "offered load: {} arrivals, {:.2}/s mean, IAT CV {:.2}, \
             peak/mean {:.2}, Fano {:.2}\n",
            offered.arrivals,
            offered.mean_rate_per_s,
            offered.iat_cv,
            offered.peak_to_mean,
            offered.fano,
        ));
    }
    if let Some(ts) = &outcome.transfer_summary {
        out.push_str(&format!("transfers: {ts}\n"));
    }
    // Policy-driven runs report what the policy did and what it cost; a
    // run without --policy prints exactly the lines it always did.
    if let Some(p) = &outcome.result.policy {
        out.push_str(&format!(
            "policy: {} logical requests, {} extra launches ({:.2}/req), \
             {} cancels, {} duplicate successes, {} abandoned\n",
            p.logical,
            p.extra_launches,
            p.hedge_fire_rate(),
            p.cancels,
            p.duplicate_successes,
            p.abandoned,
        ));
        out.push_str(&format!(
            "wasted work: {:.1} ms of {:.1} ms busy time ({:.1}%)\n",
            p.wasted_busy_ms,
            p.used_busy_ms + p.wasted_busy_ms,
            p.wasted_fraction() * 100.0,
        ));
    }
    // Fault-injected runs report what the faults did to the offered load;
    // a run without --faults prints exactly the lines it always did.
    if let Some(f) = &outcome.result.faults {
        out.push_str(&format!(
            "faults: {} of {} requests hit ({} transient, {} crashes, {} shed), \
             {} purged instances, {} deferred boots\n",
            f.injected,
            f.submitted,
            f.transient_errors,
            f.crashes,
            f.shed,
            f.purged_instances,
            f.outage_deferrals,
        ));
        out.push_str(&format!(
            "degradation: availability {:.2}%, {} failed, {} completed, \
             {:.1} ms busy time wasted by crashes\n",
            f.availability() * 100.0,
            f.failed + f.shed,
            f.completed,
            f.wasted_busy_ms,
        ));
        if let Some(p) = &outcome.result.policy {
            out.push_str(&format!(
                "retry amplification: {:.3} attempts per logical request\n",
                p.retry_amplification(),
            ));
        }
    }
    // Workflow runs report the per-stage latency breakdown and the join
    // straggler accounting; a run without --app prints exactly the lines
    // it always did.
    if let Some(d) = &outcome.dag {
        out.push_str(&format!(
            "application {}: {} stages, straggler amplification {:.2}x\n",
            d.app,
            d.stages.len(),
            d.straggler_amplification,
        ));
        out.push_str(&format!(
            "  {:<20} {:>8} {:>12} {:>12}\n",
            "stage", "count", "median_ms", "p99_ms"
        ));
        for s in &d.stages {
            out.push_str(&format!(
                "  {:<20} {:>8} {:>12.3} {:>12.3}\n",
                s.name, s.count, s.median_ms, s.p99_ms,
            ));
        }
        for j in &d.joins {
            out.push_str(&format!(
                "  join {}: fired {}, stragglers {}, branch p99 {:.3} ms, \
                 join p99 {:.3} ms, amplification {:.2}x\n",
                j.stage, j.fired, j.stragglers, j.branch_p99_ms, j.join_p99_ms, j.amplification,
            ));
        }
    }
    if opts.profile_events {
        out.push_str(&render_event_profile(&outcome.metrics));
    }
    if opts.cdf {
        out.push('\n');
        out.push_str(&render_cdf("end-to-end latency (ms)", &outcome.result.latency_agg));
    }
    if opts.breakdown {
        out.push('\n');
        out.push_str(&BreakdownAnalysis::compute(&outcome.result.completions).render());
    }
    if let Some(path) = &opts.csv {
        let csv = export_cdf_csv(
            &[Series::from_agg(provider_name.clone(), outcome.result.latency_agg.clone())],
            101,
        );
        std::fs::write(path, csv).map_err(|e| CliError::Io(path.clone(), e))?;
        out.push_str(&format!("wrote quantile CSV to {path}\n"));
    }
    if let Some(path) = &opts.svg {
        let svg = SvgPlot::cdf(format!("{provider_name} end-to-end latency")).render(&[
            SvgSeries::from_sketch(provider_name, outcome.result.latency_agg.sketch().clone()),
        ]);
        std::fs::write(path, svg).map_err(|e| CliError::Io(path.clone(), e))?;
        out.push_str(&format!("wrote SVG CDF to {path}\n"));
    }
    Ok(out)
}

fn sweep(opts: &SweepOptions) -> Result<String, CliError> {
    let static_cfg = match &opts.static_path {
        Some(path) => Some(StaticConfig::from_json(&read(path)?).map_err(CliError::Config)?),
        None => None,
    };
    let runtime_cfg = match &opts.runtime_path {
        Some(path) => RuntimeConfig::from_json(&read(path)?).map_err(CliError::Config)?,
        None => RuntimeConfig::single(stellar_core::config::IatSpec::short(), opts.samples),
    };
    let scenarios = opts
        .providers
        .iter()
        .map(|name| {
            let provider = resolve_provider(name)?;
            let mut scenario =
                Scenario::new(provider.name.clone(), provider).workload(runtime_cfg.clone());
            if let Some(cfg) = &static_cfg {
                scenario = scenario.functions(cfg.clone());
            }
            Ok(scenario)
        })
        .collect::<Result<Vec<_>, CliError>>()?;
    let seeds: Vec<u64> = (opts.base_seed..opts.base_seed + opts.seeds).collect();
    // The app axis crosses innermost, directly on the provider scenarios,
    // so every other axis composes on top: labels read
    // "{provider}@{app}/{workload}+{policy}~{fault}".
    let apps = opts
        .apps
        .iter()
        .map(|name| Ok((app_axis_label(name), resolve_app(name)?)))
        .collect::<Result<Vec<_>, CliError>>()?;
    let scenarios = if apps.is_empty() {
        scenarios
    } else {
        let aaxis: Vec<(&str, Option<faas_sim::dag::DagSpec>)> =
            apps.iter().map(|(label, spec)| (label.as_str(), spec.clone())).collect();
        SweepGrid::cross_apps(scenarios, &aaxis, seeds.clone()).scenarios
    };
    let workloads = opts
        .workloads
        .iter()
        .map(|name| Ok((workload_label(name), resolve_workload(name)?)))
        .collect::<Result<Vec<_>, CliError>>()?;
    let waxis: Vec<(&str, workload::WorkloadSpec)> =
        workloads.iter().map(|(label, spec)| (label.as_str(), spec.clone())).collect();
    let policies = opts
        .policies
        .iter()
        .map(|name| Ok((policy_axis_label(name), resolve_policy(name)?)))
        .collect::<Result<Vec<_>, CliError>>()?;
    let paxis: Vec<(&str, Option<policy::PolicySpec>)> =
        policies.iter().map(|(label, spec)| (label.as_str(), spec.clone())).collect();
    let fault_specs = opts
        .faults
        .iter()
        .map(|name| Ok((faults_axis_label(name), resolve_faults(name)?)))
        .collect::<Result<Vec<_>, CliError>>()?;
    let faxis: Vec<(&str, Option<faults::FaultSpec>)> =
        fault_specs.iter().map(|(label, spec)| (label.as_str(), spec.clone())).collect();
    let grid = match (waxis.is_empty(), paxis.is_empty()) {
        (true, true) => SweepGrid::new(scenarios, seeds),
        (false, true) => SweepGrid::cross_workloads(scenarios, &waxis, seeds),
        (true, false) => SweepGrid::cross_policies(scenarios, &paxis, seeds),
        (false, false) => {
            // Workload axis first (matching cross_workloads labels), then
            // the policy axis on top: "{provider}/{workload}+{policy}".
            let crossed: Vec<Scenario> = scenarios
                .into_iter()
                .flat_map(|s| {
                    waxis
                        .iter()
                        .map(|(name, spec)| {
                            let mut cell = s.clone();
                            cell.label = format!("{}/{name}", s.label);
                            cell.runtime_cfg.workload = Some(spec.clone());
                            cell
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            SweepGrid::cross_policies(crossed, &paxis, seeds)
        }
    };
    // The fault axis crosses whatever grid the other axes produced:
    // "{provider}[/{workload}][+{policy}]~{fault}".
    let grid = if faxis.is_empty() {
        grid
    } else {
        SweepGrid::cross_faults(grid.scenarios, &faxis, grid.seeds)
    };
    let cells = grid.len();
    let measure = match opts.quantile_mode {
        QuantileMode::Exact => MeasureSpec::exact(),
        QuantileMode::Sketch => MeasureSpec::sketch(),
    };
    let report = SweepRunner::new(opts.threads)
        .queue(opts.queue)
        .measure(measure)
        .profile_events(opts.profile_events)
        .run(&grid);

    // The summary deliberately omits the worker count: the report must be
    // byte-identical however the sweep was parallelised.
    let mut axes = format!("{} providers", opts.providers.len());
    if !opts.apps.is_empty() {
        axes.push_str(&format!(" x {} apps", opts.apps.len()));
    }
    if !opts.workloads.is_empty() {
        axes.push_str(&format!(" x {} workloads", opts.workloads.len()));
    }
    if !opts.policies.is_empty() {
        axes.push_str(&format!(" x {} policies", opts.policies.len()));
    }
    if !opts.faults.is_empty() {
        axes.push_str(&format!(" x {} fault models", opts.faults.len()));
    }
    axes.push_str(&format!(" x {} seeds", opts.seeds));
    let mut out = format!(
        "sweep: {axes} = {} cells ({} ok, {} failed)\n",
        cells,
        report.ok_count(),
        report.failed_count(),
    );
    out.push_str(&format!(
        "requests: {} submitted, {} completed, {} cold starts\n",
        report.metrics.counter(faas_sim::cloud::metric::REQUESTS_SUBMITTED),
        report.metrics.counter(faas_sim::cloud::metric::REQUESTS_COMPLETED),
        report.metrics.counter(faas_sim::cloud::metric::COLD_STARTS),
    ));
    if opts.profile_events {
        out.push_str(&render_event_profile(&report.metrics));
    }
    // App sweeps get the app CSV (extended columns plus join_amp); policy
    // and fault sweeps get the extended CSV (policy outcome,
    // retry-amplification and goodput columns); plain sweeps keep today's
    // byte-identical base CSV.
    let csv = if !opts.apps.is_empty() {
        report.to_csv_app()
    } else if opts.policies.is_empty() && opts.faults.is_empty() {
        report.to_csv()
    } else {
        report.to_csv_extended()
    };
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| CliError::Io(path.clone(), e))?;
            out.push_str(&format!("wrote report CSV to {path}\n"));
        }
        None => {
            out.push('\n');
            out.push_str(&csv);
        }
    }
    Ok(out)
}

/// Renders the per-event-class cost table from the profile counters that
/// [`Experiment`] (or the sweep runner) folded into the metrics registry.
/// The trailing `profile coverage:` line is machine-parseable: per-class
/// dispatch time should account for nearly all of the event-loop wall
/// time, so CI can assert the profiler is neither dropping events nor
/// double-counting.
fn render_event_profile(metrics: &simkit::metrics::Metrics) -> String {
    use faas_sim::cloud::metric::{PROFILE_COUNT, PROFILE_LOOP_NS, PROFILE_NS};
    let loop_ns = metrics.counter(PROFILE_LOOP_NS);
    let mut rows = Vec::new();
    let mut total_count = 0u64;
    let mut total_ns = 0u64;
    for (&count_name, &ns_name) in PROFILE_COUNT.iter().zip(PROFILE_NS.iter()) {
        let count = metrics.counter(count_name);
        if count == 0 {
            continue;
        }
        let ns = metrics.counter(ns_name);
        total_count += count;
        total_ns += ns;
        let class = ns_name.strip_prefix("profile_ns_").unwrap_or(ns_name);
        rows.push((class, count, ns));
    }
    // Most expensive class first; the table is for finding hot spots.
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let mut out = String::from("\nper-event cost (dispatch wall time by event class):\n");
    out.push_str(&format!(
        "  {:<16} {:>12} {:>12} {:>10} {:>7}\n",
        "class", "events", "total_ms", "ns/event", "share"
    ));
    for (class, count, ns) in rows {
        let share = if total_ns == 0 { 0.0 } else { ns as f64 / total_ns as f64 * 100.0 };
        out.push_str(&format!(
            "  {:<16} {:>12} {:>12.3} {:>10.0} {:>6.1}%\n",
            class,
            count,
            ns as f64 / 1e6,
            ns as f64 / count as f64,
            share,
        ));
    }
    out.push_str(&format!(
        "  {:<16} {:>12} {:>12.3}\n",
        "total",
        total_count,
        total_ns as f64 / 1e6,
    ));
    // With no timed dispatches there is nothing to cover; report 100% so
    // the CI bound (90-110%) treats an empty run as healthy.
    let coverage = if loop_ns == 0 { 100.0 } else { total_ns as f64 / loop_ns as f64 * 100.0 };
    out.push_str(&format!(
        "profile coverage: {coverage:.1}% of {:.3} ms event-loop wall time\n",
        loop_ns as f64 / 1e6,
    ));
    out
}

fn trace(opts: &TraceOptions) -> Result<String, CliError> {
    let provider = resolve_provider(&opts.provider)?;
    let provider_name = provider.name.clone();
    let mut experiment = Experiment::new(provider).seed(opts.seed).trace(opts.capacity);
    if let Some(path) = &opts.static_path {
        experiment =
            experiment.functions(StaticConfig::from_json(&read(path)?).map_err(CliError::Config)?);
    }
    if let Some(path) = &opts.runtime_path {
        experiment =
            experiment.workload(RuntimeConfig::from_json(&read(path)?).map_err(CliError::Config)?);
    }
    let outcome = experiment.run().map_err(CliError::Experiment)?;
    let (label, export) = match opts.format {
        TraceFormat::Jsonl => ("jsonl", traceio::to_jsonl(&outcome.spans)),
        TraceFormat::Csv => ("csv", traceio::to_csv(&outcome.spans)),
    };
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &export).map_err(|e| CliError::Io(path.clone(), e))?;
            Ok(format!(
                "provider {provider_name}, seed {}: wrote {} spans to {path} \
                 ({label}, digest {:016x})\n",
                opts.seed,
                outcome.spans.len(),
                traceio::digest64(&export),
            ))
        }
        None => Ok(export),
    }
}

fn sample_config() -> String {
    let static_json = r#"{
  "functions": [
    { "name": "api", "runtime": "python3", "deployment": "zip",
      "memory_mb": 2048, "replicas": 4 }
  ]
}"#;
    let runtime_json = r#"{
  "iat": { "kind": "fixed", "ms": 3000.0 },
  "burst_size": 1,
  "samples": 3000,
  "warmup_rounds": 2,
  "exec_ms": 0.0
}"#;
    format!(
        "# static configuration (save as fns.json):\n{static_json}\n\n\
         # runtime configuration (save as load.json):\n{runtime_json}\n\n\
         # then: stellar run --static fns.json --runtime load.json --cdf\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::engine::QueueKind;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("stellar-cli-test-{name}"));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_providers_and_dump() {
        assert!(execute(&Command::Help).unwrap().contains("USAGE"));
        let providers = execute(&Command::Providers).unwrap();
        assert!(providers.contains("aws-like"));
        assert!(providers.contains("per-request"));
        let dump = execute(&Command::DumpProvider("azure-like".into())).unwrap();
        assert!(dump.contains("\"periodic\""));
        assert!(execute(&Command::DumpProvider("nope".into())).is_err());
    }

    #[test]
    fn sample_config_round_trips() {
        let text = execute(&Command::SampleConfig).unwrap();
        let static_part = text
            .split("# static configuration (save as fns.json):\n")
            .nth(1)
            .unwrap()
            .split("\n\n#")
            .next()
            .unwrap();
        assert!(StaticConfig::from_json(static_part).is_ok());
    }

    #[test]
    fn run_end_to_end_with_exports() {
        let static_path = write_temp(
            "static.json",
            r#"{"functions": [{"name": "f", "runtime": "go", "deployment": "zip", "memory_mb": 2048}]}"#,
        );
        let runtime_path = write_temp(
            "runtime.json",
            r#"{"iat": {"kind": "fixed", "ms": 1000.0}, "samples": 40, "warmup_rounds": 1}"#,
        );
        let csv_path = write_temp("out.csv", "");
        let svg_path = write_temp("out.svg", "");
        let opts = RunOptions {
            static_path: Some(static_path),
            runtime_path: Some(runtime_path),
            workload: None,
            policy: None,
            faults: None,
            app: None,
            samples: 100,
            warmup: 0,
            provider: "google-like".into(),
            seed: 3,
            breakdown: true,
            cdf: true,
            csv: Some(csv_path.clone()),
            svg: Some(svg_path.clone()),
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let out = execute(&Command::Run(opts)).unwrap();
        assert!(out.contains("provider google-like"));
        assert!(out.contains("per-component attribution"));
        assert!(out.contains("median"));
        let csv = std::fs::read_to_string(csv_path).unwrap();
        assert!(csv.starts_with("series,quantile,latency_ms"));
        let svg = std::fs::read_to_string(svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn run_sketch_mode_streams_without_samples() {
        let static_path = write_temp(
            "sketch-static.json",
            r#"{"functions": [{"name": "f", "runtime": "go", "deployment": "zip", "memory_mb": 2048}]}"#,
        );
        let runtime_path = write_temp(
            "sketch-runtime.json",
            r#"{"iat": {"kind": "fixed", "ms": 1000.0}, "samples": 40, "warmup_rounds": 1}"#,
        );
        let opts = RunOptions {
            static_path: Some(static_path),
            runtime_path: Some(runtime_path),
            workload: None,
            policy: None,
            faults: None,
            app: None,
            samples: 100,
            warmup: 0,
            provider: "aws-like".into(),
            seed: 3,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Sketch,
            profile_events: false,
        };
        let out = execute(&Command::Run(opts.clone())).unwrap();
        assert!(out.contains("provider aws-like"), "{out}");
        assert!(out.contains("median"), "{out}");
        assert!(out.contains("cold-start fraction"), "{out}");

        // The CDF renders straight from the streamed aggregate — no
        // sample retention needed even in sketch mode.
        let with_cdf = execute(&Command::Run(RunOptions { cdf: true, ..opts })).unwrap();
        assert!(with_cdf.contains("end-to-end latency"), "{with_cdf}");
    }

    #[test]
    fn run_profile_events_prints_cost_table_without_changing_results() {
        let base = RunOptions {
            static_path: None,
            runtime_path: None,
            workload: Some("poisson".into()),
            policy: None,
            faults: None,
            app: None,
            samples: 40,
            warmup: 2,
            provider: "aws-like".into(),
            seed: 9,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Adaptive,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let plain = execute(&Command::Run(base.clone())).unwrap();
        assert!(!plain.contains("per-event cost"), "{plain}");

        let profiled = execute(&Command::Run(RunOptions { profile_events: true, ..base })).unwrap();
        assert!(profiled.contains("per-event cost"), "{profiled}");
        assert!(profiled.contains("profile coverage:"), "{profiled}");
        assert!(profiled.contains("frontend_arrive"), "{profiled}");
        // Profiling observes; every result line must be unchanged.
        assert!(profiled.starts_with(&plain), "profiling must only append:\n{profiled}");

        // The sweep path aggregates the same counters across cells.
        let sweep = execute(&Command::Sweep(SweepOptions {
            static_path: None,
            runtime_path: None,
            providers: vec!["aws-like".into()],
            seeds: 2,
            base_seed: 0,
            samples: 20,
            workloads: vec![],
            policies: vec![],
            faults: vec![],
            apps: vec![],
            threads: 1,
            out: None,
            queue: QueueKind::Adaptive,
            quantile_mode: QuantileMode::Exact,
            profile_events: true,
        }))
        .unwrap();
        assert!(sweep.contains("per-event cost"), "{sweep}");
        assert!(sweep.contains("profile coverage:"), "{sweep}");
    }

    #[test]
    fn trace_exports_jsonl_and_csv() {
        let base = TraceOptions {
            static_path: None,
            runtime_path: Some(write_temp(
                "trace-runtime.json",
                r#"{"iat": {"kind": "fixed", "ms": 1000.0}, "samples": 10, "warmup_rounds": 1}"#,
            )),
            provider: "aws-like".into(),
            seed: 7,
            format: TraceFormat::Jsonl,
            out: None,
            capacity: 4096,
        };
        let jsonl = execute(&Command::Trace(base.clone())).unwrap();
        assert!(jsonl.lines().count() > 10, "one span per line");
        assert!(jsonl.lines().all(|l| l.starts_with("{\"span_id\":")));
        assert!(jsonl.contains("\"component\":\"request\""));
        assert!(jsonl.contains("\"component\":\"execution\""));

        let out_path = write_temp("trace-out.csv", "");
        let opts = TraceOptions { format: TraceFormat::Csv, out: Some(out_path.clone()), ..base };
        let msg = execute(&Command::Trace(opts)).unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        assert!(msg.contains("digest"));
        let csv = std::fs::read_to_string(out_path).unwrap();
        assert!(csv.starts_with("span_id,parent,request,component,start_ns,end_ns"));
    }

    #[test]
    fn sweep_output_is_byte_identical_across_thread_counts() {
        // 3 providers x 4 seeds = 12 cells; the merged report (summary +
        // CSV) must not depend on how many workers executed the grid.
        let base = SweepOptions {
            static_path: None,
            runtime_path: None,
            providers: vec!["aws-like".into(), "google-like".into(), "azure-like".into()],
            seeds: 4,
            base_seed: 0,
            samples: 40,
            workloads: vec![],
            policies: vec![],
            faults: vec![],
            apps: vec![],
            threads: 1,
            out: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let serial = execute(&Command::Sweep(base.clone())).unwrap();
        let threaded =
            execute(&Command::Sweep(SweepOptions { threads: 4, ..base.clone() })).unwrap();
        assert_eq!(serial, threaded, "sweep output must not depend on worker count");
        assert!(serial.contains("3 providers x 4 seeds = 12 cells (12 ok, 0 failed)"));
        assert!(serial.contains("cell,scenario,seed,status"));
        assert!(serial.contains("0,aws-like,0,ok,40,"));
        assert!(serial.contains("11,azure-like,3,ok,40,"));

        // The queue backend is a pure performance knob: binary-heap output
        // must be byte-identical to the calendar default.
        let heap =
            execute(&Command::Sweep(SweepOptions { queue: QueueKind::BinaryHeap, ..base.clone() }))
                .unwrap();
        assert_eq!(serial, heap, "queue backend must not change results");

        // Sketch mode streams through aggregates; below the exact-mode
        // threshold its quantiles (and therefore the CSV) match exactly.
        let sketch =
            execute(&Command::Sweep(SweepOptions { quantile_mode: QuantileMode::Sketch, ..base }))
                .unwrap();
        assert_eq!(serial, sketch, "small sketch-mode sweeps stay exact");
    }

    #[test]
    fn sweep_writes_csv_report_to_file() {
        let out_path = write_temp("sweep-report.csv", "");
        let opts = SweepOptions {
            static_path: None,
            runtime_path: Some(write_temp(
                "sweep-runtime.json",
                r#"{"iat": {"kind": "fixed", "ms": 1000.0}, "samples": 10, "warmup_rounds": 1}"#,
            )),
            providers: vec!["aws-like".into()],
            seeds: 2,
            base_seed: 5,
            samples: 100,
            workloads: vec![],
            policies: vec![],
            faults: vec![],
            apps: vec![],
            threads: 0,
            out: Some(out_path.clone()),
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let msg = execute(&Command::Sweep(opts)).unwrap();
        assert!(msg.contains("wrote report CSV"), "{msg}");
        let csv = std::fs::read_to_string(out_path).unwrap();
        assert!(csv.starts_with("cell,scenario,seed,status"));
        assert_eq!(csv.lines().count(), 3, "header plus one row per cell");
        assert!(csv.contains("0,aws-like,5,ok,10,"));
    }

    #[test]
    fn run_reports_config_errors() {
        let static_path = write_temp("bad-static.json", r#"{"functions": []}"#);
        let runtime_path = write_temp(
            "ok-runtime.json",
            r#"{"iat": {"kind": "fixed", "ms": 1000.0}, "samples": 5}"#,
        );
        let opts = RunOptions {
            static_path: Some(static_path),
            runtime_path: Some(runtime_path),
            workload: None,
            policy: None,
            faults: None,
            app: None,
            samples: 100,
            warmup: 0,
            provider: "aws-like".into(),
            seed: 0,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let err = execute(&Command::Run(opts)).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
    }

    #[test]
    fn missing_files_error() {
        let opts = RunOptions {
            static_path: Some("/nonexistent/s.json".into()),
            runtime_path: Some("/nonexistent/r.json".into()),
            workload: None,
            policy: None,
            faults: None,
            app: None,
            samples: 100,
            warmup: 0,
            provider: "aws-like".into(),
            seed: 0,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        assert!(matches!(execute(&Command::Run(opts)).unwrap_err(), CliError::Io(..)));
    }

    #[test]
    fn provider_from_json_file() {
        let cfg = config_for(ProviderKind::Aws);
        let path = write_temp("provider.json", &serde_json::to_string(&cfg).unwrap());
        let resolved = resolve_provider(&path).unwrap();
        assert_eq!(resolved.name, "aws-like");
    }

    #[test]
    fn run_with_workload_preset_reports_offered_load() {
        let opts = RunOptions {
            static_path: None,
            runtime_path: None,
            workload: Some("mmpp-burst".into()),
            policy: None,
            faults: None,
            app: None,
            samples: 60,
            warmup: 5,
            provider: "aws-like".into(),
            seed: 11,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let out = execute(&Command::Run(opts)).unwrap();
        assert!(out.contains("provider aws-like"), "{out}");
        assert!(out.contains("offered load: 65 arrivals"), "{out}");
        assert!(out.contains("Fano"), "{out}");
    }

    #[test]
    fn run_with_workload_file_resolves_spec_json() {
        let spec_path = write_temp(
            "workload-spec.json",
            r#"{"arrival": {"kind": "exponential", "mean_ms": 100.0}}"#,
        );
        let opts = RunOptions {
            static_path: None,
            runtime_path: None,
            workload: Some(spec_path),
            policy: None,
            faults: None,
            app: None,
            samples: 30,
            warmup: 0,
            provider: "aws-like".into(),
            seed: 2,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let out = execute(&Command::Run(opts)).unwrap();
        assert!(out.contains("offered load: 30 arrivals"), "{out}");
        assert!(execute(&Command::Run(RunOptions {
            workload: Some("no-such-preset-or-file".into()),
            static_path: None,
            runtime_path: None,
            policy: None,
            faults: None,
            app: None,
            samples: 10,
            warmup: 0,
            provider: "aws-like".into(),
            seed: 0,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        }))
        .is_err());
    }

    #[test]
    fn sweep_workload_axis_is_byte_identical_across_threads() {
        let base = SweepOptions {
            static_path: None,
            runtime_path: None,
            providers: vec!["aws-like".into(), "azure-like".into()],
            seeds: 2,
            base_seed: 0,
            samples: 25,
            workloads: vec!["poisson".into(), "mmpp-burst".into()],
            policies: vec![],
            faults: vec![],
            apps: vec![],
            threads: 1,
            out: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let serial = execute(&Command::Sweep(base.clone())).unwrap();
        let threaded =
            execute(&Command::Sweep(SweepOptions { threads: 4, ..base.clone() })).unwrap();
        assert_eq!(serial, threaded, "workload sweep must not depend on worker count");
        assert!(serial.contains("2 providers x 2 workloads x 2 seeds = 8 cells (8 ok, 0 failed)"));
        assert!(serial.contains("aws-like/mmpp-burst"), "{serial}");
        assert!(serial.contains("azure-like/poisson"), "{serial}");

        // The queue backend stays a pure performance knob for spec runs.
        let heap = execute(&Command::Sweep(SweepOptions { queue: QueueKind::BinaryHeap, ..base }))
            .unwrap();
        assert_eq!(serial, heap, "queue backend must not change workload-sweep results");
    }

    #[test]
    fn run_with_policy_reports_policy_lines_and_none_is_baseline() {
        let base = RunOptions {
            static_path: None,
            runtime_path: None,
            workload: Some("poisson".into()),
            policy: None,
            faults: None,
            app: None,
            samples: 30,
            warmup: 2,
            provider: "aws-like".into(),
            seed: 5,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let plain = execute(&Command::Run(base.clone())).unwrap();
        assert!(!plain.contains("policy:"), "{plain}");

        // `--policy none` is the baseline: byte-identical to no flag.
        let none =
            execute(&Command::Run(RunOptions { policy: Some("none".into()), ..base.clone() }))
                .unwrap();
        assert_eq!(plain, none, "--policy none must not change the run");

        let tied =
            execute(&Command::Run(RunOptions { policy: Some("tied-2".into()), ..base.clone() }))
                .unwrap();
        assert!(tied.contains("policy: 32 logical requests, 32 extra launches"), "{tied}");
        assert!(tied.contains("wasted work:"), "{tied}");

        // Unknown preset that is not a file errors cleanly.
        assert!(execute(&Command::Run(RunOptions {
            policy: Some("no-such-policy".into()),
            ..base
        }))
        .is_err());
    }

    #[test]
    fn sweep_policy_axis_is_byte_identical_across_threads() {
        let base = SweepOptions {
            static_path: None,
            runtime_path: None,
            providers: vec!["aws-like".into()],
            seeds: 2,
            base_seed: 0,
            samples: 25,
            workloads: vec![],
            policies: vec!["none".into(), "tied-2".into()],
            faults: vec![],
            apps: vec![],
            threads: 1,
            out: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let serial = execute(&Command::Sweep(base.clone())).unwrap();
        let threaded =
            execute(&Command::Sweep(SweepOptions { threads: 4, ..base.clone() })).unwrap();
        assert_eq!(serial, threaded, "policy sweep must not depend on worker count");
        assert!(serial.contains("1 providers x 2 policies x 2 seeds = 4 cells (4 ok, 0 failed)"));
        assert!(serial.contains("p999_ms,hedge_rate,wasted_fraction"), "{serial}");
        assert!(serial.contains("aws-like+none"), "{serial}");
        assert!(serial.contains("aws-like+tied-2"), "{serial}");

        // Policies compose with the workload axis.
        let both =
            execute(&Command::Sweep(SweepOptions { workloads: vec!["poisson".into()], ..base }))
                .unwrap();
        assert!(both.contains("1 providers x 1 workloads x 2 policies x 2 seeds"), "{both}");
        assert!(both.contains("aws-like/poisson+tied-2"), "{both}");
    }

    #[test]
    fn run_with_faults_reports_fault_lines_and_none_is_baseline() {
        let base = RunOptions {
            static_path: None,
            runtime_path: None,
            workload: Some("poisson".into()),
            policy: None,
            faults: None,
            app: None,
            samples: 60,
            warmup: 2,
            provider: "aws-like".into(),
            seed: 5,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let plain = execute(&Command::Run(base.clone())).unwrap();
        assert!(!plain.contains("faults:"), "{plain}");

        // `--faults none` is the baseline: byte-identical to no flag.
        let none =
            execute(&Command::Run(RunOptions { faults: Some("none".into()), ..base.clone() }))
                .unwrap();
        assert_eq!(plain, none, "--faults none must not change the run");

        let throttled = execute(&Command::Run(RunOptions {
            faults: Some("throttle-5pct".into()),
            ..base.clone()
        }))
        .unwrap();
        assert!(throttled.contains("faults:"), "{throttled}");
        assert!(throttled.contains("degradation: availability"), "{throttled}");

        // Retrying policies report their amplification under faults.
        let retried = execute(&Command::Run(RunOptions {
            faults: Some("throttle-5pct".into()),
            policy: Some("retry-backoff".into()),
            ..base.clone()
        }))
        .unwrap();
        assert!(retried.contains("retry amplification:"), "{retried}");

        // Unknown preset that is not a file errors cleanly.
        assert!(execute(&Command::Run(RunOptions {
            faults: Some("no-such-fault-model".into()),
            ..base
        }))
        .is_err());
    }

    #[test]
    fn sweep_faults_axis_is_byte_identical_across_threads() {
        let base = SweepOptions {
            static_path: None,
            runtime_path: None,
            providers: vec!["aws-like".into()],
            seeds: 2,
            base_seed: 0,
            samples: 25,
            workloads: vec![],
            policies: vec![],
            faults: vec!["none".into(), "throttle-5pct".into()],
            apps: vec![],
            threads: 1,
            out: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let serial = execute(&Command::Sweep(base.clone())).unwrap();
        let threaded =
            execute(&Command::Sweep(SweepOptions { threads: 4, ..base.clone() })).unwrap();
        assert_eq!(serial, threaded, "fault sweep must not depend on worker count");
        assert!(
            serial.contains("1 providers x 2 fault models x 2 seeds = 4 cells (4 ok, 0 failed)"),
            "{serial}"
        );
        assert!(serial.contains("retry_amp,goodput"), "{serial}");
        assert!(serial.contains("aws-like~none"), "{serial}");
        assert!(serial.contains("aws-like~throttle-5pct"), "{serial}");

        // Faults compose with the policy axis: "{provider}+{policy}~{fault}".
        let both =
            execute(&Command::Sweep(SweepOptions { policies: vec!["tied-2".into()], ..base }))
                .unwrap();
        assert!(both.contains("1 providers x 1 policies x 2 fault models x 2 seeds"), "{both}");
        assert!(both.contains("aws-like+tied-2~throttle-5pct"), "{both}");
    }

    #[test]
    fn run_with_app_reports_stage_breakdown_and_none_is_baseline() {
        let base = RunOptions {
            static_path: None,
            runtime_path: None,
            workload: Some("poisson".into()),
            policy: None,
            faults: None,
            app: None,
            samples: 30,
            warmup: 2,
            provider: "aws-like".into(),
            seed: 5,
            breakdown: false,
            cdf: false,
            csv: None,
            svg: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let plain = execute(&Command::Run(base.clone())).unwrap();
        assert!(!plain.contains("application"), "{plain}");

        // `--app none` is the baseline: byte-identical to no flag.
        let none = execute(&Command::Run(RunOptions { app: Some("none".into()), ..base.clone() }))
            .unwrap();
        assert_eq!(plain, none, "--app none must not change the run");

        let fan = execute(&Command::Run(RunOptions {
            app: Some("scatter-gather".into()),
            ..base.clone()
        }))
        .unwrap();
        assert!(fan.contains("application scatter-gather"), "{fan}");
        assert!(fan.contains("straggler amplification"), "{fan}");
        assert!(fan.contains("join gather:"), "{fan}");
        assert!(fan.contains("median_ms"), "{fan}");

        // Every preset resolves; an unknown name that is not a file errors.
        for name in appsuite::preset_names() {
            assert!(resolve_app(name).unwrap().is_some(), "{name} must resolve");
        }
        assert!(
            execute(&Command::Run(RunOptions { app: Some("no-such-app".into()), ..base })).is_err()
        );
    }

    #[test]
    fn sweep_app_axis_is_byte_identical_across_threads() {
        let base = SweepOptions {
            static_path: None,
            runtime_path: None,
            providers: vec!["aws-like".into()],
            seeds: 2,
            base_seed: 0,
            samples: 20,
            workloads: vec![],
            policies: vec![],
            faults: vec![],
            apps: vec!["none".into(), "thumbnail".into()],
            threads: 1,
            out: None,
            queue: QueueKind::Calendar,
            quantile_mode: QuantileMode::Exact,
            profile_events: false,
        };
        let serial = execute(&Command::Sweep(base.clone())).unwrap();
        let threaded =
            execute(&Command::Sweep(SweepOptions { threads: 4, ..base.clone() })).unwrap();
        assert_eq!(serial, threaded, "app sweep must not depend on worker count");
        assert!(
            serial.contains("1 providers x 2 apps x 2 seeds = 4 cells (4 ok, 0 failed)"),
            "{serial}"
        );
        assert!(serial.contains("join_amp"), "{serial}");
        assert!(serial.contains("aws-like@none"), "{serial}");
        assert!(serial.contains("aws-like@thumbnail"), "{serial}");

        // Apps compose with the workload axis: "{provider}@{app}/{workload}".
        let both =
            execute(&Command::Sweep(SweepOptions { workloads: vec!["poisson".into()], ..base }))
                .unwrap();
        assert!(both.contains("1 providers x 2 apps x 1 workloads x 2 seeds"), "{both}");
        assert!(both.contains("aws-like@thumbnail/poisson"), "{both}");
    }
}
