//! Parallel experiment grid execution.
//!
//! The paper's methodology (§V) sweeps burst sizes × payload sizes ×
//! providers × IATs — an embarrassingly parallel grid of independent
//! `(scenario, seed)` cells. [`SweepRunner`] executes such a grid across a
//! pool of scoped worker threads while preserving the determinism contract
//! the rest of the stack guarantees:
//!
//! * **Work stealing** — workers claim cells from a shared atomic cursor,
//!   so a slow cell (a long cold-start sweep, say) never idles the pool.
//! * **Deterministic merge** — results are keyed by cell index and merged
//!   in index order, so the report is byte-identical regardless of worker
//!   count or completion interleaving.
//! * **Panic isolation** — each cell runs under `catch_unwind`; a failing
//!   cell becomes an error row instead of killing the sweep.
//! * **Progress counters** — the merged [`simkit::metrics::Metrics`]
//!   registry carries `sweep_cells_*` counters plus the summed lifecycle
//!   counters of every successful cell.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use faas_sim::config::ProviderConfig;
use simkit::engine::QueueKind;
use simkit::metrics::Metrics;
use stats::sketch::LatencyAgg;
use stats::Summary;

use crate::client::MeasureSpec;
use crate::config::{RuntimeConfig, StaticConfig};
use crate::experiment::{Experiment, Outcome};

/// Counter names published by the sweep runner.
pub mod counter {
    /// Cells in the grid.
    pub const CELLS_TOTAL: &str = "sweep_cells_total";
    /// Cells that produced a summary.
    pub const CELLS_OK: &str = "sweep_cells_ok";
    /// Cells that errored or panicked.
    pub const CELLS_FAILED: &str = "sweep_cells_failed";
}

/// One named experiment configuration; crossed with every seed in a
/// [`SweepGrid`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Label used in report rows (e.g. the provider name).
    pub label: String,
    /// Provider profile the cell simulates.
    pub provider: ProviderConfig,
    /// Deployer configuration.
    pub static_cfg: StaticConfig,
    /// Client workload configuration.
    pub runtime_cfg: RuntimeConfig,
    /// Application workflow; `None` runs the static function set.
    pub dag: Option<faas_sim::dag::DagSpec>,
}

impl Scenario {
    /// A scenario with the [`Experiment`] defaults (one Python ZIP
    /// function, 100 single invocations at the short IAT).
    pub fn new<S: Into<String>>(label: S, provider: ProviderConfig) -> Scenario {
        Scenario {
            label: label.into(),
            provider,
            static_cfg: StaticConfig {
                functions: vec![crate::config::StaticFunction::python_zip("fn")],
            },
            runtime_cfg: RuntimeConfig::single(crate::config::IatSpec::short(), 100),
            dag: None,
        }
    }

    /// Attaches an application workflow (consuming): the cell deploys
    /// `spec`'s DAG and drives its root instead of the static function
    /// set (see [`Experiment::app`]).
    pub fn app(mut self, spec: faas_sim::dag::DagSpec) -> Scenario {
        self.dag = Some(spec);
        self
    }

    /// Replaces the static (deployer) configuration.
    pub fn functions(mut self, cfg: StaticConfig) -> Scenario {
        self.static_cfg = cfg;
        self
    }

    /// Replaces the runtime (client) configuration.
    pub fn workload(mut self, cfg: RuntimeConfig) -> Scenario {
        self.runtime_cfg = cfg;
        self
    }

    /// Attaches a workload model to the scenario's runtime configuration
    /// (consuming): the cell runs `spec`'s arrival process and loop mode
    /// instead of the legacy fixed-IAT rounds.
    pub fn arrival(mut self, spec: workload::WorkloadSpec) -> Scenario {
        self.runtime_cfg.workload = Some(spec);
        self
    }

    /// Attaches a tail-tolerance policy to the scenario's runtime
    /// configuration (consuming): every logical request in the cell is
    /// driven by the policy's state machine.
    pub fn policy(mut self, spec: policy::PolicySpec) -> Scenario {
        self.runtime_cfg.policy = Some(spec);
        self
    }

    /// Attaches a fault-injection schedule to the scenario's runtime
    /// configuration (consuming): the cell's cloud injects provider
    /// errors, crashes, purge storms, outages and brownouts per `spec`.
    pub fn faults(mut self, spec: faults::FaultSpec) -> Scenario {
        self.runtime_cfg.faults = Some(spec);
        self
    }
}

/// A scenarios × seeds experiment grid, laid out scenario-major: cell
/// `i` is `(scenarios[i / seeds.len()], seeds[i % seeds.len()])`.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// The scenarios (rows of the grid).
    pub scenarios: Vec<Scenario>,
    /// The seeds (columns of the grid).
    pub seeds: Vec<u64>,
}

impl SweepGrid {
    /// Builds a grid from scenarios and seeds.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    pub fn new(scenarios: Vec<Scenario>, seeds: Vec<u64>) -> SweepGrid {
        assert!(!scenarios.is_empty(), "sweep grid needs at least one scenario");
        assert!(!seeds.is_empty(), "sweep grid needs at least one seed");
        SweepGrid { scenarios, seeds }
    }

    /// Number of cells (scenarios × seeds).
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// Whether the grid has no cells (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cell(&self, index: usize) -> (&Scenario, u64) {
        (&self.scenarios[index / self.seeds.len()], self.seeds[index % self.seeds.len()])
    }

    /// Builds a grid with the workload model as an explicit sweep axis:
    /// every scenario is crossed with every named workload, producing
    /// `scenarios × workloads × seeds` cells labelled
    /// `"{scenario}/{workload}"`.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty.
    pub fn cross_workloads(
        scenarios: Vec<Scenario>,
        workloads: &[(&str, workload::WorkloadSpec)],
        seeds: Vec<u64>,
    ) -> SweepGrid {
        assert!(!workloads.is_empty(), "sweep grid needs at least one workload");
        let crossed = scenarios
            .into_iter()
            .flat_map(|s| {
                workloads.iter().map(move |(name, spec)| {
                    let mut cell = s.clone();
                    cell.label = format!("{}/{name}", s.label);
                    cell.runtime_cfg.workload = Some(spec.clone());
                    cell
                })
            })
            .collect();
        SweepGrid::new(crossed, seeds)
    }

    /// Builds a grid with the application workflow as an explicit sweep
    /// axis: every scenario is crossed with every named app, producing
    /// `scenarios × apps × seeds` cells labelled `"{scenario}@{app}"`.
    /// A `None` app is the static-function baseline, labelled
    /// `"{scenario}@none"`.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty.
    pub fn cross_apps(
        scenarios: Vec<Scenario>,
        apps: &[(&str, Option<faas_sim::dag::DagSpec>)],
        seeds: Vec<u64>,
    ) -> SweepGrid {
        assert!(!apps.is_empty(), "sweep grid needs at least one app");
        let crossed = scenarios
            .into_iter()
            .flat_map(|s| {
                apps.iter().map(move |(name, spec)| {
                    let mut cell = s.clone();
                    cell.label = format!("{}@{name}", s.label);
                    cell.dag = spec.clone();
                    cell
                })
            })
            .collect();
        SweepGrid::new(crossed, seeds)
    }

    /// Builds a grid with the tail-tolerance policy as an explicit sweep
    /// axis: every scenario is crossed with every named policy, producing
    /// `scenarios × policies × seeds` cells labelled
    /// `"{scenario}+{policy}"`. A `None` policy is the unmodified
    /// baseline, labelled `"{scenario}+none"`.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty.
    pub fn cross_policies(
        scenarios: Vec<Scenario>,
        policies: &[(&str, Option<policy::PolicySpec>)],
        seeds: Vec<u64>,
    ) -> SweepGrid {
        assert!(!policies.is_empty(), "sweep grid needs at least one policy");
        let crossed = scenarios
            .into_iter()
            .flat_map(|s| {
                policies.iter().map(move |(name, spec)| {
                    let mut cell = s.clone();
                    cell.label = format!("{}+{name}", s.label);
                    cell.runtime_cfg.policy = spec.clone();
                    cell
                })
            })
            .collect();
        SweepGrid::new(crossed, seeds)
    }

    /// Builds a grid with the fault schedule as an explicit sweep axis:
    /// every scenario is crossed with every named fault spec, producing
    /// `scenarios × faults × seeds` cells labelled
    /// `"{scenario}~{faults}"`. A `None` spec is the unperturbed
    /// baseline, labelled `"{scenario}~none"`.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty.
    pub fn cross_faults(
        scenarios: Vec<Scenario>,
        faults: &[(&str, Option<faults::FaultSpec>)],
        seeds: Vec<u64>,
    ) -> SweepGrid {
        assert!(!faults.is_empty(), "sweep grid needs at least one fault schedule");
        let crossed = scenarios
            .into_iter()
            .flat_map(|s| {
                faults.iter().map(move |(name, spec)| {
                    let mut cell = s.clone();
                    cell.label = format!("{}~{name}", s.label);
                    cell.runtime_cfg.faults = spec.clone();
                    cell
                })
            })
            .collect();
        SweepGrid::new(crossed, seeds)
    }
}

/// Tail-tolerance outcomes a policy-driven cell adds to its row.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCellStats {
    /// 99.9th percentile end-to-end latency of winners, ms.
    pub p999_ms: f64,
    /// Extra attempts launched per logical request.
    pub hedge_rate: f64,
    /// Fraction of consumed instance time thrown away, in `[0, 1]`.
    pub wasted_fraction: f64,
    /// Attempts that completed after their request was already won.
    pub duplicate_successes: u64,
    /// Logical requests abandoned by a deadline.
    pub abandoned: u64,
}

/// The statistics a successful cell contributes to the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Measured samples.
    pub count: usize,
    /// Median end-to-end latency, ms.
    pub median_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile (the paper's tail), ms.
    pub p99_ms: f64,
    /// Tail-to-median ratio.
    pub tmr: f64,
    /// Fraction of measured completions that waited on a cold start.
    pub cold_fraction: f64,
    /// Policy outcomes; `None` unless the cell ran a tail-tolerance
    /// policy.
    pub policy: Option<PolicyCellStats>,
    /// Attempts issued per logical request, ≥ 1.0
    /// ([`policy::PolicyStats::retry_amplification`]); `None` unless the
    /// cell ran a policy.
    pub retry_amp: Option<f64>,
    /// Fraction of fault-terminal requests that completed successfully
    /// ([`faults::FaultStats::availability`]); `None` unless the cell
    /// ran a fault schedule.
    pub goodput: Option<f64>,
    /// Worst join-p99 amplification across the cell's workflow
    /// ([`crate::experiment::DagRunStats::straggler_amplification`]);
    /// `None` unless the cell ran an application workflow.
    pub join_amp: Option<f64>,
}

impl CellStats {
    fn from_outcome(outcome: &Outcome) -> CellStats {
        let Summary { count, median, p95, tail, tmr, .. } = outcome.summary;
        let policy = outcome.result.policy.as_ref().map(|stats| {
            // One quantile path for every mode: the aggregate is exact
            // whenever samples are retained, so this matches the old
            // sort-the-samples branch bit for bit there.
            let p999_ms = outcome.result.latency_agg.clone().quantile(0.999);
            PolicyCellStats {
                p999_ms,
                hedge_rate: stats.hedge_fire_rate(),
                wasted_fraction: stats.wasted_fraction(),
                duplicate_successes: stats.duplicate_successes,
                abandoned: stats.abandoned,
            }
        });
        CellStats {
            count,
            median_ms: median,
            p95_ms: p95,
            p99_ms: tail,
            tmr,
            cold_fraction: outcome.result.cold_fraction(),
            policy,
            retry_amp: outcome.result.policy.as_ref().map(policy::PolicyStats::retry_amplification),
            goodput: outcome.result.faults.as_ref().map(faults::FaultStats::availability),
            join_amp: outcome.dag.as_ref().map(|d| d.straggler_amplification),
        }
    }
}

/// One merged result row: a cell either summarised or failed.
#[derive(Debug, Clone)]
pub struct CellRow {
    /// Cell index in grid order.
    pub index: usize,
    /// Label of the cell's scenario.
    pub scenario: String,
    /// Seed of the cell.
    pub seed: u64,
    /// Summary statistics, or the failure message (experiment errors and
    /// caught panics both land here).
    pub result: Result<CellStats, String>,
}

/// The merged output of a sweep: rows in cell-index order plus aggregated
/// counters.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One row per cell, in grid order.
    pub rows: Vec<CellRow>,
    /// `sweep_cells_*` progress counters followed by the summed lifecycle
    /// counters of every successful cell, merged in cell order.
    pub metrics: Metrics,
    /// Grid-wide latency aggregate: every successful cell's measured
    /// latencies merged in cell-index order. Because the merge order is
    /// fixed by the grid (not by completion interleaving), this is
    /// byte-identical across worker-thread counts.
    pub latency_agg: LatencyAgg,
}

impl SweepReport {
    /// Rows that produced statistics.
    pub fn ok_count(&self) -> usize {
        self.rows.iter().filter(|r| r.result.is_ok()).count()
    }

    /// Rows that failed (error or panic).
    pub fn failed_count(&self) -> usize {
        self.rows.len() - self.ok_count()
    }

    /// Renders the report as CSV, one row per cell in grid order. The
    /// output depends only on the grid (not on worker count), so it is
    /// byte-identical across thread configurations.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cell,scenario,seed,status,samples,median_ms,p95_ms,p99_ms,tmr,cold_fraction,error\n",
        );
        for row in &self.rows {
            match &row.result {
                Ok(s) => out.push_str(&format!(
                    "{},{},{},ok,{},{:.3},{:.3},{:.3},{:.3},{:.4},\n",
                    row.index,
                    csv_field(&row.scenario),
                    row.seed,
                    s.count,
                    s.median_ms,
                    s.p95_ms,
                    s.p99_ms,
                    s.tmr,
                    s.cold_fraction,
                )),
                Err(msg) => {
                    out.push_str(&format!(
                        "{},{},{},error,,,,,,,{}\n",
                        row.index,
                        csv_field(&row.scenario),
                        row.seed,
                        csv_field(msg)
                    ));
                }
            }
        }
        out
    }

    /// [`SweepReport::to_csv`] plus the policy columns (p99.9, hedge
    /// rate, wasted-work fraction, duplicate successes, abandons) and the
    /// robustness columns (retry amplification, goodput). Cells without a
    /// policy (or fault schedule) leave the corresponding columns empty.
    /// The base CSV is kept separate so existing pipelines keep parsing
    /// byte-identical output.
    pub fn to_csv_extended(&self) -> String {
        let mut out = String::from(
            "cell,scenario,seed,status,samples,median_ms,p95_ms,p99_ms,tmr,cold_fraction,\
             p999_ms,hedge_rate,wasted_fraction,duplicate_successes,abandoned,retry_amp,goodput,\
             error\n",
        );
        for row in &self.rows {
            match &row.result {
                Ok(s) => {
                    out.push_str(&format!(
                        "{},{},{},ok,{},{:.3},{:.3},{:.3},{:.3},{:.4},",
                        row.index,
                        csv_field(&row.scenario),
                        row.seed,
                        s.count,
                        s.median_ms,
                        s.p95_ms,
                        s.p99_ms,
                        s.tmr,
                        s.cold_fraction,
                    ));
                    match &s.policy {
                        Some(p) => out.push_str(&format!(
                            "{:.3},{:.4},{:.4},{},{},",
                            p.p999_ms,
                            p.hedge_rate,
                            p.wasted_fraction,
                            p.duplicate_successes,
                            p.abandoned,
                        )),
                        None => out.push_str(",,,,,"),
                    }
                    match s.retry_amp {
                        Some(amp) => out.push_str(&format!("{amp:.3},")),
                        None => out.push(','),
                    }
                    match s.goodput {
                        Some(g) => out.push_str(&format!("{g:.4},")),
                        None => out.push(','),
                    }
                    out.push('\n');
                }
                Err(msg) => {
                    out.push_str(&format!(
                        "{},{},{},error{},{}\n",
                        row.index,
                        csv_field(&row.scenario),
                        row.seed,
                        ",".repeat(13),
                        csv_field(msg)
                    ));
                }
            }
        }
        out
    }

    /// [`SweepReport::to_csv_extended`] plus the application column
    /// (`join_amp`, the cell's worst straggler amplification). Cells
    /// without a workflow leave it empty. Kept separate so the extended
    /// layout stays frozen for existing pipelines.
    pub fn to_csv_app(&self) -> String {
        let mut out = String::from(
            "cell,scenario,seed,status,samples,median_ms,p95_ms,p99_ms,tmr,cold_fraction,\
             p999_ms,hedge_rate,wasted_fraction,duplicate_successes,abandoned,retry_amp,goodput,\
             join_amp,error\n",
        );
        for row in &self.rows {
            match &row.result {
                Ok(s) => {
                    out.push_str(&format!(
                        "{},{},{},ok,{},{:.3},{:.3},{:.3},{:.3},{:.4},",
                        row.index,
                        csv_field(&row.scenario),
                        row.seed,
                        s.count,
                        s.median_ms,
                        s.p95_ms,
                        s.p99_ms,
                        s.tmr,
                        s.cold_fraction,
                    ));
                    match &s.policy {
                        Some(p) => out.push_str(&format!(
                            "{:.3},{:.4},{:.4},{},{},",
                            p.p999_ms,
                            p.hedge_rate,
                            p.wasted_fraction,
                            p.duplicate_successes,
                            p.abandoned,
                        )),
                        None => out.push_str(",,,,,"),
                    }
                    match s.retry_amp {
                        Some(amp) => out.push_str(&format!("{amp:.3},")),
                        None => out.push(','),
                    }
                    match s.goodput {
                        Some(g) => out.push_str(&format!("{g:.4},")),
                        None => out.push(','),
                    }
                    match s.join_amp {
                        Some(amp) => out.push_str(&format!("{amp:.3},")),
                        None => out.push(','),
                    }
                    out.push('\n');
                }
                Err(msg) => {
                    out.push_str(&format!(
                        "{},{},{},error{},{}\n",
                        row.index,
                        csv_field(&row.scenario),
                        row.seed,
                        ",".repeat(14),
                        csv_field(msg)
                    ));
                }
            }
        }
        out
    }
}

/// RFC 4180 field escaping: fields containing a comma, double quote or
/// line break are wrapped in double quotes, with internal quotes
/// doubled. Plain fields pass through unchanged, keeping the frozen
/// byte layout of existing reports.
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains([',', '"', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", s.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

/// Executes a [`SweepGrid`] across a pool of scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
    queue: QueueKind,
    measure: MeasureSpec,
    profile_events: bool,
}

impl SweepRunner {
    /// A runner with the given worker count; `0` selects the machine's
    /// available parallelism. Cells use the default queue backend and
    /// measurement spec unless overridden.
    pub fn new(threads: usize) -> SweepRunner {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        SweepRunner {
            threads,
            queue: QueueKind::default(),
            measure: MeasureSpec::default(),
            profile_events: false,
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Selects the event-queue backend every cell simulates on.
    pub fn queue(mut self, queue: QueueKind) -> SweepRunner {
        self.queue = queue;
        self
    }

    /// Sets how every cell is measured; [`MeasureSpec::sketch`] keeps
    /// large sweeps at O(sketch) latency storage per cell.
    pub fn measure(mut self, measure: MeasureSpec) -> SweepRunner {
        self.measure = measure;
        self
    }

    /// Enables per-event cost profiling in every cell; the per-class
    /// totals merge across cells into [`SweepReport::metrics`] under the
    /// `faas_sim::cloud::metric::PROFILE_*` names. Observational only —
    /// cell results are bit-identical either way.
    pub fn profile_events(mut self, on: bool) -> SweepRunner {
        self.profile_events = on;
        self
    }

    /// Runs every cell of `grid` and merges the results in cell-index
    /// order. Cells are claimed work-stealing style from a shared cursor;
    /// a panicking cell is isolated into an error row.
    pub fn run(&self, grid: &SweepGrid) -> SweepReport {
        let total = grid.len();
        let slots: Vec<Mutex<Option<CellResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(total);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let cell =
                        run_cell(grid, index, self.queue, &self.measure, self.profile_events);
                    *slots[index].lock().expect("sweep slot poisoned") = Some(cell);
                });
            }
        })
        .expect("sweep worker panicked outside a cell");

        let mut rows = Vec::with_capacity(total);
        let mut metrics = Metrics::new();
        let mut latency_agg = LatencyAgg::with_mode(self.measure.quantile);
        metrics.add(counter::CELLS_TOTAL, total as u64);
        metrics.add(counter::CELLS_OK, 0);
        metrics.add(counter::CELLS_FAILED, 0);
        for slot in slots {
            let (row, cell_metrics, cell_agg) =
                slot.into_inner().expect("sweep slot poisoned").expect("cell never ran");
            metrics.inc(if row.result.is_ok() { counter::CELLS_OK } else { counter::CELLS_FAILED });
            metrics.merge(&cell_metrics);
            if let Some(agg) = &cell_agg {
                latency_agg.merge(agg);
            }
            rows.push(row);
        }
        SweepReport { rows, metrics, latency_agg }
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new(0)
    }
}

/// What one sweep cell hands back for merging: its CSV row, lifecycle
/// counters, and (in sketch mode) the cell's latency aggregate.
type CellResult = (CellRow, Metrics, Option<LatencyAgg>);

fn run_cell(
    grid: &SweepGrid,
    index: usize,
    queue: QueueKind,
    measure: &MeasureSpec,
    profile_events: bool,
) -> CellResult {
    let (scenario, seed) = grid.cell(index);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut experiment = Experiment::new(scenario.provider.clone())
            .functions(scenario.static_cfg.clone())
            .workload(scenario.runtime_cfg.clone())
            .seed(seed)
            .queue(queue)
            .measure(*measure)
            .profile_events(profile_events);
        if let Some(dag) = &scenario.dag {
            experiment = experiment.app(dag.clone());
        }
        experiment.run()
    }));
    let (result, metrics, agg) = match outcome {
        Ok(Ok(outcome)) => (
            Ok(CellStats::from_outcome(&outcome)),
            outcome.metrics,
            Some(outcome.result.latency_agg),
        ),
        Ok(Err(e)) => (Err(e.to_string()), Metrics::new(), None),
        Err(payload) => (Err(format!("panic: {}", panic_message(&payload))), Metrics::new(), None),
    };
    (CellRow { index, scenario: scenario.label.clone(), seed, result }, metrics, agg)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IatSpec;
    use faas_sim::testutil::test_provider;

    fn small_grid() -> SweepGrid {
        let scenarios = ["a", "b"]
            .iter()
            .map(|label| {
                Scenario::new(*label, test_provider())
                    .workload(RuntimeConfig::single(IatSpec::short(), 30))
            })
            .collect();
        SweepGrid::new(scenarios, vec![1, 2, 3])
    }

    #[test]
    fn runs_every_cell_in_grid_order() {
        let report = SweepRunner::new(2).run(&small_grid());
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.ok_count(), 6);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.index, i);
        }
        assert_eq!(report.rows[0].scenario, "a");
        assert_eq!(report.rows[0].seed, 1);
        assert_eq!(report.rows[5].scenario, "b");
        assert_eq!(report.rows[5].seed, 3);
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let grid = small_grid();
        let csv1 = SweepRunner::new(1).run(&grid).to_csv();
        let csv4 = SweepRunner::new(4).run(&grid).to_csv();
        assert_eq!(csv1, csv4, "merge order must not depend on worker count");
    }

    #[test]
    fn sketch_mode_reports_identical_across_thread_counts() {
        let grid = small_grid();
        let run = |threads| SweepRunner::new(threads).measure(MeasureSpec::sketch()).run(&grid);
        let r1 = run(1);
        let r4 = run(4);
        assert_eq!(r1.to_csv(), r4.to_csv());
        // The merged aggregate (sketch state included) must also be
        // bit-identical: cells merge in index order, not completion order.
        assert_eq!(r1.latency_agg, r4.latency_agg);
        assert_eq!(r1.latency_agg.count(), 6 * 30);
    }

    #[test]
    fn queue_backend_does_not_change_results() {
        let grid = small_grid();
        let heap = SweepRunner::new(2).queue(QueueKind::BinaryHeap).run(&grid).to_csv();
        let calendar = SweepRunner::new(2).queue(QueueKind::Calendar).run(&grid).to_csv();
        assert_eq!(heap, calendar);
    }

    #[test]
    fn merged_aggregate_covers_successful_cells() {
        let report = SweepRunner::new(2).run(&small_grid());
        assert_eq!(report.latency_agg.count(), 6 * 30);
        let mut agg = report.latency_agg.clone();
        assert!(agg.quantile(0.5) > 0.0);
    }

    #[test]
    fn metrics_carry_progress_and_merged_lifecycle_counters() {
        let report = SweepRunner::new(3).run(&small_grid());
        assert_eq!(report.metrics.counter(counter::CELLS_TOTAL), 6);
        assert_eq!(report.metrics.counter(counter::CELLS_OK), 6);
        assert_eq!(report.metrics.counter(counter::CELLS_FAILED), 0);
        // 6 cells × 30 requests each.
        assert_eq!(report.metrics.counter(faas_sim::cloud::metric::REQUESTS_SUBMITTED), 180);
    }

    #[test]
    fn experiment_errors_become_error_rows() {
        // Zero samples fails RuntimeConfig validation inside the cell.
        let bad = Scenario::new("bad", test_provider())
            .workload(RuntimeConfig::single(IatSpec::short(), 0));
        let good = Scenario::new("good", test_provider())
            .workload(RuntimeConfig::single(IatSpec::short(), 20));
        let grid = SweepGrid::new(vec![bad, good], vec![7]);
        let report = SweepRunner::new(2).run(&grid);
        assert_eq!(report.ok_count(), 1);
        assert_eq!(report.failed_count(), 1);
        let err = report.rows[0].result.as_ref().unwrap_err();
        assert!(err.contains("invalid"), "unexpected error: {err}");
        assert_eq!(report.metrics.counter(counter::CELLS_FAILED), 1);
    }

    #[test]
    fn panicking_cell_is_isolated_into_an_error_row() {
        // An invalid provider config panics inside CloudSim::new; the
        // sweep must keep going and report the panic message.
        let mut broken = test_provider();
        broken.limits.max_instances_per_function = 0;
        let grid = SweepGrid::new(
            vec![
                Scenario::new("broken", broken),
                Scenario::new("ok", test_provider())
                    .workload(RuntimeConfig::single(IatSpec::short(), 20)),
            ],
            vec![1, 2],
        );
        let report = SweepRunner::new(2).run(&grid);
        assert_eq!(report.failed_count(), 2);
        assert_eq!(report.ok_count(), 2);
        let err = report.rows[0].result.as_ref().unwrap_err();
        assert!(err.starts_with("panic:"), "unexpected error: {err}");
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let grid = SweepGrid::new(
            vec![Scenario::new("one", test_provider())
                .workload(RuntimeConfig::single(IatSpec::short(), 10))],
            vec![9],
        );
        let report = SweepRunner::new(16).run(&grid);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.ok_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_axis_panics() {
        SweepGrid::new(vec![Scenario::new("a", test_provider())], vec![]);
    }

    fn workload_grid() -> SweepGrid {
        let base = Scenario::new("base", test_provider())
            .workload(RuntimeConfig::single(IatSpec::short(), 25));
        SweepGrid::cross_workloads(
            vec![base],
            &[
                ("poisson", workload::WorkloadSpec::preset("poisson").unwrap()),
                ("mmpp", workload::WorkloadSpec::preset("mmpp-burst").unwrap()),
            ],
            vec![1, 2],
        )
    }

    #[test]
    fn workload_axis_crosses_scenarios_and_labels_cells() {
        let grid = workload_grid();
        assert_eq!(grid.scenarios.len(), 2);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid.scenarios[0].label, "base/poisson");
        assert_eq!(grid.scenarios[1].label, "base/mmpp");
        let report = SweepRunner::new(2).run(&grid);
        assert_eq!(report.ok_count(), 4);
        assert!(report.to_csv().contains("base/mmpp"));
    }

    #[test]
    fn workload_sweep_is_identical_across_thread_counts() {
        let grid = workload_grid();
        let csv1 = SweepRunner::new(1).run(&grid).to_csv();
        let csv4 = SweepRunner::new(4).run(&grid).to_csv();
        assert_eq!(csv1, csv4);
    }

    fn policy_grid() -> SweepGrid {
        let mut cfg = RuntimeConfig::single(IatSpec::short(), 25);
        cfg.exec_ms = 300.0;
        let base = Scenario::new("base", test_provider()).workload(cfg);
        SweepGrid::cross_policies(
            vec![base],
            &[
                ("none", None),
                ("hedge-200ms", Some(policy::PolicySpec::preset("hedge-200ms").unwrap())),
            ],
            vec![1, 2],
        )
    }

    #[test]
    fn policy_axis_crosses_scenarios_and_labels_cells() {
        let grid = policy_grid();
        assert_eq!(grid.scenarios.len(), 2);
        assert_eq!(grid.scenarios[0].label, "base+none");
        assert_eq!(grid.scenarios[1].label, "base+hedge-200ms");
        assert!(grid.scenarios[0].runtime_cfg.policy.is_none());
        let report = SweepRunner::new(2).run(&grid);
        assert_eq!(report.ok_count(), 4);
        // Baseline rows leave the policy columns empty; hedged rows
        // populate them.
        let baseline = report.rows[0].result.as_ref().expect("baseline cell ran");
        assert!(baseline.policy.is_none());
        let hedged = report.rows[2].result.as_ref().expect("hedged cell ran");
        let p = hedged.policy.as_ref().expect("hedged rows carry policy stats");
        assert!(p.hedge_rate > 0.9, "300 ms execution hedges every request");
        assert!(p.wasted_fraction > 0.0);
    }

    #[test]
    fn extended_csv_adds_policy_columns_without_touching_base_csv() {
        let grid = policy_grid();
        let report = SweepRunner::new(2).run(&grid);
        let base = report.to_csv();
        assert!(base.starts_with(
            "cell,scenario,seed,status,samples,median_ms,p95_ms,p99_ms,tmr,cold_fraction,error\n"
        ));
        let extended = report.to_csv_extended();
        assert!(extended.contains("p999_ms,hedge_rate,wasted_fraction"));
        assert!(extended.contains("abandoned,retry_amp,goodput,error"));
        assert!(extended.contains("base+hedge-200ms"));
        // The baseline row ends with empty policy + robustness columns
        // (5 policy fields, retry_amp, goodput, error).
        let baseline_row = extended.lines().nth(1).unwrap();
        assert!(baseline_row.ends_with(",,,,,,,"), "baseline row: {baseline_row}");
        // Hedged rows populate retry_amp but leave goodput empty
        // (policy without faults).
        let hedged_row = extended.lines().nth(3).unwrap();
        assert!(hedged_row.contains("base+hedge-200ms"));
        assert!(hedged_row.ends_with(","), "error column empty: {hedged_row}");
        let fields: Vec<&str> = hedged_row.split(',').collect();
        assert_eq!(fields.len(), 18, "hedged row: {hedged_row}");
        let retry_amp: f64 = fields[15].parse().expect("retry_amp populated");
        assert!(retry_amp > 1.0, "every request hedges: {retry_amp}");
        assert!(fields[16].is_empty(), "goodput empty without faults");
    }

    #[test]
    fn error_messages_with_commas_and_quotes_are_csv_escaped() {
        // A panic message carrying the CSV delimiter, quotes and a line
        // break must stay one (quoted) field, not shift columns.
        let report = SweepReport {
            rows: vec![CellRow {
                index: 0,
                scenario: "s".to_string(),
                seed: 7,
                result: Err(
                    "index out of bounds: the len is 2, but the index is \"3\"\nhint".to_string()
                ),
            }],
            metrics: Metrics::new(),
            latency_agg: LatencyAgg::with_mode(stats::sketch::QuantileMode::Exact),
        };
        let escaped = "\"index out of bounds: the len is 2, but the index is \"\"3\"\"\nhint\"";
        let base = report.to_csv();
        assert!(base.contains(escaped), "base csv: {base}");
        assert!(base.contains(&format!("0,s,7,error,,,,,,,{escaped}\n")));
        let extended = report.to_csv_extended();
        assert!(
            extended.contains(&format!("0,s,7,error,,,,,,,,,,,,,,{escaped}\n")),
            "extended csv: {extended}"
        );
        // Plain messages stay unquoted, preserving the frozen layout.
        let plain = SweepReport {
            rows: vec![CellRow {
                index: 0,
                scenario: "s".to_string(),
                seed: 7,
                result: Err("boom".to_string()),
            }],
            metrics: Metrics::new(),
            latency_agg: LatencyAgg::with_mode(stats::sketch::QuantileMode::Exact),
        };
        assert!(plain.to_csv().contains("0,s,7,error,,,,,,,boom\n"));
    }

    #[test]
    fn policy_sweep_is_identical_across_thread_counts() {
        let grid = policy_grid();
        let run = |threads| SweepRunner::new(threads).run(&grid);
        let r1 = run(1);
        let r8 = run(8);
        assert_eq!(r1.to_csv(), r8.to_csv());
        assert_eq!(r1.to_csv_extended(), r8.to_csv_extended());
    }

    fn fault_grid() -> SweepGrid {
        let base = Scenario::new("base", test_provider())
            .workload(RuntimeConfig::single(IatSpec::short(), 40));
        SweepGrid::cross_faults(
            vec![base],
            &[
                ("none", None),
                ("throttle", Some(faults::FaultSpec::preset("throttle-5pct").unwrap())),
            ],
            vec![1, 2],
        )
    }

    #[test]
    fn fault_axis_crosses_scenarios_and_labels_cells() {
        let grid = fault_grid();
        assert_eq!(grid.scenarios.len(), 2);
        assert_eq!(grid.scenarios[0].label, "base~none");
        assert_eq!(grid.scenarios[1].label, "base~throttle");
        assert!(grid.scenarios[0].runtime_cfg.faults.is_none());
        let report = SweepRunner::new(2).run(&grid);
        assert_eq!(report.ok_count(), 4);
        // Baseline rows leave the goodput column empty; throttled rows
        // populate it.
        let baseline = report.rows[0].result.as_ref().expect("baseline cell ran");
        assert!(baseline.goodput.is_none());
        let throttled = report.rows[2].result.as_ref().expect("throttled cell ran");
        let goodput = throttled.goodput.expect("fault cells report goodput");
        assert!(goodput < 1.0, "5% throttle over 40+40 requests errs at least once: {goodput}");
        assert!(goodput > 0.5, "goodput stays near 0.95: {goodput}");
        assert!(
            throttled.count < baseline.count,
            "errored requests are not latency samples ({} vs {})",
            throttled.count,
            baseline.count
        );
    }

    fn app_grid() -> SweepGrid {
        use faas_sim::dag::{DagNodeSpec, DagSpec};
        use faas_sim::types::TransferMode;
        use simkit::dist::Dist;
        let fan = DagSpec::new("fan2")
            .node(DagNodeSpec::new("start").exec_ms(Dist::constant(5.0)))
            .node(DagNodeSpec::new("w0").exec_ms(Dist::constant(20.0)))
            .node(DagNodeSpec::new("w1").exec_ms(Dist::constant(40.0)))
            .node(DagNodeSpec::new("join").exec_ms(Dist::constant(5.0)))
            .edge("start", "w0", TransferMode::Inline, Dist::constant(1024.0))
            .edge("start", "w1", TransferMode::Inline, Dist::constant(1024.0))
            .edge("w0", "join", TransferMode::Inline, Dist::constant(512.0))
            .edge("w1", "join", TransferMode::Inline, Dist::constant(512.0));
        let base = Scenario::new("base", test_provider())
            .workload(RuntimeConfig::single(IatSpec::short(), 25));
        SweepGrid::cross_apps(vec![base], &[("none", None), ("fan2", Some(fan))], vec![1, 2])
    }

    #[test]
    fn app_axis_crosses_scenarios_and_labels_cells() {
        let grid = app_grid();
        assert_eq!(grid.scenarios.len(), 2);
        assert_eq!(grid.scenarios[0].label, "base@none");
        assert_eq!(grid.scenarios[1].label, "base@fan2");
        assert!(grid.scenarios[0].dag.is_none());
        let report = SweepRunner::new(2).run(&grid);
        assert_eq!(report.ok_count(), 4);
        let baseline = report.rows[0].result.as_ref().expect("baseline cell ran");
        assert!(baseline.join_amp.is_none());
        let app = report.rows[2].result.as_ref().expect("app cell ran");
        let amp = app.join_amp.expect("app cells report straggler amplification");
        assert!(amp >= 1.0, "all-of-n join amplifies the branch tail: {amp}");
    }

    #[test]
    fn app_csv_adds_join_amp_without_touching_frozen_layouts() {
        let grid = app_grid();
        let report = SweepRunner::new(2).run(&grid);
        let extended = report.to_csv_extended();
        assert!(extended.starts_with(
            "cell,scenario,seed,status,samples,median_ms,p95_ms,p99_ms,tmr,cold_fraction,\
             p999_ms,hedge_rate,wasted_fraction,duplicate_successes,abandoned,retry_amp,goodput,\
             error\n"
        ));
        let app_csv = report.to_csv_app();
        assert!(app_csv.contains("goodput,join_amp,error"));
        let baseline_row = app_csv.lines().nth(1).unwrap();
        assert!(baseline_row.contains("base@none"));
        let fields: Vec<&str> = baseline_row.split(',').collect();
        assert_eq!(fields.len(), 19, "baseline row: {baseline_row}");
        assert!(fields[17].is_empty(), "baseline leaves join_amp empty");
        let app_row = app_csv.lines().nth(3).unwrap();
        assert!(app_row.contains("base@fan2"));
        let fields: Vec<&str> = app_row.split(',').collect();
        let amp: f64 = fields[17].parse().expect("join_amp populated");
        assert!(amp >= 1.0, "app row: {app_row}");
    }

    #[test]
    fn app_sweep_is_identical_across_thread_counts() {
        let grid = app_grid();
        let run = |threads| SweepRunner::new(threads).run(&grid);
        let r1 = run(1);
        let r8 = run(8);
        assert_eq!(r1.to_csv(), r8.to_csv());
        assert_eq!(r1.to_csv_app(), r8.to_csv_app());
    }

    #[test]
    fn fault_sweep_is_identical_across_thread_counts_and_backends() {
        let grid = fault_grid();
        let run = |threads| SweepRunner::new(threads).run(&grid);
        let r1 = run(1);
        let r8 = run(8);
        assert_eq!(r1.to_csv(), r8.to_csv());
        assert_eq!(r1.to_csv_extended(), r8.to_csv_extended());
        let heap = SweepRunner::new(2).queue(QueueKind::BinaryHeap).run(&grid).to_csv_extended();
        let cal = SweepRunner::new(2).queue(QueueKind::Calendar).run(&grid).to_csv_extended();
        assert_eq!(heap, cal, "fault draws come from a dedicated stream");
    }
}
