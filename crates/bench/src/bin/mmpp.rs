//! Regenerates the MMPP queueing-amplification artifact; `--samples N`
//! overrides the default 3000-sample methodology (§V).

fn main() {
    let samples = bench::report::PAPER_SAMPLES;
    let samples = std::env::args()
        .skip_while(|a| a != "--samples")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(samples);
    let report = bench::experiments::mmpp::measure(samples).report();
    println!("{}", report.render());
}
