//! Deterministic fault injection for the serverless-cloud simulator.
//!
//! Real provider tails are shaped by more than queueing: throttling
//! errors, instance crashes, keepalive purges and capacity blips all
//! interact with client retry policies ("Unveiling Overlooked Performance
//! Variance in Serverless Computing" documents exactly this provider-side
//! variance). This crate supplies the *description* half of the fault
//! subsystem:
//!
//! * [`FaultSpec`] — a validated serde grammar (mirroring
//!   `policy::PolicySpec`) covering transient invocation errors with
//!   provider-style codes, mid-execution instance crashes, keepalive-purge
//!   "cold-start storm" events, capacity-outage windows, network
//!   latency-inflation windows, and queue-depth load shedding;
//! * [`FaultPlan`] — the compiled, data-only form the cloud's event loop
//!   consults (all randomness stays in the cloud's dedicated
//!   `fork("faults")` stream, so this crate draws nothing);
//! * [`FaultStats`] — injection/degradation counters with the
//!   conservation law `shed + completed + failed + cancelled == submitted`.
//!
//! The determinism contract: a [`FaultSpec::none`] plan is *inert* — the
//! cloud gates every fault arm on plan presence before touching the fault
//! RNG, so faults-off runs stay byte-identical to a build without the
//! subsystem.

pub mod spec;
pub mod stats;

pub use spec::{FaultPlan, FaultSpec, Inflation, StormPlan, TransientFault, Window};
pub use stats::FaultStats;
