//! Plain-text table rendering.
//!
//! The benchmark harness prints paper-style rows (Table I, per-figure
//! series); [`TextTable`] right-aligns numeric columns and keeps the output
//! diff-friendly for `EXPERIMENTS.md`.

/// A simple text table builder.
///
/// # Examples
///
/// ```
/// use stats::table::TextTable;
/// let mut t = TextTable::new(vec!["factor", "MR", "TR"]);
/// t.row(vec!["base warm".into(), "1".into(), "2".into()]);
/// let s = t.render();
/// assert!(s.contains("factor"));
/// assert!(s.contains("base warm"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        TextTable { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator, columns padded to fit.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (no quoting; cells must not contain commas).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            debug_assert!(row.iter().all(|c| !c.contains(',')), "CSV cell contains comma");
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible number of digits for latency tables:
/// two decimals under 10, one under 100, none above.
pub fn fmt_latency(ms: f64) -> String {
    if !ms.is_finite() {
        return "inf".to_string();
    }
    if ms < 10.0 {
        format!("{ms:.2}")
    } else if ms < 100.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.0}")
    }
}

/// Formats a ratio (TMR/MR/TR) with one decimal place, marking values the
/// paper highlights (>10) with a trailing `*`.
pub fn fmt_ratio(r: f64) -> String {
    if !r.is_finite() {
        return "inf*".to_string();
    }
    if r > 10.0 {
        format!("{r:.1}*")
    } else {
        format!("{r:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn markdown_and_csv() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_markdown(), "| x | y |\n|---|---|\n| 1 | 2 |\n");
        assert_eq!(t.render_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn latency_formatting_scales_digits() {
        assert_eq!(fmt_latency(7.123), "7.12");
        assert_eq!(fmt_latency(42.19), "42.2");
        assert_eq!(fmt_latency(1234.6), "1235");
        assert_eq!(fmt_latency(f64::INFINITY), "inf");
    }

    #[test]
    fn ratio_formatting_flags_problematic() {
        assert_eq!(fmt_ratio(1.49), "1.5");
        assert_eq!(fmt_ratio(37.3), "37.3*");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf*");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["c"]);
        assert!(t.is_empty());
        t.row(vec!["v".into()]);
        assert_eq!(t.len(), 1);
    }
}
