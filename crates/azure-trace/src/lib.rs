//! # azure-trace — Azure Functions trace tooling for Fig 10
//!
//! The paper's §VII-B analyses the public Azure Functions trace (Shahrad
//! et al., ATC'20) to compare infrastructure-induced variability against
//! variability in function execution times, producing Fig 10 (a CDF of
//! per-function tail-to-median ratios).
//!
//! This crate provides the [`record`] schema of the trace's duration
//! table, a [`csv`] loader/writer compatible with the real artifact, a
//! calibrated [`synth`]etic generator (we cannot redistribute the trace),
//! and the Fig 10 [`analysis`].
//!
//! ```
//! use azure_trace::analysis::TmrAnalysis;
//! use azure_trace::synth::{generate, SynthConfig};
//!
//! let trace = generate(&SynthConfig::paper_defaults(10_000), 1);
//! let analysis = TmrAnalysis::compute(&trace);
//! // ~70% of functions have TMR < 10 (paper Fig 10).
//! assert!((analysis.fraction_below(10.0) - 0.70).abs() < 0.06);
//! ```

pub mod analysis;
pub mod csv;
pub mod record;
pub mod synth;

pub use analysis::TmrAnalysis;
pub use record::{DurationClass, FunctionDurationRecord};
pub use synth::{generate, SynthConfig};
