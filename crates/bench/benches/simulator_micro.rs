//! Micro-benchmarks of the simulator substrate: event throughput, cold
//! starts, bursts, distribution sampling and statistics kernels. These
//! quantify the cost of the design choices called out in DESIGN.md
//! (shared vs committed queues, cache bookkeeping, dispatch accounting).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use faas_sim::cloud::CloudSim;
use faas_sim::config::ScalePolicy;
use faas_sim::spec::FunctionSpec;
use faas_sim::testutil::test_provider;
use providers::profiles::aws_like;
use simkit::dist::Dist;
use simkit::engine::QueueKind;
use simkit::rng::Rng;
use simkit::time::SimTime;
use stellar_core::client::MeasureSpec;
use stellar_core::config::{IatSpec, RuntimeConfig};
use stellar_core::experiment::Experiment;
use stellar_core::runner::SweepRunner;

fn warm_invocation_throughput(c: &mut Criterion) {
    c.bench_function("sim/warm_1k_invocations", |b| {
        b.iter_batched(
            || {
                let mut cloud = CloudSim::new(test_provider(), 1);
                let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
                // Warm the instance up front.
                cloud.submit(f, 0, SimTime::ZERO);
                cloud.run_until(SimTime::from_secs(5.0));
                cloud.drain_completions();
                (cloud, f)
            },
            |(mut cloud, f)| {
                for i in 0..1000u64 {
                    cloud.submit(f, i, SimTime::from_secs(6.0) + SimTime::from_millis(i as f64));
                }
                cloud.run_until(SimTime::from_secs(30.0));
                assert_eq!(cloud.drain_completions().len(), 1000);
            },
            BatchSize::SmallInput,
        )
    });
}

/// The same warm 1k workload with the event-queue backend pinned per
/// variant. Host load drifts between recording sessions, so the adaptive
/// backend's acceptance (heap-parity on small runs) is judged against the
/// heap and calendar variants measured in the *same* session, not against
/// absolute medians from an older BENCH file.
fn warm_invocation_queue_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/warm_1k_queue");
    for (label, queue) in [
        ("binary_heap", QueueKind::BinaryHeap),
        ("calendar", QueueKind::Calendar),
        ("adaptive", QueueKind::Adaptive),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                move || {
                    let mut cloud = CloudSim::with_queue(test_provider(), 1, queue);
                    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
                    cloud.submit(f, 0, SimTime::ZERO);
                    cloud.run_until(SimTime::from_secs(5.0));
                    cloud.drain_completions();
                    (cloud, f)
                },
                |(mut cloud, f)| {
                    for i in 0..1000u64 {
                        cloud.submit(
                            f,
                            i,
                            SimTime::from_secs(6.0) + SimTime::from_millis(i as f64),
                        );
                    }
                    cloud.run_until(SimTime::from_secs(30.0));
                    assert_eq!(cloud.drain_completions().len(), 1000);
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn cold_start_cost(c: &mut Criterion) {
    c.bench_function("sim/100_cold_starts", |b| {
        b.iter_batched(
            || {
                let mut cloud = CloudSim::new(aws_like(), 2);
                let mut fns = Vec::new();
                for i in 0..100 {
                    fns.push(cloud.deploy(FunctionSpec::builder(format!("f{i}")).build()).unwrap());
                }
                (cloud, fns)
            },
            |(mut cloud, fns)| {
                for (i, f) in fns.iter().enumerate() {
                    cloud.submit(*f, i as u64, SimTime::from_millis(i as f64));
                }
                cloud.run_until(SimTime::from_secs(60.0));
                assert_eq!(cloud.drain_completions().len(), 100);
            },
            BatchSize::SmallInput,
        )
    });
}

/// Ablation: burst handling cost under the three scheduling policies.
fn burst_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/burst500_policy");
    for (label, policy) in [
        ("per_request", ScalePolicy::PerRequest),
        ("target_concurrency", ScalePolicy::TargetConcurrency { target: 4.0 }),
        ("periodic", ScalePolicy::Periodic { interval_ms: 2000.0, step: 2 }),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                move || {
                    let mut cfg = test_provider();
                    cfg.scaling.policy = policy;
                    let mut cloud = CloudSim::new(cfg, 3);
                    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
                    (cloud, f)
                },
                |(mut cloud, f)| {
                    for i in 0..500u64 {
                        cloud.submit(f, i, SimTime::ZERO);
                    }
                    cloud.run_until(SimTime::from_secs(600.0));
                    assert_eq!(cloud.drain_completions().len(), 500);
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Tracing overhead: the same warm 1k-invocation workload with tracing
/// off (the default: one `Option` check per emission site) and with the
/// ring collector enabled. The acceptance bar is <5% overhead for the
/// disabled path relative to the seed's untraced simulator.
fn trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/trace_1k_invocations");
    for (label, capacity) in [("disabled", None), ("ring_enabled", Some(32_768))] {
        group.bench_function(label, |b| {
            b.iter_batched(
                move || {
                    let mut cloud = CloudSim::new(test_provider(), 1);
                    if let Some(capacity) = capacity {
                        cloud.enable_tracing(capacity);
                    }
                    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
                    cloud.submit(f, 0, SimTime::ZERO);
                    cloud.run_until(SimTime::from_secs(5.0));
                    cloud.drain_completions();
                    cloud.drain_spans();
                    (cloud, f)
                },
                |(mut cloud, f)| {
                    for i in 0..1000u64 {
                        cloud.submit(
                            f,
                            i,
                            SimTime::from_secs(6.0) + SimTime::from_millis(i as f64),
                        );
                    }
                    cloud.run_until(SimTime::from_secs(30.0));
                    assert_eq!(cloud.drain_completions().len(), 1000);
                    cloud.drain_spans()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The parallel grid runner over the 3-provider × 4-seed canonical grid:
/// serial baseline vs a 4-worker pool. The gap quantifies the runner's
/// scaling on an embarrassingly parallel sweep.
fn sweep_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/sweep_grid");
    group.sample_size(10);
    for (label, threads) in [("threads1", 1usize), ("threads4", 4usize)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let grid = bench::provider_seed_grid(400, 4);
                let report = SweepRunner::new(threads).run(&grid);
                assert_eq!(report.ok_count(), 12);
                report
            })
        });
    }
    group.finish();
}

/// The submit→dispatch→complete hot path in isolation: 5k warm requests
/// against one pre-warmed instance, drained into a reused buffer. This is
/// the path the allocation overhaul targets (no per-request `Dist` or
/// chain clones, pre-sized request/event buffers).
fn submit_hot_path(c: &mut Criterion) {
    c.bench_function("sim/submit_hot_path", |b| {
        b.iter_batched(
            || {
                let mut cloud = CloudSim::new(test_provider(), 4);
                let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
                cloud.submit(f, 0, SimTime::ZERO);
                cloud.run_until(SimTime::from_secs(5.0));
                cloud.drain_completions();
                cloud.reserve_requests(5000);
                (cloud, f, Vec::with_capacity(5000))
            },
            |(mut cloud, f, mut done)| {
                for i in 0..5000u64 {
                    cloud.submit(f, i, SimTime::from_secs(6.0) + SimTime::from_millis(i as f64));
                }
                cloud.run_until(SimTime::from_secs(30.0));
                cloud.drain_completions_into(&mut done);
                assert_eq!(done.len(), 5000);
                done
            },
            BatchSize::SmallInput,
        )
    });
}

/// The tentpole workload: one million warm invocations driven through the
/// streaming client in sketch mode, once per event-queue backend. With the
/// whole workload submitted up front the pending-event set stays around a
/// million entries, which is where the calendar queue's O(1) schedule/pop
/// pulls away from the binary heap's O(log n) sift with cold cache lines.
/// Latency storage is O(sketch): the assertion pins the completions vector
/// empty, so no per-invocation sample survives the run.
fn million_invocations(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/million_invocations");
    group.sample_size(10);
    for (label, queue) in [
        ("binary_heap", QueueKind::BinaryHeap),
        ("calendar", QueueKind::Calendar),
        ("adaptive", QueueKind::Adaptive),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let outcome = Experiment::new(test_provider())
                    .workload(RuntimeConfig::single(IatSpec::Fixed { ms: 1.0 }, 1_000_000))
                    .seed(1)
                    .queue(queue)
                    .measure(MeasureSpec::sketch())
                    .run()
                    .unwrap();
                assert!(
                    outcome.result.completions.is_empty(),
                    "sketch mode must not retain per-invocation samples"
                );
                assert_eq!(outcome.summary.count, 1_000_000);
                outcome.summary
            })
        });
    }
    group.finish();
}

/// The canonical provider grid at 20k samples per cell in sketch mode:
/// the large-sweep configuration README recommends for million-request
/// campaigns, at a size Criterion can still sample.
fn sweep_grid_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/sweep_grid_large");
    group.sample_size(10);
    for (label, threads) in [("threads1", 1usize), ("threads4", 4usize)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let grid = bench::provider_seed_grid(20_000, 2);
                let report = SweepRunner::new(threads).measure(MeasureSpec::sketch()).run(&grid);
                assert_eq!(report.ok_count(), 6);
                assert_eq!(report.latency_agg.count(), 6 * 20_000);
                report
            })
        });
    }
    group.finish();
}

fn distribution_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simkit/sample_100k");
    let dists = [
        ("lognormal", Dist::lognormal_median_p99(100.0, 400.0)),
        (
            "bimodal",
            Dist::bimodal(
                Dist::lognormal_median_p99(40.0, 100.0),
                Dist::lognormal_median_p99(650.0, 3200.0),
                0.02,
            ),
        ),
        ("gamma", Dist::Gamma { shape: 2.5, scale: 10.0 }),
    ];
    for (label, dist) in dists {
        group.bench_function(label, |b| {
            let mut rng = Rng::seed_from(7);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..100_000 {
                    acc += dist.sample(&mut rng);
                }
                acc
            })
        });
    }
    group.finish();
}

fn statistics_kernels(c: &mut Criterion) {
    let mut rng = Rng::seed_from(9);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.next_f64() * 1000.0).collect();
    c.bench_function("stats/summary_100k", |b| b.iter(|| stats::Summary::from_samples(&samples)));
    c.bench_function("stats/ks_10k_vs_10k", |b| {
        let a = &samples[..10_000];
        let bb = &samples[10_000..20_000];
        b.iter(|| stats::ks::ks_statistic(a, bb))
    });
}

criterion_group!(
    benches,
    // trace_overhead runs right after warm_1k so the tracing-disabled
    // variant is measured adjacent to the identical untraced workload
    // (separating them lets machine drift masquerade as overhead).
    warm_invocation_throughput,
    warm_invocation_queue_ablation,
    trace_overhead,
    cold_start_cost,
    burst_policies,
    submit_hot_path,
    sweep_grid,
    million_invocations,
    sweep_grid_large,
    distribution_sampling,
    statistics_kernels
);
criterion_main!(benches);
