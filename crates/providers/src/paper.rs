//! The paper's reported numbers, collected in one place.
//!
//! Every constant below is read off the text, figures or Table I of
//! *Analyzing Tail Latency in Serverless Clouds with STeLLAR* (IISWC'21).
//! They serve two purposes: calibration targets for the provider profiles
//! (tested in this crate's calibration tests) and the "paper" column of
//! the benchmark harness output / `EXPERIMENTS.md`.
//!
//! All latencies are milliseconds *as observed by the client* (i.e.
//! including WAN propagation) unless a name says `INTERNAL`.

/// Round-trip propagation delay client↔datacenter measured by ping (§V).
pub const PROP_RTT_MS: [(ProviderKind, f64); 3] =
    [(ProviderKind::Aws, 26.0), (ProviderKind::Google, 14.0), (ProviderKind::Azure, 32.0)];

/// Which provider a constant refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProviderKind {
    /// AWS Lambda analogue.
    Aws,
    /// Google Cloud Functions analogue.
    Google,
    /// Azure Functions analogue.
    Azure,
}

impl ProviderKind {
    /// All three studied providers, in the paper's order.
    pub const ALL: [ProviderKind; 3] =
        [ProviderKind::Aws, ProviderKind::Google, ProviderKind::Azure];

    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ProviderKind::Aws => "aws",
            ProviderKind::Google => "google",
            ProviderKind::Azure => "azure",
        }
    }

    /// One-way propagation delay, ms.
    pub fn prop_one_way_ms(self) -> f64 {
        PROP_RTT_MS.iter().find(|(k, _)| *k == self).expect("known provider").1 / 2.0
    }
}

impl std::fmt::Display for ProviderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// §VI-A: warm invocations, *datacenter-internal* (propagation subtracted)
/// `(median, p99)` per provider.
pub fn warm_internal_ms(p: ProviderKind) -> (f64, f64) {
    match p {
        ProviderKind::Aws => (18.0, 74.0),
        ProviderKind::Google => (17.0, 47.0),
        ProviderKind::Azure => (25.0, 75.0),
    }
}

/// §VI-B1: cold invocations (Python, ZIP), client-observed
/// `(median, tmr)`.
pub fn cold_observed_ms(p: ProviderKind) -> (f64, f64) {
    match p {
        ProviderKind::Aws => (448.0, 1.5),
        ProviderKind::Google => (870.0, 1.8),
        ProviderKind::Azure => (1401.0, 2.6),
    }
}

/// §VI-B2 (Fig 4): cold starts with an extra file added to a Go ZIP image.
/// Returns client-observed `(median_10mb, median_100mb, tail_100mb)`.
pub fn image_size_observed_ms(p: ProviderKind) -> (f64, f64, f64) {
    match p {
        // 100MB medians from Table I MR × warm base; 10MB from the quoted
        // 3.5× / 2.4× ratios; tails quoted directly.
        ProviderKind::Aws => (365.0, 1276.0, 2155.0),
        ProviderKind::Google => (510.0, 527.0, 1860.0),
        ProviderKind::Azure => (1401.0, 3363.0, 5723.0),
    }
}

/// §VI-B3 (Fig 5), AWS only: `(median, p99)` per (runtime, deployment).
pub mod fig5_aws {
    /// Go + ZIP.
    pub const GO_ZIP: (f64, f64) = (360.0, 570.0);
    /// Python + ZIP (CDF overlaps Go ZIP).
    pub const PYTHON_ZIP: (f64, f64) = (360.0, 570.0);
    /// Go + container: close to ZIP, TMR 2.4.
    pub const GO_CONTAINER: (f64, f64) = (380.0, 912.0);
    /// Python + container.
    pub const PYTHON_CONTAINER: (f64, f64) = (612.0, 2882.0);
}

/// §VI-C1 (Fig 6): inline transfers `(payload_bytes, median_ms)` series.
pub fn inline_transfer_points(p: ProviderKind) -> &'static [(u64, f64)] {
    match p {
        ProviderKind::Aws => &[(1_000, 11.0), (1_000_000, 42.0), (4_000_000, 124.0)],
        ProviderKind::Google => &[(1_000, 7.0), (1_000_000, 62.0), (4_000_000, 202.0)],
        ProviderKind::Azure => &[],
    }
}

/// §VI-C1: inline transfer TMR at 1 MB.
pub fn inline_tmr_1mb(p: ProviderKind) -> f64 {
    match p {
        ProviderKind::Aws => 1.7,
        ProviderKind::Google => 1.4,
        ProviderKind::Azure => f64::NAN,
    }
}

/// §VI-C2 (Fig 7): storage transfers at 1 MB: `(median, p99)`.
pub fn storage_transfer_1mb_ms(p: ProviderKind) -> (f64, f64) {
    match p {
        ProviderKind::Aws => (111.0, 1177.0),
        ProviderKind::Google => (155.0, 5781.0),
        ProviderKind::Azure => (f64::NAN, f64::NAN),
    }
}

/// §VI-C2: effective storage bandwidth, Mb/s, at 1 MB and ≥100 MB.
pub fn storage_bandwidth_mbit(p: ProviderKind) -> (f64, f64) {
    match p {
        ProviderKind::Aws => (72.0, 960.0),
        ProviderKind::Google => (48.0, 408.0),
        ProviderKind::Azure => (f64::NAN, f64::NAN),
    }
}

/// §VI-D2: Google long-IAT bursts `(burst_size, median, p99)`.
pub const GOOGLE_LONG_BURSTS: [(u32, f64, f64); 2] = [(1, 870.0, 1567.0), (100, 1818.0, 3095.0)];

/// §VI-D3 (Fig 9): 1 s functions, burst 100, long IAT: `(median, p99)`.
pub fn fig9_burst100_ms(p: ProviderKind) -> (f64, f64) {
    match p {
        ProviderKind::Aws => (1598.0, 1865.0),
        ProviderKind::Google => (2978.0, 4595.0),
        ProviderKind::Azure => (18637.0, 38545.0),
    }
}

/// One row of Table I: `(median_ratio, tail_ratio)` per provider, computed
/// against the provider's warm base median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableOneRow {
    /// Factor name as printed in the paper.
    pub factor: &'static str,
    /// (MR, TR) for AWS.
    pub aws: (f64, f64),
    /// (MR, TR) for Google.
    pub google: (f64, f64),
    /// (MR, TR) for Azure; `None` where the paper reports n/a.
    pub azure: Option<(f64, f64)>,
}

/// The paper's Table I.
pub const TABLE_ONE: [TableOneRow; 8] = [
    TableOneRow {
        factor: "Base warm",
        aws: (1.0, 2.0),
        google: (1.0, 2.0),
        azure: Some((1.0, 1.0)),
    },
    TableOneRow {
        factor: "Base cold",
        aws: (10.0, 15.0),
        google: (28.0, 50.0),
        azure: Some((25.0, 64.0)),
    },
    TableOneRow {
        factor: "Image size, 100MB",
        aws: (29.0, 49.0),
        google: (17.0, 60.0),
        azure: Some((59.0, 100.0)),
    },
    TableOneRow { factor: "Inline transfer", aws: (1.0, 2.0), google: (2.0, 3.0), azure: None },
    TableOneRow { factor: "Storage transfer", aws: (3.0, 27.0), google: (5.0, 187.0), azure: None },
    TableOneRow {
        factor: "Bursty warm",
        aws: (2.0, 11.0),
        google: (3.0, 5.0),
        azure: Some((5.0, 41.0)),
    },
    TableOneRow {
        factor: "Bursty cold",
        aws: (6.0, 12.0),
        google: (59.0, 100.0),
        azure: Some((41.0, 58.0)),
    },
    TableOneRow {
        factor: "Bursty long",
        aws: (12.0, 16.0),
        google: (64.0, 102.0),
        azure: Some((309.0, 619.0)),
    },
];

/// Client-observed warm median (base for MR/TR): internal median + RTT.
pub fn warm_base_observed_ms(p: ProviderKind) -> f64 {
    let (median, _) = warm_internal_ms(p);
    median + PROP_RTT_MS.iter().find(|(k, _)| *k == p).expect("known provider").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_base_includes_propagation() {
        assert_eq!(warm_base_observed_ms(ProviderKind::Aws), 44.0);
        assert_eq!(warm_base_observed_ms(ProviderKind::Google), 31.0);
        assert_eq!(warm_base_observed_ms(ProviderKind::Azure), 57.0);
    }

    #[test]
    fn table_one_consistency_with_text() {
        // §VI-B1 quotes cold medians; Table I's "Base cold" MR must agree
        // with median / warm-base within rounding.
        for p in ProviderKind::ALL {
            let (cold_median, _) = cold_observed_ms(p);
            let mr = cold_median / warm_base_observed_ms(p);
            let row = &TABLE_ONE[1];
            let table_mr = match p {
                ProviderKind::Aws => row.aws.0,
                ProviderKind::Google => row.google.0,
                ProviderKind::Azure => row.azure.unwrap().0,
            };
            assert!(
                (mr - table_mr).abs() / table_mr < 0.15,
                "{p}: text-derived MR {mr:.1} vs table {table_mr}"
            );
        }
    }

    #[test]
    fn image_size_medians_match_table_mr() {
        // 100MB medians were derived from Table I; check the arithmetic.
        for p in ProviderKind::ALL {
            let (_, m100, _) = image_size_observed_ms(p);
            let row = &TABLE_ONE[2];
            let table_mr = match p {
                ProviderKind::Aws => row.aws.0,
                ProviderKind::Google => row.google.0,
                ProviderKind::Azure => row.azure.unwrap().0,
            };
            let mr = m100 / warm_base_observed_ms(p);
            assert!((mr - table_mr).abs() / table_mr < 0.1, "{p}: {mr} vs {table_mr}");
        }
    }

    #[test]
    fn provider_labels_and_prop() {
        assert_eq!(ProviderKind::Aws.label(), "aws");
        assert_eq!(ProviderKind::Google.prop_one_way_ms(), 7.0);
        assert_eq!(ProviderKind::ALL.len(), 3);
    }
}
