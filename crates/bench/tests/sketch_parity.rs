//! Acceptance check for sketch-mode quantiles on the figure-pipeline
//! workloads: for each protocol shape the paper's figures are built from
//! (warm §VI-A, cold §VI-B, bursty §VI-D), a sketch-mode run's p50/p99
//! must land within the documented rank-error bound of the exact
//! percentiles — at a sample count where the t-digest is genuinely
//! sketching, not in its exact-mode fallback. The figure-parity half
//! covers the histogram retirement: the quantile CSV and the deprecated
//! [`stats::histogram::LogHistogram`] shim both answer from the shared
//! sketch and must stay within the same bound.

use providers::profiles::{aws_like, google_like};
use stats::percentile::{sort_samples, sorted_percentile};
use stellar_core::client::MeasureSpec;
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::Experiment;
use stellar_core::protocols::{BURST_ROUND_IAT_MS, LONG_IAT_MS, SHORT_IAT_MS};
use stellar_core::visualize::{export_cdf_csv, Series};

/// Past the sketch's exact threshold (1024) so compression engages.
const SAMPLES: u32 = 3000;

/// Runs `base` in exact and sketch mode (identical seeds → identical
/// latency streams) and asserts the sketch's p50/p99 fall within
/// `rank_error_bound` of the exact distribution.
fn assert_parity(label: &str, base: &Experiment) {
    let exact = base.clone().run().expect("exact run");
    let mut sorted = exact.latencies_ms();
    sort_samples(&mut sorted);

    let sketched = base.clone().measure(MeasureSpec::sketch()).run().expect("sketch run");
    let mut agg = sketched.result.latency_agg.clone();
    assert_eq!(agg.count() as usize, sorted.len(), "{label}: sample counts diverged");
    assert!(agg.sketch().is_sketching(), "{label}: not actually sketching at {SAMPLES} samples");

    for q in [0.5, 0.99] {
        let est = agg.quantile(q);
        let eps = agg.rank_error_bound(q);
        let lo = sorted_percentile(&sorted, (q - eps).max(0.0));
        let hi = sorted_percentile(&sorted, (q + eps).min(1.0));
        assert!(
            est >= lo - 1e-9 && est <= hi + 1e-9,
            "{label} q={q}: sketch {est} outside exact window [{lo}, {hi}] (eps {eps})"
        );
    }
}

/// Histogram-retirement check: the quantile CSV the CDF figures plot and
/// the deprecated [`stats::histogram::LogHistogram`] shim — both now
/// answering from the shared sketch — must reproduce the exact
/// distribution within the documented rank-error bound.
fn assert_figure_parity(label: &str, base: &Experiment) {
    let exact = base.clone().run().expect("exact run");
    let mut sorted = exact.latencies_ms();
    sort_samples(&mut sorted);
    let n = sorted.len();

    let sketched = base.clone().measure(MeasureSpec::sketch()).run().expect("sketch run");
    let agg = sketched.result.latency_agg.clone();
    assert!(agg.sketch().is_sketching(), "{label}: fixture too small to sketch");

    // Every row of the sketch-derived quantile CSV must land inside the
    // exact distribution's rank-error window (the CSV prints 3 decimals,
    // so that rounding rides on top).
    let csv = export_cdf_csv(&[Series::from_agg(label, agg.clone())], 101);
    for line in csv.lines().skip(1) {
        let mut fields = line.split(',').skip(1);
        let q: f64 = fields.next().expect("quantile field").parse().expect("q parses");
        let value: f64 = fields.next().expect("latency field").parse().expect("value parses");
        let eps = agg.rank_error_bound(q);
        let lo = sorted_percentile(&sorted, (q - eps).max(0.0));
        let hi = sorted_percentile(&sorted, (q + eps).min(1.0));
        assert!(
            value >= lo - 2e-3 && value <= hi + 2e-3,
            "{label} CSV q={q}: {value} outside exact window [{lo:.4}, {hi:.4}] (eps {eps:.4})"
        );
    }

    // The shim conserves mass exactly and keeps every cumulative bin
    // count within the rank-error bound of the exact ranks.
    #[allow(deprecated)]
    {
        use stats::histogram::LogHistogram;
        let mut hist = LogHistogram::new(sorted[0], sorted[n - 1], 12);
        hist.record_all(sorted.iter().copied());
        let counts = hist.counts();
        let total = hist.underflow() + counts.iter().sum::<u64>() + hist.overflow();
        assert_eq!(total as usize, n, "{label}: histogram must conserve mass");
        let tol = (n as f64 * hist.sketch().rank_error_bound(0.5)).ceil() as i64 * 2;
        let mut cum = hist.underflow() as i64;
        for (i, &c) in counts.iter().enumerate() {
            let (edge, _) = hist.bin_edges(i);
            let exact_rank = sorted.partition_point(|&s| s < edge) as i64;
            assert!(
                (cum - exact_rank).abs() <= tol,
                "{label} bin {i} @ {edge:.3}: cum rank {cum} vs exact {exact_rank} (tol {tol})"
            );
            cum += c as i64;
        }
    }
}

#[test]
fn warm_workload_sketch_matches_exact() {
    // Mirrors protocols::warm_invocations (fig3/fig8 base).
    let runtime = RuntimeConfig {
        iat: IatSpec::Fixed { ms: SHORT_IAT_MS },
        burst_size: 1,
        samples: SAMPLES,
        warmup_rounds: 1,
        exec_ms: 0.0,
        chain: None,
        workload: None,
        policy: None,
        faults: None,
    };
    let base = Experiment::new(aws_like())
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("warm")] })
        .workload(runtime)
        .seed(41);
    assert_parity("warm", &base);
    assert_figure_parity("warm", &base);
}

#[test]
fn cold_workload_sketch_matches_exact() {
    // Mirrors protocols::cold_invocations (fig3/fig4): 100 replicas
    // round-robined so each sees the long IAT.
    let replicas = 100;
    let runtime = RuntimeConfig {
        iat: IatSpec::Fixed { ms: LONG_IAT_MS / f64::from(replicas) },
        burst_size: 1,
        samples: SAMPLES,
        warmup_rounds: 0,
        exec_ms: 0.0,
        chain: None,
        workload: None,
        policy: None,
        faults: None,
    };
    let function = StaticFunction::python_zip("cold").with_replicas(replicas);
    let base = Experiment::new(google_like())
        .functions(StaticConfig { functions: vec![function] })
        .workload(runtime)
        .seed(42);
    assert_parity("cold", &base);
    assert_figure_parity("cold", &base);
}

#[test]
fn bursty_workload_sketch_matches_exact() {
    // Mirrors protocols::bursty_invocations with BurstIat::Short
    // (fig8/fig9): 100-request bursts against one warm fleet. The heavy
    // cold/warm bimodality is the distribution shape sketches find
    // hardest, which is exactly why it is pinned here.
    let runtime = RuntimeConfig {
        iat: IatSpec::Fixed { ms: BURST_ROUND_IAT_MS },
        burst_size: 100,
        samples: SAMPLES,
        warmup_rounds: 2,
        exec_ms: 0.0,
        chain: None,
        workload: None,
        policy: None,
        faults: None,
    };
    let base = Experiment::new(aws_like())
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("burst")] })
        .workload(runtime)
        .seed(43);
    assert_parity("bursty", &base);
    assert_figure_parity("bursty", &base);
}
