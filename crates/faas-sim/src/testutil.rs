//! Test utilities: a small, fast, deliberately *uncalibrated* provider.
//!
//! Unit and integration tests need a provider whose numbers are easy to
//! reason about; the calibrated profiles live in the `providers` crate.

use simkit::dist::Dist;

use crate::config::{
    ColdStartConfig, DispatchConfig, ImageCacheConfig, ImageStoreConfig, KeepAliveConfig,
    LimitsConfig, NetworkConfig, PathShares, PayloadStoreConfig, ProviderConfig, RuntimeModel,
    RuntimeTable, ScalePolicy, ScalingConfig, WarmPathConfig,
};

/// A deterministic-ish provider with round numbers: 10 ms propagation,
/// 20 ms warm overhead, ~200 ms cold start, 100 MB/s everywhere,
/// per-request scaling and 60 s keep-alive.
pub fn test_provider() -> ProviderConfig {
    ProviderConfig {
        name: "test".to_string(),
        network: NetworkConfig {
            prop_delay_ms: Dist::constant(10.0),
            inline_bandwidth_mbps: Dist::constant(100.0),
            max_inline_payload: 6_000_000,
        },
        warm_path: WarmPathConfig {
            overhead_ms: Dist::constant(20.0),
            shares: PathShares::balanced(),
        },
        dispatch: DispatchConfig {
            service_ms: Dist::constant(0.5),
            degradation_per_100_backlog: 0.0,
            miss_prob: 0.0,
        },
        scaling: ScalingConfig {
            policy: ScalePolicy::PerRequest,
            decision_ms: Dist::constant(10.0),
            spawn_rate_per_sec: 1000.0,
            spawn_burst: 1000.0,
            adaptive_spawn_threshold: 0,
            adaptive_spawn_mult: 1.0,
        },
        cold_start: ColdStartConfig {
            sandbox_boot_ms: Dist::constant(100.0),
            handler_init_ms: Dist::constant(10.0),
            fetch_overlaps_boot: false,
            boot_failure_prob: 0.0,
        },
        runtimes: RuntimeTable {
            python3: RuntimeModel {
                init_ms: Dist::constant(30.0),
                base_image_mb: 5.0,
                container_chunks: None,
            },
            go: RuntimeModel {
                init_ms: Dist::constant(5.0),
                base_image_mb: 2.0,
                container_chunks: None,
            },
        },
        image_store: ImageStoreConfig {
            base_latency_ms: Dist::constant(40.0),
            bandwidth_mbps: Dist::constant(100.0),
            cache: ImageCacheConfig::none(),
        },
        payload_store: PayloadStoreConfig {
            put_base_ms: Dist::constant(15.0),
            get_base_ms: Dist::constant(10.0),
            bandwidth_mbps: Dist::constant(100.0),
        },
        keepalive: KeepAliveConfig { idle_timeout_ms: Dist::constant(60_000.0) },
        limits: LimitsConfig { max_instances_per_function: 10_000, full_speed_memory_mb: 1024 },
    }
}
