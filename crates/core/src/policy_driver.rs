//! Policy-aware client driver: tail-tolerance machines per logical
//! request.
//!
//! When a [`crate::config::RuntimeConfig`] carries a
//! [`policy::PolicySpec`], the client stops being a fire-and-forget
//! submitter: every *logical* request owns a [`policy::Composite`] state
//! machine that may launch duplicate attempts (hedges, tied copies,
//! retries), cancel in-flight attempts, or abandon the request at a
//! deadline. The first successful attempt is the logical request's
//! latency sample; everything else the policy launched is accounted as
//! wasted work in [`policy::PolicyStats`], never in the latency
//! aggregates.
//!
//! # Determinism
//!
//! The driver is strictly serial per cell. The only randomness it adds
//! beyond the arrival process is the jitter stream, a dedicated
//! `fork("policy")` of the cell seed, drawn once per delivered timer
//! wake-up — so a given `(spec, seed)` pair replays bit-identically
//! regardless of queue backend or sweep thread count. Unlike the
//! no-policy drivers it does *not* use the cloud's submission window:
//! the number of physical submissions is data-dependent (a hedge fires
//! or it does not), so the window's draw-count reservation cannot be
//! precomputed. Cross-thread byte-identity still holds because each
//! cell is serial and the sweep merges cells in index order.
//!
//! # Event ordering
//!
//! Each iteration advances the cloud to the *earliest* of: the next
//! pending arrival, the earliest armed policy timer, or a bounded slice.
//! Completions drained at that boundary are processed before timers due
//! at it — a win at `t` beats a hedge or abandon timer at `t`, matching
//! how a real client's response handler races its own timeout wheel.
//! Cancellations issued at `t` take effect at the cloud's next event
//! boundary, so an attempt that has not completed by `t` never produces
//! a completion afterwards.

use std::collections::BinaryHeap;
use std::collections::HashMap;

use faas_sim::cloud::CloudSim;
use faas_sim::request::{Completion, TransferSample};
use faas_sim::types::{FunctionId, RequestId};
use policy::machine::{Action, Actions, PolicyEvent};
use policy::{Composite, PolicyMachine, PolicySpec, PolicyStats};
use simkit::rng::Rng;
use simkit::time::SimTime;
use stats::sketch::QuantileSketch;
use workload::arrival::ArrivalProcess;
use workload::stats::LoadRecorder;

use crate::client::{ClientError, Collector, MeasureSpec, RunResult};
use crate::config::RuntimeConfig;
use crate::deployer::Deployment;

/// Loop shape of a policy-driven run.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DriveMode {
    /// Arrivals follow the process schedule regardless of completions.
    Open,
    /// Fixed population of virtual users with think times.
    Closed {
        /// Number of virtual users.
        concurrency: u32,
    },
}

/// One physical attempt of a logical request.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    rid: RequestId,
    done: bool,
    cancelled: bool,
}

/// Per-logical-request state. Pooled and reused via a free list so the
/// steady-state hot path allocates nothing.
struct Slot {
    tag: u64,
    function: FunctionId,
    machine: Composite,
    attempts: Vec<Attempt>,
    outstanding: u32,
    /// Timer-heap entries still pending for this occupancy of the slot.
    /// When this hits zero with no outstanding attempts and no win, the
    /// machine can never act again — the logical request is lost.
    pending_timers: u32,
    won: bool,
    abandoned: bool,
}

/// Winner samples needed before an online quantile threshold activates.
/// Below this the estimate is too noisy to hedge on; machines treat a
/// NaN estimate as "do not fire".
const ESTIMATE_WARMUP: u64 = 20;

/// Advance-at-most slice when no timer or arrival is nearer, 1 s.
const SLICE: SimTime = SimTime::from_nanos(1_000_000_000);

/// Consecutive boundaries without progress before declaring a stall.
const STALL_LIMIT: u32 = 3_600;

/// Drives `process` against `deployment` with a tail-tolerance policy
/// attached to every logical request.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_with_policy(
    cloud: &mut CloudSim,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    process: &mut dyn ArrivalProcess,
    rng: &mut Rng,
    measure: &MeasureSpec,
    spec: &PolicySpec,
    seed: u64,
    mode: DriveMode,
) -> Result<RunResult, ClientError> {
    let start = cloud.now();
    let mut total = u64::from(cfg.warmup_rounds + cfg.measured_rounds());
    if let Some(remaining) = process.remaining() {
        total = total.min(remaining);
    }
    let warmup_tag = u64::from(cfg.warmup_rounds);
    let multi_source = process.sources() > 1;
    let online_q = spec.online_quantile();
    let cancel_base = cloud.cancel_stats();
    if measure.keep_samples {
        cloud.reserve_requests(total as usize);
    } else {
        // Forward the bulk-load hint even without sample buffers so the
        // adaptive event queue can promote once, up front.
        cloud.reserve_event_hint(total as usize);
    }

    let mut collector = Collector::new(measure, warmup_tag);
    let mut recorder = LoadRecorder::default();
    // Arrival instants are decided out of time order in closed mode (per
    // completion) and may be clamped forward, so they transit a min-heap
    // and are flushed once the clock passes them.
    let mut record_heap: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    let mut jitter_rng = Rng::seed_from(seed).fork("policy");
    let mut estimate_sketch = QuantileSketch::new();
    let mut stats = PolicyStats::default();

    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut by_tag: HashMap<u64, usize> = HashMap::new();
    // Armed policy timers: (fire instant ns, logical tag). Stale entries
    // (slot already resolved and freed) are skipped on delivery.
    let mut timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut actions = Actions::new();

    let mut issued = 0u64;
    let mut resolved = 0u64;
    let mut exhausted = false;
    // Next open-loop arrival, generated one ahead of submission.
    let mut next_arrival: Option<SimTime> = None;
    let mut open_clock = start;
    // Think-turn queue for closed mode: logical resolution instants that
    // still owe a user turn.
    let mut turns: Vec<SimTime> = Vec::new();

    let estimate_ms = |sketch: &mut QuantileSketch| -> f64 {
        match online_q {
            Some(q) if sketch.count() >= ESTIMATE_WARMUP => sketch.quantile(q),
            _ => f64::NAN,
        }
    };

    // Issues logical request `tag` at `at` (>= cloud.now()): builds or
    // reuses a slot, submits the primary attempt, and runs the machine's
    // Issued event (which may launch tied copies or arm timers).
    macro_rules! issue_logical {
        ($tag:expr, $at:expr, $source:expr) => {{
            let tag: u64 = $tag;
            let at: SimTime = $at;
            let endpoint = &deployment.endpoints[$source % deployment.len()];
            let idx = match free.pop() {
                Some(idx) => {
                    let slot = &mut slots[idx];
                    slot.tag = tag;
                    slot.function = endpoint.function;
                    slot.machine.reset();
                    slot.attempts.clear();
                    slot.outstanding = 0;
                    slot.pending_timers = 0;
                    slot.won = false;
                    slot.abandoned = false;
                    idx
                }
                None => {
                    slots.push(Slot {
                        tag,
                        function: endpoint.function,
                        machine: spec.build(),
                        attempts: Vec::new(),
                        outstanding: 0,
                        pending_timers: 0,
                        won: false,
                        abandoned: false,
                    });
                    slots.len() - 1
                }
            };
            by_tag.insert(tag, idx);
            let rid = cloud.submit(endpoint.function, tag, at);
            let slot = &mut slots[idx];
            slot.attempts.push(Attempt { rid, done: false, cancelled: false });
            slot.outstanding = 1;
            stats.logical += 1;
            record_heap.push(std::cmp::Reverse(at.as_nanos()));
            let est = estimate_ms(&mut estimate_sketch);
            actions.clear();
            slot.machine.on_event(
                PolicyEvent::Issued { now_ms: at.as_millis(), estimate_ms: est },
                &mut actions,
            );
            exec_actions!(idx, at);
        }};
    }

    // Applies the machine's pending `actions` to slot `idx`, with `at`
    // as the current logical instant (attempt launches happen at `at`).
    macro_rules! exec_actions {
        ($idx:expr, $at:expr) => {{
            let idx: usize = $idx;
            let at: SimTime = $at;
            let taken = actions;
            actions = Actions::new();
            for action in &taken {
                match *action {
                    Action::Arm { at_ms } => {
                        let fire = SimTime::from_millis(at_ms).max(at);
                        timers.push(std::cmp::Reverse((fire.as_nanos(), slots[idx].tag)));
                        slots[idx].pending_timers += 1;
                    }
                    Action::Launch => {
                        let slot = &mut slots[idx];
                        let rid = cloud.submit(slot.function, slot.tag, at);
                        slot.attempts.push(Attempt { rid, done: false, cancelled: false });
                        slot.outstanding += 1;
                        stats.extra_launches += 1;
                    }
                    Action::CancelOutstanding => {
                        let slot = &mut slots[idx];
                        for attempt in slot.attempts.iter_mut() {
                            if !attempt.done && !attempt.cancelled {
                                cloud.cancel(attempt.rid);
                                attempt.cancelled = true;
                                slot.outstanding -= 1;
                                stats.cancels += 1;
                            }
                        }
                    }
                    Action::Abandon => {
                        let slot = &mut slots[idx];
                        if !slot.abandoned && !slot.won {
                            slot.abandoned = true;
                            for attempt in slot.attempts.iter_mut() {
                                if !attempt.done && !attempt.cancelled {
                                    cloud.cancel(attempt.rid);
                                    attempt.cancelled = true;
                                    slot.outstanding -= 1;
                                    stats.cancels += 1;
                                }
                            }
                            stats.abandoned += 1;
                            resolved += 1;
                            turns.push(at);
                        }
                    }
                }
            }
            maybe_free!(idx);
        }};
    }

    // Returns a resolved slot with no outstanding attempts to the pool.
    macro_rules! maybe_free {
        ($idx:expr) => {{
            let idx: usize = $idx;
            let slot = &slots[idx];
            if (slot.won || slot.abandoned) && slot.outstanding == 0 {
                by_tag.remove(&slot.tag);
                free.push(idx);
            }
        }};
    }

    // Resolves a logical request whose machine can never act again:
    // every attempt failed (or was cancelled), nothing is outstanding,
    // and no retry/abandon timer remains armed. Without this check a
    // run whose final attempt returns a provider error would stall.
    macro_rules! check_dead_end {
        ($idx:expr, $at:expr) => {{
            let idx: usize = $idx;
            let at: SimTime = $at;
            let slot = &mut slots[idx];
            if !slot.won && !slot.abandoned && slot.outstanding == 0 && slot.pending_timers == 0 {
                slot.abandoned = true;
                stats.failed_logical += 1;
                resolved += 1;
                turns.push(at);
                maybe_free!(idx);
            }
        }};
    }

    // Seed the run.
    match mode {
        DriveMode::Open => {
            let gap = process.next_gap_ms(rng);
            if gap.is_finite() {
                open_clock += SimTime::from_millis(gap);
                next_arrival = Some(open_clock);
            } else {
                exhausted = true;
            }
        }
        DriveMode::Closed { concurrency } => {
            // Thundering herd: all users fire at the start.
            let initial = u64::from(concurrency).min(total);
            for _ in 0..initial {
                let source = issued as usize;
                issue_logical!(issued, start, source);
                issued += 1;
            }
        }
    }

    let mut comp_buf: Vec<Completion> = Vec::new();
    let mut trans_buf: Vec<TransferSample> = Vec::new();
    let mut stall = 0u32;
    loop {
        let more_arrivals = issued < total && !exhausted;
        if resolved >= issued && !more_arrivals {
            break;
        }
        // Advance to the earliest interesting instant: next arrival,
        // earliest timer, or at most one slice.
        let mut next = cloud.now() + SLICE;
        if let (DriveMode::Open, Some(at)) = (mode, next_arrival) {
            if more_arrivals {
                next = next.min(at.max(cloud.now()));
            }
        }
        if let Some(&std::cmp::Reverse((ns, _))) = timers.peek() {
            next = next.min(SimTime::from_nanos(ns).max(cloud.now()));
        }

        // Submit open-loop arrivals due by the boundary.
        if let DriveMode::Open = mode {
            while issued < total && !exhausted {
                let Some(at) = next_arrival else { break };
                if at > next {
                    break;
                }
                let source = if multi_source { process.source() } else { issued as usize };
                issue_logical!(issued, at.max(cloud.now()), source);
                issued += 1;
                let gap = process.next_gap_ms(rng);
                if gap.is_finite() {
                    open_clock += SimTime::from_millis(gap);
                    next_arrival = Some(open_clock);
                } else {
                    exhausted = true;
                    next_arrival = None;
                }
            }
        }

        cloud.run_until(next);
        let now = cloud.now();
        let now_ms = now.as_millis();

        // 1. Completions first: a response at the boundary beats any
        // timer due at it.
        cloud.drain_completions_into(&mut comp_buf);
        cloud.drain_transfers_into(&mut trans_buf);
        let mut progressed = !comp_buf.is_empty();
        for c in comp_buf.drain(..) {
            let Some(&idx) = by_tag.get(&c.tag) else {
                if !c.is_ok() {
                    // A failed attempt of an already-resolved request:
                    // its wasted work is booked cloud-side in
                    // `FaultStats`, nothing to account here.
                    continue;
                }
                // The logical request resolved earlier in this very
                // batch and the cancel aimed at this attempt arrived
                // after it had already completed — a futile cancel, so
                // the attempt is a duplicate success.
                let b = &c.breakdown;
                stats.duplicate_successes += 1;
                stats.wasted_busy_ms +=
                    b.steer_ms + b.handling_ms + b.payload_get_ms + b.exec_ms + b.chain_ms;
                continue;
            };
            let slot = &mut slots[idx];
            let b = &c.breakdown;
            let busy_ms = b.steer_ms + b.handling_ms + b.payload_get_ms + b.exec_ms + b.chain_ms;
            if let Some(attempt) = slot.attempts.iter_mut().find(|a| a.rid == c.id) {
                attempt.done = true;
                if !attempt.cancelled {
                    slot.outstanding -= 1;
                }
            }
            if !c.is_ok() {
                // Provider error: never a win, never a latency sample.
                // The machine may retry (after backoff) or hedge
                // immediately; if it has nothing left, the logical
                // request resolves as failed.
                stats.failures += 1;
                actions.clear();
                slots[idx].machine.on_event(PolicyEvent::Failed { now_ms }, &mut actions);
                exec_actions!(idx, now);
                check_dead_end!(idx, now);
                continue;
            }
            let first = !slot.won;
            if first {
                slot.won = true;
                stats.used_busy_ms += busy_ms;
                estimate_sketch.record(c.latency_ms());
                collector.absorb(c);
                resolved += 1;
                turns.push(now);
            } else {
                stats.duplicate_successes += 1;
                stats.wasted_busy_ms += busy_ms;
            }
            actions.clear();
            slots[idx].machine.on_event(PolicyEvent::Done { now_ms, first }, &mut actions);
            exec_actions!(idx, now);
        }
        for tr in trans_buf.drain(..) {
            collector.absorb_transfer(tr);
        }

        // 2. Timers due at the boundary. Each machine checks its own
        // next-wake time, so spurious deliveries are inert.
        while let Some(&std::cmp::Reverse((ns, tag))) = timers.peek() {
            if SimTime::from_nanos(ns) > now {
                break;
            }
            timers.pop();
            progressed = true;
            let Some(&idx) = by_tag.get(&tag) else { continue };
            slots[idx].pending_timers -= 1;
            let jitter = jitter_rng.next_f64();
            actions.clear();
            slots[idx].machine.on_event(PolicyEvent::Wake { now_ms, jitter }, &mut actions);
            exec_actions!(idx, now);
            check_dead_end!(idx, now);
        }

        // 3. Closed-loop think turns: one gap per *logical* resolution —
        // never per physical attempt, so a winning hedge cannot
        // double-credit think time (the coordinated-omission hazard).
        if let DriveMode::Closed { .. } = mode {
            let pending = std::mem::take(&mut turns);
            for done_at in pending {
                if issued < total && !exhausted {
                    let gap = process.next_gap_ms(rng);
                    if gap.is_finite() {
                        let at = (done_at + SimTime::from_millis(gap)).max(cloud.now());
                        let source = issued as usize;
                        issue_logical!(issued, at, source);
                        issued += 1;
                    } else {
                        exhausted = true;
                    }
                }
            }
        } else {
            turns.clear();
        }

        // Flush arrival records the clock has passed.
        let now_ns = cloud.now().as_nanos();
        while let Some(&std::cmp::Reverse(ns)) = record_heap.peek() {
            if ns > now_ns {
                break;
            }
            record_heap.pop();
            recorder.record(ns as f64 / 1e6);
        }

        if progressed {
            stall = 0;
        } else {
            stall += 1;
            if stall >= STALL_LIMIT {
                break;
            }
        }
    }

    // Settle cancellations issued at the final boundary so wasted-work
    // accounting below sees them.
    cloud.run_until(cloud.now());
    while let Some(std::cmp::Reverse(ns)) = record_heap.pop() {
        recorder.record(ns as f64 / 1e6);
    }
    let cancel_now = cloud.cancel_stats();
    stats.wasted_busy_ms += cancel_now.wasted_busy_ms - cancel_base.wasted_busy_ms;

    if resolved < issued {
        return Err(ClientError::IncompleteRun {
            received: resolved as usize,
            expected: issued as usize,
            completions: Vec::new(),
        });
    }
    let winners = (issued - stats.abandoned - stats.failed_logical) as usize;
    let duration = cloud.now() - start;
    let mut result = collector.finish(winners, duration, recorder.finish())?;
    result.policy = Some(stats);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use policy::spec::ThresholdSpec;
    use workload::spec::WorkloadSpec;

    use crate::client::{run_workload, run_workload_spec, ClientError, MeasureSpec};
    use crate::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
    use crate::deployer::{deploy, Deployment};
    use faas_sim::cloud::CloudSim;
    use faas_sim::testutil::test_provider;
    use policy::PolicySpec;

    fn setup(cfg: &RuntimeConfig) -> (CloudSim, Deployment) {
        let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
        let mut cloud = CloudSim::new(test_provider(), 7);
        let d = deploy(&mut cloud, &static_cfg, cfg).unwrap();
        (cloud, d)
    }

    fn open_spec() -> WorkloadSpec {
        WorkloadSpec::from_json(r#"{"arrival": {"kind": "exponential", "mean_ms": 400.0}}"#)
            .unwrap()
    }

    #[test]
    fn legacy_driver_rejects_policies() {
        let cfg = RuntimeConfig::single(IatSpec::short(), 10)
            .with_policy(PolicySpec::preset("hedge-200ms").unwrap());
        let (mut cloud, d) = setup(&cfg);
        let err = run_workload(&mut cloud, &d, &cfg, 1).unwrap_err();
        assert!(matches!(err, ClientError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn hedge_fires_on_every_slow_request_and_loses_to_the_primary() {
        // 300 ms execution means every request exceeds a 200 ms static
        // hedge threshold; the hedge starts 200 ms behind and can never
        // win, so it is cancelled mid-flight every time.
        let mut cfg = RuntimeConfig::single(IatSpec::short(), 40)
            .with_policy(PolicySpec::preset("hedge-200ms").unwrap());
        cfg.warmup_rounds = 2;
        cfg.exec_ms = 300.0;
        let (mut cloud, d) = setup(&cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &open_spec(), 3, &MeasureSpec::exact())
                .unwrap();
        assert_eq!(result.completions.len(), 40);
        let stats = result.policy.expect("policy runs report stats");
        assert_eq!(stats.logical, 42);
        assert_eq!(stats.extra_launches, 42, "every request hedged");
        assert!(stats.cancels >= 42, "every hedge was cancelled");
        assert_eq!(stats.abandoned, 0);
        assert!(stats.wasted_busy_ms > 0.0, "cancelled hedges burned instance time");
        assert!(stats.used_busy_ms > stats.wasted_busy_ms, "winners ran to completion");
        // Latency samples come from winners only: ~340 ms, not 540.
        for ms in result.latencies_ms() {
            assert!(ms < 520.0, "hedge must not pollute samples, got {ms}");
        }
    }

    #[test]
    fn fast_requests_never_hedge() {
        // Threshold above even the cold-start latency (~280 ms on the
        // test provider), so no request in the run crosses it.
        let mut cfg = RuntimeConfig::single(IatSpec::short(), 30).with_policy(PolicySpec::Hedge {
            threshold: ThresholdSpec::Static { ms: 500.0 },
            max_hedges: 1,
        });
        cfg.warmup_rounds = 2;
        let (mut cloud, d) = setup(&cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &open_spec(), 5, &MeasureSpec::exact())
                .unwrap();
        assert_eq!(result.completions.len(), 30);
        let stats = result.policy.unwrap();
        assert_eq!(stats.extra_launches, 0, "warm 40 ms requests stay under 200 ms");
        assert_eq!(stats.cancels, 0);
        assert_eq!(stats.duplicate_successes, 0);
        assert_eq!(stats.wasted_busy_ms, 0.0);
    }

    #[test]
    fn deadline_abandons_requests_that_cannot_finish() {
        let mut cfg = RuntimeConfig::single(IatSpec::short(), 10)
            .with_policy(PolicySpec::Deadline { deadline_ms: 100.0 });
        cfg.exec_ms = 500.0; // every request takes ~540 ms > 100 ms
        let (mut cloud, d) = setup(&cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &open_spec(), 9, &MeasureSpec::exact())
                .unwrap();
        let stats = result.policy.unwrap();
        assert_eq!(stats.abandoned, 10, "no request can meet the deadline");
        assert_eq!(result.completions.len(), 0, "abandoned requests produce no samples");
        assert_eq!(result.measured_count, 0);
        assert!(stats.wasted_busy_ms > 0.0, "abandoned work is accounted as waste");
    }

    #[test]
    fn tied_requests_duplicate_and_keep_one_sample_per_arrival() {
        let mut cfg =
            RuntimeConfig::single(IatSpec::short(), 25).with_policy(PolicySpec::Tied { copies: 2 });
        cfg.warmup_rounds = 5;
        let (mut cloud, d) = setup(&cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &open_spec(), 13, &MeasureSpec::exact())
                .unwrap();
        assert_eq!(result.completions.len(), 25, "one sample per logical request");
        assert_eq!(result.warmup_completions.len(), 5);
        let stats = result.policy.unwrap();
        assert_eq!(stats.extra_launches, 30, "one tied copy per arrival");
        // Warm tied copies finish within the same slice as the winner:
        // the winner's cancel is issued after the loser already
        // completed, so every loser is a futile cancel plus a duplicate
        // success.
        assert_eq!(stats.cancels, 30, "every loser gets a (possibly futile) cancel");
        assert!(
            stats.duplicate_successes >= 1,
            "same-slice losers complete before their cancel lands: {stats:?}"
        );
        assert!(stats.wasted_busy_ms > 0.0);
    }

    #[test]
    fn closed_loop_thinks_once_per_logical_request() {
        // The coordinated-omission regression: a winning duplicate must
        // not credit an extra think-time gap. One gap is sampled per
        // logical resolution, so offered arrivals equal the requested
        // total even when every request launches two attempts.
        let total = 30u32;
        let mut cfg = RuntimeConfig::single(IatSpec::short(), total)
            .with_policy(PolicySpec::Tied { copies: 2 });
        cfg.warmup_rounds = 0;
        let spec = WorkloadSpec::from_json(
            r#"{"arrival": {"kind": "fixed", "ms": 50.0},
                "mode": {"mode": "closed", "concurrency": 4}}"#,
        )
        .unwrap();
        let (mut cloud, d) = setup(&cfg);
        let result =
            run_workload_spec(&mut cloud, &d, &cfg, &spec, 21, &MeasureSpec::exact()).unwrap();
        assert_eq!(result.completions.len(), total as usize);
        let offered = result.offered.expect("policy runs report offered load");
        assert_eq!(
            offered.arrivals,
            u64::from(total),
            "one arrival per logical request, never per physical attempt"
        );
        let stats = result.policy.unwrap();
        assert_eq!(stats.logical, u64::from(total));
        assert_eq!(stats.extra_launches, u64::from(total), "tied-2 doubles every request");
        assert!(
            stats.duplicate_successes >= 1,
            "warm tied copies race the winner into the same batch: {stats:?}"
        );
    }

    #[test]
    fn policy_run_is_deterministic_and_seed_sensitive() {
        let mut cfg =
            RuntimeConfig::single(IatSpec::short(), 30).with_policy(PolicySpec::Compose {
                parts: vec![
                    PolicySpec::Hedge {
                        threshold: ThresholdSpec::Static { ms: 150.0 },
                        max_hedges: 1,
                    },
                    PolicySpec::Deadline { deadline_ms: 5_000.0 },
                ],
            });
        cfg.warmup_rounds = 3;
        cfg.exec_ms = 120.0;
        let run = |seed: u64| {
            let (mut cloud, d) = setup(&cfg);
            run_workload_spec(&mut cloud, &d, &cfg, &open_spec(), seed, &MeasureSpec::exact())
                .unwrap()
                .latencies_ms()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn streaming_policy_run_matches_keep_samples_run() {
        let mut cfg = RuntimeConfig::single(IatSpec::short(), 60)
            .with_policy(PolicySpec::preset("hedge-200ms").unwrap());
        cfg.warmup_rounds = 5;
        cfg.exec_ms = 250.0;
        let (mut cloud_a, d_a) = setup(&cfg);
        let exact =
            run_workload_spec(&mut cloud_a, &d_a, &cfg, &open_spec(), 17, &MeasureSpec::exact())
                .unwrap();
        let (mut cloud_b, d_b) = setup(&cfg);
        let streaming =
            run_workload_spec(&mut cloud_b, &d_b, &cfg, &open_spec(), 17, &MeasureSpec::sketch())
                .unwrap();
        assert_eq!(streaming.measured_count, exact.completions.len() as u64);
        assert_eq!(streaming.policy, exact.policy, "accounting is measure-independent");
        let agg = streaming.latency_agg.clone();
        let lat = exact.latencies_ms();
        assert_eq!(agg.mean(), lat.iter().sum::<f64>() / lat.len() as f64);
    }
}
